"""Regression tests: the pre-spec ensemble dialect keeps working.

PR 3 rebuilt the ensemble runner on ``ExperimentSpec`` + backend names.
These tests pin the compatibility contract: old ``(kind, parameters)``
call-sites keep producing bitwise-identical results (now with a
``DeprecationWarning``), the legacy view stays readable on configs built
either way, and JSONL stores written before the redesign still load.
"""

import json

import pytest

from repro.api import ExperimentSpec
from repro.api.compat import kind_from_spec, spec_from_kind
from repro.api.spec import SpecError
from repro.ensemble.results import ResultStore
from repro.ensemble.runner import EnsembleConfig, run_ensemble

FLEET_PARAMS = {"num_servers": 80, "utilization": 0.8, "num_events": 8_000}


class TestDeprecatedCallSites:
    def test_run_ensemble_kind_warns_and_works(self):
        with pytest.deprecated_call():
            result = run_ensemble("fleet", FLEET_PARAMS, replications=2, seed=4)
        assert result.replications == 2
        assert result.delay.mean > 1.0

    def test_ensemble_config_kind_warns_and_works(self):
        with pytest.deprecated_call():
            config = EnsembleConfig(kind="fleet", parameters=FLEET_PARAMS, seed=4)
        assert config.backend == "fleet"
        assert config.spec.system.num_servers == 80

    def test_every_legacy_kind_converts(self):
        for kind, parameters, backend in [
            ("fleet", FLEET_PARAMS, "fleet"),
            ("gillespie", {"num_servers": 10, "d": 2, "utilization": 0.7}, "ctmc"),
            ("cluster", {"num_servers": 5, "d": 2, "utilization": 0.7, "num_jobs": 500}, "cluster"),
            ("scenario", {"scenario": "constant", "num_servers": 50, "d": 2}, "fleet"),
        ]:
            spec, chosen = spec_from_kind(kind, parameters)
            assert chosen == backend, kind
            assert spec.system.num_servers == parameters["num_servers"]

    def test_legacy_and_spec_paths_are_bitwise_identical(self):
        with pytest.deprecated_call():
            legacy = run_ensemble("fleet", FLEET_PARAMS, replications=3, seed=9)
        modern = run_ensemble(
            spec=ExperimentSpec.create(seed=9, **FLEET_PARAMS),
            backend="fleet",
            replications=3,
            seed=9,
        )
        assert legacy.simulation_records() == modern.simulation_records()

    def test_spec_built_config_exposes_the_legacy_view(self):
        config = EnsembleConfig(
            spec=ExperimentSpec.create(num_servers=30, utilization=0.6, num_events=2_000),
            backend="fleet",
        )
        assert config.kind == "fleet"
        assert config.parameters["num_servers"] == 30
        # And the view converts back to an equivalent spec.
        spec, backend = spec_from_kind(config.kind, config.parameters, seed=config.spec.seed)
        assert backend == "fleet"
        assert spec.system == config.spec.system
        assert spec.horizon == config.spec.horizon

    def test_both_dialects_together_rejected(self):
        spec = ExperimentSpec.create(num_servers=10, utilization=0.5)
        with pytest.raises(SpecError, match="not both"):
            EnsembleConfig(kind="fleet", spec=spec)
        with pytest.raises(SpecError, match="not both"):
            run_ensemble("fleet", FLEET_PARAMS, spec=spec)

    def test_unknown_kind_still_names_the_kinds(self):
        with pytest.raises(SpecError, match="kind"):
            EnsembleConfig(kind="quantum", parameters=FLEET_PARAMS)

    def test_unknown_legacy_parameter_rejected_with_spec_error(self):
        with pytest.raises(SpecError, match="unknown parameters"):
            spec_from_kind("fleet", {"num_servers": 10, "utilization": 0.5, "evnts": 1})

    def test_legacy_fleet_mirrors_the_simulator_utilization_default(self):
        # simulate_fleet defaults to rho=0.9; the old dialect relied on it.
        spec, _ = spec_from_kind("fleet", {"num_servers": 10})
        assert spec.system.utilization == 0.9

    def test_seed_forbidden_inside_parameters(self):
        with pytest.raises(SpecError, match="seed"):
            spec_from_kind("fleet", {"num_servers": 10, "utilization": 0.5, "seed": 1})

    def test_replicating_deterministic_backends_rejected(self):
        with pytest.raises(SpecError, match="deterministic"):
            EnsembleConfig(
                spec=ExperimentSpec.create(num_servers=5, utilization=0.5),
                backend="meanfield",
            )


class TestKindFromSpec:
    def test_round_trip_stationary(self):
        spec = ExperimentSpec.create(
            num_servers=40, d=3, utilization=0.7, num_events=9_000, policy="jsq", start="empty"
        )
        kind, parameters = kind_from_spec(spec, "fleet")
        assert kind == "fleet"
        rebuilt, backend = spec_from_kind(kind, parameters, seed=spec.seed)
        assert backend == "fleet"
        assert rebuilt == spec

    def test_round_trip_scenario(self):
        spec = ExperimentSpec.create(
            num_servers=100, scenario="ramp", scenario_params={"ramp_duration": 5.0}
        )
        kind, parameters = kind_from_spec(spec, "fleet")
        assert kind == "scenario"
        rebuilt, backend = spec_from_kind(kind, parameters, seed=spec.seed)
        assert rebuilt == spec and backend == "fleet"

    def test_non_legacy_expressible_specs_have_no_legacy_view(self):
        # A wrong-but-plausible legacy view would replay a different
        # experiment; non-default workloads therefore get (None, {}).
        bursty = ExperimentSpec.create(
            num_servers=20,
            utilization=0.8,
            service="hyperexponential",
            service_params={"scv": 4.0},
            num_jobs=500,
        )
        assert kind_from_spec(bursty, "cluster") == (None, {})
        config = EnsembleConfig(spec=bursty, backend="cluster", replications=2)
        assert config.kind is None and config.parameters == {}

    def test_round_trip_cluster_and_ctmc(self):
        cluster_spec = ExperimentSpec.create(
            num_servers=8, utilization=0.6, num_jobs=4_000, warmup_jobs=100
        )
        kind, parameters = kind_from_spec(cluster_spec, "cluster")
        assert kind == "cluster" and parameters["warmup_jobs"] == 100
        assert spec_from_kind(kind, parameters, seed=cluster_spec.seed)[0] == cluster_spec

        ctmc_spec = ExperimentSpec.create(num_servers=8, utilization=0.6, num_events=4_000)
        kind, parameters = kind_from_spec(ctmc_spec, "ctmc")
        assert kind == "gillespie"
        assert spec_from_kind(kind, parameters, seed=ctmc_spec.seed)[0] == ctmc_spec


class TestOldStoresStillLoad:
    #: A verbatim record line as PR 2's ResultStore wrote it (no spec key).
    OLD_RECORD = {
        "kind": "fleet",
        "parameters": {"num_servers": 50, "utilization": 0.7, "num_events": 5000},
        "ensemble_seed": 21,
        "confidence": 0.95,
        "provenance": {"package_version": "1.2.0", "git": None, "python": "3.12.0",
                       "timestamp": "2026-07-01T00:00:00+00:00"},
        "replication": 0,
        "seed": 1234567,
        "mean_delay": 1.83,
        "wall_seconds": 0.4,
    }

    def test_pre_spec_jsonl_records_load(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(self.OLD_RECORD) + "\n")
        records = ResultStore(path).load()
        assert len(records) == 1
        assert records[0]["kind"] == "fleet"
        assert records[0]["parameters"]["num_servers"] == 50
        # The legacy pair still converts into a runnable spec.
        spec, backend = spec_from_kind(records[0]["kind"], records[0]["parameters"])
        assert backend == "fleet" and spec.system.num_servers == 50

    def test_new_records_carry_both_dialects(self, tmp_path):
        result = run_ensemble(
            spec=ExperimentSpec.create(num_servers=50, utilization=0.7, num_events=5_000),
            replications=2,
            seed=21,
        )
        store = ResultStore(tmp_path / "new.jsonl")
        store.append_ensemble(result)
        first = store.load()[0]
        # New keys...
        assert first["backend"] == "fleet"
        assert first["spec"]["system"]["num_servers"] == 50
        # ...and the old ones, for pre-spec readers.
        assert first["kind"] == "fleet"
        assert first["parameters"]["num_servers"] == 50
        assert ExperimentSpec.from_dict(first["spec"]) == result.config.spec

    def test_non_legacy_expressible_records_omit_the_legacy_keys(self, tmp_path):
        result = run_ensemble(
            spec=ExperimentSpec.create(
                num_servers=10,
                utilization=0.7,
                service="hyperexponential",
                service_params={"scv": 4.0},
                num_jobs=500,
            ),
            backend="cluster",
            replications=2,
            seed=3,
        )
        store = ResultStore(tmp_path / "bursty.jsonl")
        store.append_ensemble(result)
        first = store.load()[0]
        assert "kind" not in first and "parameters" not in first
        assert ExperimentSpec.from_dict(first["spec"]).workload.service.name == (
            "hyperexponential"
        )
