"""Integration tests: the bounds sandwich the true SQ(d) delay.

These tests tie the whole pipeline together — state space, bound models, QBD
solver, exact oracle, simulator and asymptotic formula — and check the
relations the paper's evaluation (Section V) rests on.
"""

import pytest

from repro.core.analysis import analyze_sqd
from repro.core.asymptotic import asymptotic_delay
from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.delay import mm1_sojourn_time
from repro.core.exact import solve_exact_truncated
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.core.qbd_solver import UnstableBoundModelError, solve_bound_model
from repro.simulation.gillespie import simulate_sqd_ctmc


class TestSandwichAgainstExactOracle:
    @pytest.mark.parametrize("utilization", [0.3, 0.6, 0.8, 0.9])
    def test_n3_d2_bounds_contain_exact_delay(self, utilization):
        model = SQDModel(num_servers=3, d=2, utilization=utilization)
        exact = solve_exact_truncated(model, buffer_size=25).mean_delay
        for threshold in (2, 3):
            lower = solve_improved_lower_bound(model, threshold).mean_delay
            assert lower <= exact + 1e-6
            try:
                upper = solve_bound_model(UpperBoundModel(model, threshold).qbd_blocks()).mean_delay
                assert exact <= upper + 1e-6
            except UnstableBoundModelError:
                pass  # an unstable upper bound model bounds the delay by +infinity

    def test_n2_jsq_bounds_contain_exact_delay(self):
        # d = N = 2 is the JSQ case the bound construction generalizes.
        model = SQDModel(num_servers=2, d=2, utilization=0.8)
        exact = solve_exact_truncated(model, buffer_size=40).mean_delay
        lower = solve_improved_lower_bound(model, 3).mean_delay
        upper = solve_bound_model(UpperBoundModel(model, 3).qbd_blocks()).mean_delay
        assert lower <= exact + 1e-6 <= upper + 2e-6

    def test_n4_d2_bounds_contain_exact_delay(self):
        model = SQDModel(num_servers=4, d=2, utilization=0.7)
        exact = solve_exact_truncated(model, buffer_size=14).mean_delay
        lower = solve_improved_lower_bound(model, 2).mean_delay
        upper = solve_bound_model(UpperBoundModel(model, 2).qbd_blocks()).mean_delay
        assert lower <= exact + 1e-6 <= upper + 1e-6

    def test_lower_bound_tightness_reported_by_paper(self):
        # Section V: "the lower bounds are remarkably accurate".  Against the
        # exact oracle the T=3 lower bound for N=3 stays within ~12% up to
        # rho=0.9.
        model = SQDModel(num_servers=3, d=2, utilization=0.9)
        exact = solve_exact_truncated(model, buffer_size=30).mean_delay
        lower = solve_improved_lower_bound(model, 3).mean_delay
        assert lower <= exact
        assert (exact - lower) / exact < 0.12


class TestSandwichAgainstSimulation:
    @pytest.mark.parametrize("num_servers,threshold", [(3, 2), (6, 2)])
    def test_simulation_respects_bounds(self, num_servers, threshold):
        utilization = 0.8
        model = SQDModel(num_servers=num_servers, d=2, utilization=utilization)
        lower = solve_improved_lower_bound(model, threshold).mean_delay
        simulated = simulate_sqd_ctmc(
            num_servers=num_servers, d=2, utilization=utilization, num_events=300_000, seed=99
        ).mean_delay
        assert lower <= simulated * 1.02  # 2% slack for Monte-Carlo noise
        try:
            upper = solve_bound_model(UpperBoundModel(model, threshold).qbd_blocks()).mean_delay
            assert simulated <= upper * 1.02
        except UnstableBoundModelError:
            pass


class TestDegenerateCases:
    def test_d1_lower_bound_below_mm1(self):
        # SQ(1) is exactly N independent M/M/1 queues; the lower bound model
        # (which balances queues) must stay below the M/M/1 sojourn time.
        model = SQDModel(num_servers=3, d=1, utilization=0.7)
        lower = solve_improved_lower_bound(model, 2).mean_delay
        assert lower <= mm1_sojourn_time(0.7) + 1e-9

    def test_asymptotic_is_a_lower_envelope_for_small_n_high_load(self):
        # Figure 10's visual message: for small N and high utilization the
        # asymptotic curve sits below simulation and even below our lower bound.
        model = SQDModel(num_servers=3, d=2, utilization=0.9)
        lower = solve_improved_lower_bound(model, 3).mean_delay
        assert asymptotic_delay(0.9, 2) < lower

    def test_lower_bound_decreases_with_more_servers(self):
        # Larger clusters are better balanced, so the finite-N delay (and its
        # lower bound) decreases towards the asymptotic value.
        delays = []
        for num_servers in (3, 6, 12):
            model = SQDModel(num_servers=num_servers, d=2, utilization=0.9)
            delays.append(solve_improved_lower_bound(model, 3).mean_delay)
        assert delays[0] > delays[1] > delays[2]

    def test_jsq_lower_bound_below_sq2_lower_bound(self):
        sq2 = solve_improved_lower_bound(SQDModel(4, 2, 0.85), 2).mean_delay
        jsq = solve_improved_lower_bound(SQDModel(4, 4, 0.85), 2).mean_delay
        assert jsq <= sq2 + 1e-9


class TestEndToEndAnalysis:
    def test_full_analysis_consistency(self):
        analysis = analyze_sqd(
            num_servers=3,
            d=2,
            utilization=0.75,
            threshold=3,
            run_simulation=True,
            simulation_events=150_000,
            simulation_seed=17,
            compute_exact=True,
            exact_buffer=25,
        )
        assert analysis.lower_delay <= analysis.exact_delay + 1e-9
        assert analysis.exact_delay <= analysis.upper_delay + 1e-9
        assert analysis.simulated_delay == pytest.approx(analysis.exact_delay, rel=0.08)
        assert analysis.asymptotic_delay < analysis.exact_delay
