"""Tests for the SQDModel parameter object."""

import pytest

from repro.core.model import SQDModel
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_valid_model(self):
        model = SQDModel(num_servers=6, d=2, utilization=0.9)
        assert model.total_arrival_rate == pytest.approx(5.4)
        assert model.per_server_arrival_rate == pytest.approx(0.9)
        assert model.is_stable

    def test_d_must_not_exceed_n(self):
        with pytest.raises(ValidationError):
            SQDModel(num_servers=3, d=4, utilization=0.5)

    def test_d_must_be_positive(self):
        with pytest.raises(ValidationError):
            SQDModel(num_servers=3, d=0, utilization=0.5)

    def test_utilization_must_be_positive(self):
        with pytest.raises(ValidationError):
            SQDModel(num_servers=3, d=2, utilization=0.0)

    def test_service_rate_scales_arrival_rate(self):
        model = SQDModel(num_servers=4, d=2, utilization=0.5, service_rate=2.0)
        assert model.total_arrival_rate == pytest.approx(4.0)


class TestDerivedProperties:
    def test_extreme_policy_flags(self):
        assert SQDModel(5, 5, 0.5).is_jsq
        assert SQDModel(5, 1, 0.5).is_random
        middle = SQDModel(5, 2, 0.5)
        assert not middle.is_jsq and not middle.is_random

    def test_stability_flag_and_guard(self):
        stable = SQDModel(3, 2, 0.99)
        unstable = SQDModel(3, 2, 1.1)
        assert stable.is_stable
        assert not unstable.is_stable
        stable.require_stable()
        with pytest.raises(ValidationError):
            unstable.require_stable()

    def test_with_utilization_copies_other_fields(self):
        model = SQDModel(4, 3, 0.5, service_rate=2.0)
        changed = model.with_utilization(0.8)
        assert changed.utilization == 0.8
        assert changed.num_servers == 4 and changed.d == 3 and changed.service_rate == 2.0
        assert model.utilization == 0.5  # original unchanged (frozen dataclass)

    def test_with_choices(self):
        model = SQDModel(4, 2, 0.5)
        assert model.with_choices(4).is_jsq

    def test_model_is_hashable_and_frozen(self):
        model = SQDModel(3, 2, 0.5)
        assert hash(model) == hash(SQDModel(3, 2, 0.5))
        with pytest.raises(Exception):
            model.d = 3
