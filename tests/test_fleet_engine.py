"""Tests for the occupancy-based fleet engine, including cross-validation
against the per-job and per-server simulators on small clusters."""

import math

import pytest

from repro.core.asymptotic import asymptotic_delay
from repro.fleet.engine import FleetSimulation, run_scenario, simulate_fleet
from repro.fleet.meanfield import meanfield_delay
from repro.fleet.occupancy import OccupancyState
from repro.fleet.scenarios import Scenario, ScenarioPhase, get_scenario
from repro.policies.sqd import PowerOfD
from repro.simulation.cluster import ClusterSimulation
from repro.simulation.gillespie import simulate_sqd_ctmc
from repro.simulation.workloads import poisson_exponential_workload
from repro.utils.validation import ValidationError


class TestBasics:
    def test_deterministic_given_seed(self):
        first = simulate_fleet(50, d=2, utilization=0.8, num_events=50_000, seed=11)
        second = simulate_fleet(50, d=2, utilization=0.8, num_events=50_000, seed=11)
        assert first.mean_sojourn_time == second.mean_sojourn_time
        assert first.num_events == second.num_events

    def test_seed_changes_realization(self):
        first = simulate_fleet(50, d=2, utilization=0.8, num_events=50_000, seed=11)
        second = simulate_fleet(50, d=2, utilization=0.8, num_events=50_000, seed=12)
        assert first.mean_sojourn_time != second.mean_sojourn_time

    def test_arrivals_balance_departures_and_jobs(self):
        simulation = FleetSimulation(num_servers=20, d=2, utilization=0.7, seed=3)
        simulation.advance(max_events=30_000)
        result = simulation.statistics()
        assert result.arrivals - result.departures == simulation.state.total_jobs
        assert result.num_events == result.arrivals + result.departures == 30_000

    def test_advance_until_time(self):
        simulation = FleetSimulation(num_servers=10, d=2, utilization=0.5, seed=5)
        simulation.advance(until_time=25.0)
        assert simulation.now == pytest.approx(25.0)

    def test_advance_requires_a_stop_condition(self):
        simulation = FleetSimulation(num_servers=10, d=2, utilization=0.5, seed=5)
        with pytest.raises(ValidationError):
            simulation.advance()

    def test_zero_rate_jumps_to_horizon(self):
        simulation = FleetSimulation(num_servers=10, d=2, utilization=0.0, seed=5)
        executed = simulation.advance(until_time=10.0)
        assert executed == 0
        assert simulation.now == pytest.approx(10.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValidationError):
            FleetSimulation(num_servers=10, policy="least-loaded")

    def test_shrink_below_d_rejected_without_mutation(self):
        simulation = FleetSimulation(num_servers=10, d=5, utilization=0.5, seed=1)
        with pytest.raises(ValidationError):
            simulation.set_num_servers(2)
        assert simulation.state.num_servers == 10  # failed resize left state intact

    def test_scenario_service_rate_scales_time(self):
        """Phase utilizations are relative to the service rate, not divided by it."""
        scenario = Scenario(
            name="steady",
            description="one phase",
            phases=(ScenarioPhase(duration=10.0, utilization=0.8),),
            warmup_time=5.0,
        )
        fast = run_scenario(scenario, num_servers=500, d=2, service_rate=2.0, seed=17)
        slow = run_scenario(scenario, num_servers=500, d=2, service_rate=1.0, seed=17)
        # same rho: identical occupancy statistics, delays scaled by 1/mu
        assert fast.phases[0].mean_queue_length == pytest.approx(
            slow.phases[0].mean_queue_length, rel=0.15
        )
        assert fast.phases[0].mean_sojourn_time == pytest.approx(
            slow.phases[0].mean_sojourn_time / 2.0, rel=0.15
        )

    def test_initial_state_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            FleetSimulation(num_servers=10, initial_state=OccupancyState.empty(9))

    def test_occupancy_fractions_are_a_profile(self):
        result = simulate_fleet(100, d=2, utilization=0.9, num_events=100_000, seed=2)
        fractions = result.occupancy_fractions
        assert fractions[0] == pytest.approx(1.0)
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))
        # time-average of total jobs equals the sum over level tails
        assert fractions[1:].sum() * result.mean_servers == pytest.approx(
            result.mean_jobs_in_system, rel=1e-6
        )


class TestCrossValidation:
    """The occupancy chain has the *same law* as the existing simulators."""

    def test_agrees_with_gillespie_small_n(self):
        reference = simulate_sqd_ctmc(5, 2, 0.8, num_events=400_000, seed=42)
        fleet = simulate_fleet(5, d=2, utilization=0.8, num_events=400_000, seed=43)
        assert fleet.mean_sojourn_time == pytest.approx(reference.mean_sojourn_time, rel=0.06)
        assert fleet.mean_jobs_in_system == pytest.approx(reference.mean_jobs_in_system, rel=0.06)

    def test_agrees_with_cluster_simulation_small_n(self):
        workload = poisson_exponential_workload(num_servers=5, utilization=0.8)
        cluster = ClusterSimulation(workload, PowerOfD(2), seed=7, warmup_jobs=5_000).run(60_000)
        fleet = simulate_fleet(5, d=2, utilization=0.8, num_events=400_000, seed=44)
        assert fleet.mean_sojourn_time == pytest.approx(cluster.mean_sojourn_time, rel=0.08)

    def test_three_way_agreement(self):
        """Occupancy fleet, per-server CTMC and per-job DES within tolerance."""
        n, d, rho = 5, 2, 0.8
        estimates = {
            "fleet": simulate_fleet(n, d=d, utilization=rho, num_events=400_000, seed=1).mean_delay,
            "gillespie": simulate_sqd_ctmc(n, d, rho, num_events=400_000, seed=2).mean_delay,
            "cluster": ClusterSimulation(
                poisson_exponential_workload(num_servers=n, utilization=rho),
                PowerOfD(d),
                seed=3,
                warmup_jobs=5_000,
            )
            .run(60_000)
            .mean_delay,
        }
        spread = max(estimates.values()) - min(estimates.values())
        assert spread / min(estimates.values()) < 0.10, estimates

    def test_random_policy_matches_mm1(self):
        result = simulate_fleet(50, utilization=0.8, num_events=300_000, seed=5, policy="random")
        assert result.mean_sojourn_time == pytest.approx(1.0 / (1.0 - 0.8), rel=0.08)

    def test_jsq_beats_sqd_beats_random(self):
        kwargs = dict(num_servers=100, utilization=0.9, num_events=200_000)
        jsq = simulate_fleet(policy="jsq", seed=21, **kwargs).mean_delay
        sq2 = simulate_fleet(d=2, policy="sqd", seed=21, **kwargs).mean_delay
        rnd = simulate_fleet(policy="random", seed=21, **kwargs).mean_delay
        assert jsq < sq2 < rnd


class TestLargeN:
    def test_large_n_matches_meanfield(self):
        """At N = 10^5 the finite-N delay sits on the mean-field prediction."""
        result = simulate_fleet(100_000, d=2, utilization=0.9, num_events=500_000, seed=6)
        prediction = meanfield_delay(0.9, 2)
        assert result.mean_delay == pytest.approx(prediction, rel=0.03)
        assert result.mean_delay == pytest.approx(asymptotic_delay(0.9, 2), rel=0.03)

    def test_event_cost_independent_of_n(self):
        """The whole point: events/sec must not degrade with N."""
        small = simulate_fleet(100, d=2, utilization=0.9, num_events=100_000, seed=8)
        large = simulate_fleet(100_000, d=2, utilization=0.9, num_events=100_000, seed=8)
        assert large.wall_seconds < 10 * small.wall_seconds


class TestScenarios:
    def test_flash_crowd_builds_and_drains(self):
        scenario = get_scenario("flash-crowd", base_utilization=0.6, peak_utilization=1.5)
        result = run_scenario(scenario, num_servers=1_000, d=2, seed=13)
        by_label = dict(zip(result.labels, result.phases))
        assert by_label["spike"].mean_queue_length > by_label["base"].mean_queue_length
        assert result.total_events == sum(p.num_events for p in result.phases)
        assert math.isfinite(result.overall_mean_delay)

    def test_resize_only_drops_idle_servers(self):
        scenario = get_scenario("resize", utilization=0.9, scale_down=0.1)
        result = run_scenario(scenario, num_servers=500, d=2, seed=14)
        scaled_down = dict(zip(result.labels, result.phases))["scaled down"]
        # with rho=0.9 roughly 90% of servers are busy; shrinking to 10% clamps
        assert scaled_down.num_servers > 50

    def test_ramp_increases_delay(self):
        scenario = get_scenario("ramp", start_utilization=0.3, end_utilization=0.95, steps=4)
        result = run_scenario(scenario, num_servers=1_000, d=2, seed=15)
        delays = [phase.mean_sojourn_time for phase in result.phases]
        assert delays[-1] > delays[0]

    def test_custom_scenario_and_table(self):
        scenario = Scenario(
            name="two-step",
            description="half then busy",
            phases=(
                ScenarioPhase(duration=5.0, utilization=0.5, label="calm"),
                ScenarioPhase(duration=5.0, utilization=0.9, label="busy"),
            ),
            warmup_time=2.0,
        )
        result = run_scenario(scenario, num_servers=200, d=2, seed=16)
        table = result.as_table()
        assert "calm" in table and "busy" in table
        assert result.total_time == pytest.approx(10.0, rel=1e-6)
