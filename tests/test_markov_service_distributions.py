"""Tests for the service-time distribution catalogue."""

import numpy as np
import pytest

from repro.markov.service_distributions import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
    PhaseTypeService,
)
from repro.utils.validation import ValidationError


class TestExponentialService:
    def test_moments(self):
        dist = ExponentialService(2.0)
        assert dist.mean == pytest.approx(0.5)
        assert dist.variance == pytest.approx(0.25)
        assert dist.scv == pytest.approx(1.0)

    def test_lst(self):
        dist = ExponentialService(1.0)
        assert dist.lst(0.0) == pytest.approx(1.0)
        assert dist.lst(1.0) == pytest.approx(0.5)

    def test_sampling_moments(self, rng):
        dist = ExponentialService(1.0)
        samples = dist.sample(rng, 50_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.03)

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            ExponentialService(-1.0)


class TestErlangService:
    def test_moments_and_scv(self):
        dist = ErlangService(stages=4, mean=2.0)
        assert dist.mean == pytest.approx(2.0)
        assert dist.scv == pytest.approx(0.25)

    def test_single_stage_is_exponential(self):
        erlang = ErlangService(stages=1, mean=1.0)
        exponential = ExponentialService(1.0)
        for s in (0.0, 0.5, 2.0):
            assert erlang.lst(s) == pytest.approx(exponential.lst(s))

    def test_pdf_integrates_to_one(self):
        from scipy.integrate import quad

        dist = ErlangService(stages=3, mean=1.0)
        total, _ = quad(dist.pdf, 0, 50)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_invalid_stages(self):
        with pytest.raises(ValidationError):
            ErlangService(stages=0)


class TestHyperexponentialService:
    def test_moments(self):
        dist = HyperexponentialService([0.5, 0.5], [1.0, 2.0])
        assert dist.mean == pytest.approx(0.75)
        assert dist.scv >= 1.0

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            HyperexponentialService([0.5, 0.4], [1.0, 2.0])

    def test_balanced_two_phase_matches_targets(self):
        dist = HyperexponentialService.balanced_two_phase(mean=2.0, scv=4.0)
        assert dist.mean == pytest.approx(2.0)
        assert dist.scv == pytest.approx(4.0, rel=1e-6)

    def test_balanced_two_phase_requires_scv_at_least_one(self):
        with pytest.raises(ValidationError):
            HyperexponentialService.balanced_two_phase(mean=1.0, scv=0.5)

    def test_sampling_mean(self, rng):
        dist = HyperexponentialService.balanced_two_phase(mean=1.0, scv=5.0)
        samples = dist.sample(rng, 100_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.05)


class TestDeterministicService:
    def test_moments(self):
        dist = DeterministicService(3.0)
        assert dist.mean == 3.0
        assert dist.variance == 0.0
        assert dist.scv == 0.0

    def test_samples_are_constant(self, rng):
        assert np.all(DeterministicService(1.5).sample(rng, 5) == 1.5)

    def test_lst(self):
        dist = DeterministicService(2.0)
        assert dist.lst(1.0) == pytest.approx(np.exp(-2.0))

    def test_atoms(self):
        assert DeterministicService(2.0).atoms() == [(2.0, 1.0)]


class TestPhaseTypeService:
    def test_erlang_representation_matches_erlang(self):
        ph = PhaseTypeService.from_erlang(stages=3, mean=1.5)
        erlang = ErlangService(stages=3, mean=1.5)
        assert ph.mean == pytest.approx(erlang.mean)
        assert ph.variance == pytest.approx(erlang.variance)
        for s in (0.1, 1.0, 3.0):
            assert ph.lst(s) == pytest.approx(erlang.lst(s), rel=1e-9)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValidationError):
            PhaseTypeService([0.5, 0.4], [[-1.0, 0.0], [0.0, -1.0]])

    def test_invalid_subgenerator_rejected(self):
        with pytest.raises(ValidationError):
            PhaseTypeService([1.0], [[1.0]])  # positive diagonal is not a sub-generator

    def test_sampling_mean(self, rng):
        ph = PhaseTypeService.from_erlang(stages=2, mean=1.0)
        samples = ph.sample(rng, 5_000)
        assert samples.mean() == pytest.approx(1.0, rel=0.1)

    def test_pdf_positive_and_decaying(self):
        ph = PhaseTypeService.from_erlang(stages=2, mean=1.0)
        assert ph.pdf(0.5) > 0
        assert ph.pdf(50.0) < 1e-10
