"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.model import SQDModel
from repro.core.state import (
    canonical_state,
    elementary_successors,
    imbalance,
    partial_sums,
    precedence_decomposition,
    precedes,
    tie_groups,
    total_jobs,
    waiting_jobs,
)
from repro.core.state_space import repeating_block_size
from repro.core.transitions import arrival_transitions, departure_transitions
from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.markov.arrival_processes import PoissonArrivals, beta_coefficients
from repro.utils.combinatorics import binomial, descending_tuples, num_bounded_descending_tuples

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
queue_lengths = st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=6)


@st.composite
def models_and_states(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    d = draw(st.integers(min_value=1, max_value=n))
    utilization = draw(st.floats(min_value=0.05, max_value=0.95))
    raw = draw(st.lists(st.integers(min_value=0, max_value=6), min_size=n, max_size=n))
    model = SQDModel(num_servers=n, d=d, utilization=utilization)
    return model, canonical_state(raw)


@st.composite
def bounded_models_and_states(draw):
    """A model, a threshold, and a state inside the restricted space S."""
    n = draw(st.integers(min_value=2, max_value=5))
    d = draw(st.integers(min_value=1, max_value=n))
    threshold = draw(st.integers(min_value=1, max_value=3))
    utilization = draw(st.floats(min_value=0.05, max_value=0.95))
    base = draw(st.integers(min_value=0, max_value=5))
    offsets = sorted(
        draw(st.lists(st.integers(min_value=0, max_value=threshold), min_size=n - 1, max_size=n - 1)),
        reverse=True,
    )
    state = tuple(base + o for o in offsets) + (base,)
    model = SQDModel(num_servers=n, d=d, utilization=utilization)
    return model, threshold, state


# ---------------------------------------------------------------------------
# State representation
# ---------------------------------------------------------------------------
class TestStateProperties:
    @given(queue_lengths)
    def test_canonical_state_is_sorted_permutation(self, lengths):
        state = canonical_state(lengths)
        assert sorted(state) == sorted(lengths)
        assert all(state[i] >= state[i + 1] for i in range(len(state) - 1))

    @given(queue_lengths)
    def test_totals_invariant_under_canonicalization(self, lengths):
        state = canonical_state(lengths)
        assert total_jobs(state) == sum(lengths)
        assert waiting_jobs(state) == sum(max(v - 1, 0) for v in lengths)

    @given(queue_lengths)
    def test_tie_groups_cover_the_state_exactly_once(self, lengths):
        state = canonical_state(lengths)
        groups = tie_groups(state)
        covered = [position for start, end, _ in groups for position in range(start, end + 1)]
        assert covered == list(range(len(state)))
        for start, end, value in groups:
            assert all(state[i] == value for i in range(start, end + 1))

    @given(queue_lengths)
    def test_partial_sums_monotone_and_end_at_total(self, lengths):
        state = canonical_state(lengths)
        sums = partial_sums(state)
        assert list(sums) == sorted(sums)
        assert sums[-1] == total_jobs(state)


class TestPrecedenceProperties:
    @given(queue_lengths)
    def test_precedence_is_reflexive(self, lengths):
        state = canonical_state(lengths)
        assert precedes(state, state)

    @given(queue_lengths, st.integers(min_value=0, max_value=5))
    def test_adding_jobs_moves_up_the_order(self, lengths, extra):
        state = canonical_state(lengths)
        heavier = tuple(v + extra for v in state)
        assert precedes(state, heavier)

    @given(queue_lengths)
    def test_elementary_successors_dominate_the_state(self, lengths):
        state = canonical_state(lengths)
        for successor in elementary_successors(state):
            assert precedes(state, successor)
            assert not precedes(successor, state) or successor == state

    @given(queue_lengths)
    def test_decomposition_nonnegative_iff_precedes(self, lengths):
        state = canonical_state(lengths)
        for successor in elementary_successors(state):
            coefficients = precedence_decomposition(state, successor)
            assert all(c >= -1e-12 for c in coefficients)

    @given(queue_lengths, queue_lengths)
    def test_precedence_antisymmetry(self, first, second):
        assume(len(first) == len(second))
        a, b = canonical_state(first), canonical_state(second)
        if precedes(a, b) and precedes(b, a):
            assert a == b


# ---------------------------------------------------------------------------
# Transition rates
# ---------------------------------------------------------------------------
class TestTransitionProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(models_and_states())
    def test_arrival_rates_sum_to_lambda_n(self, model_and_state):
        model, state = model_and_state
        total = sum(rate for _, rate in arrival_transitions(state, model))
        assert total == pytest.approx(model.total_arrival_rate, rel=1e-9)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(models_and_states())
    def test_departure_rates_sum_to_busy_servers(self, model_and_state):
        model, state = model_and_state
        total = sum(rate for _, rate in departure_transitions(state, model))
        busy = sum(1 for v in state if v > 0)
        assert total == pytest.approx(busy * model.service_rate, rel=1e-9)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(models_and_states())
    def test_transitions_change_exactly_one_job(self, model_and_state):
        model, state = model_and_state
        for target, _ in arrival_transitions(state, model):
            assert total_jobs(target) == total_jobs(state) + 1
        for target, _ in departure_transitions(state, model):
            assert total_jobs(target) == total_jobs(state) - 1

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(models_and_states())
    def test_targets_are_canonical(self, model_and_state):
        model, state = model_and_state
        for target, _ in arrival_transitions(state, model) + departure_transitions(state, model):
            assert target == canonical_state(target)


# ---------------------------------------------------------------------------
# Bound models
# ---------------------------------------------------------------------------
class TestBoundModelProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=60)
    @given(bounded_models_and_states())
    def test_bound_models_never_leave_the_restricted_space(self, model_threshold_state):
        model, threshold, state = model_threshold_state
        for bound_class in (LowerBoundModel, UpperBoundModel):
            bound = bound_class(model, threshold)
            for target, rate in bound.transition_map(state).items():
                assert rate > 0
                assert imbalance(target) <= threshold
                assert bound.contains(target)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=60)
    @given(bounded_models_and_states())
    def test_redirections_sit_on_the_correct_side_of_the_order(self, model_threshold_state):
        model, threshold, state = model_threshold_state
        lower = LowerBoundModel(model, threshold)
        for redirection in lower.redirections(state):
            assert precedes(redirection.redirected_target, redirection.original_target)
        upper = UpperBoundModel(model, threshold)
        for redirection in upper.redirections(state):
            target = redirection.redirected_target if redirection.redirected_target is not None else state
            assert precedes(redirection.original_target, target)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None, max_examples=60)
    @given(bounded_models_and_states())
    def test_lower_bound_conserves_total_rate(self, model_threshold_state):
        model, threshold, state = model_threshold_state
        lower = LowerBoundModel(model, threshold)
        busy = sum(1 for v in state if v > 0)
        expected = model.total_arrival_rate + busy * model.service_rate
        redirected_self_loops = sum(
            r.rate for r in lower.redirections(state) if r.redirected_target == state
        )
        total = sum(lower.transition_map(state).values())
        assert total == pytest.approx(expected - redirected_self_loops, rel=1e-9)


# ---------------------------------------------------------------------------
# Combinatorics and coefficients
# ---------------------------------------------------------------------------
class TestCombinatoricsProperties:
    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=6))
    def test_descending_tuple_count_formula(self, length, max_value):
        produced = list(descending_tuples(length, max_value))
        assert len(produced) == num_bounded_descending_tuples(length, max_value)
        assert len(set(produced)) == len(produced)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=5))
    def test_block_size_equals_bounded_tuple_count(self, n, t):
        assert repeating_block_size(n, t) == binomial(n + t - 1, t)

    @given(st.integers(min_value=1, max_value=10), st.integers(min_value=1, max_value=10))
    def test_pascal_rule(self, n, k):
        assert binomial(n, k) == binomial(n - 1, k - 1) + binomial(n - 1, k)


class TestBetaCoefficientProperties:
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_poisson_betas_are_a_probability_distribution_prefix(self, rho):
        coefficients = beta_coefficients(PoissonArrivals(rho), service_rate=1.0, max_k=50)
        assert all(c >= 0 for c in coefficients)
        assert sum(coefficients) <= 1.0 + 1e-9
        # Geometric structure: beta_{k+1} / beta_k = 1 / (1 + rho).
        ratios = [coefficients[k + 1] / coefficients[k] for k in range(10)]
        assert all(r == pytest.approx(1.0 / (1.0 + rho), rel=1e-9) for r in ratios)

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_sigma_fixed_point_for_poisson(self, rho):
        # x = sum_k x^k beta_k evaluated at x = rho must return rho (Theorem 3).
        coefficients = beta_coefficients(PoissonArrivals(rho), service_rate=1.0, max_k=400)
        value = sum((rho ** k) * beta for k, beta in enumerate(coefficients))
        assert value == pytest.approx(rho, abs=1e-6)
