"""Tests for the large-N scale study experiment."""

import pytest

from repro.experiments.scale_study import ScaleStudyConfig, ScaleStudyResult, run_scale_study
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def small_study() -> ScaleStudyResult:
    config = ScaleStudyConfig(
        server_counts=(10, 100, 1_000),
        d=2,
        utilization=0.9,
        num_events=120_000,
        bounds_max_servers=10,
    )
    return run_scale_study(config)


class TestScaleStudy:
    def test_one_record_per_pool_size(self, small_study):
        assert small_study.column("N") == [10, 100, 1_000]
        assert len(small_study.fleet_results) == 3

    def test_bounds_only_for_small_n(self, small_study):
        lower = small_study.column("lower_bound")
        assert lower[0] is not None
        assert lower[1] is None and lower[2] is None

    def test_bounds_bracket_the_simulation(self, small_study):
        record = small_study.records[0]
        assert record["lower_bound"] <= record["fleet_delay"] * 1.10
        if record["upper_bound"] is not None:
            assert record["fleet_delay"] <= record["upper_bound"] * 1.10

    def test_error_shrinks_towards_large_n(self, small_study):
        errors = small_study.column("relative_error_percent")
        assert errors[-1] < errors[0]
        assert errors[-1] < 10.0

    def test_table_renders(self, small_study):
        table = small_study.as_table()
        assert "scale study" in table
        assert "fleet delay" in table

    def test_progress_callback(self):
        seen = []
        config = ScaleStudyConfig(server_counts=(10,), num_events=2_000, bounds_max_servers=0)
        run_scale_study(config, progress=lambda i, total, n: seen.append((i, total, n)))
        assert seen == [(0, 1, 10)]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            ScaleStudyConfig(utilization=1.2)
        with pytest.raises(ValidationError):
            ScaleStudyConfig(server_counts=(1,), d=2)
