"""Cross-backend agreement: one spec, three simulators, one bracket.

The acceptance experiment of the API redesign: a moderate configuration
(N=50, d=2, rho=0.85) is run through the ``ctmc``, ``cluster`` and ``fleet``
backends; their ensemble estimates must agree within their confidence
intervals, and every estimate must sit inside the ``qbd_bounds``
lower/upper bracket.  This is the paper's Figure 10 sandwich, executed
through the unified API.
"""

import itertools
import math

import pytest

from repro import ExperimentSpec, run, select_backend

SPEC = ExperimentSpec.create(
    num_servers=50,
    d=2,
    utilization=0.85,
    num_events=120_000,   # ctmc / fleet horizon per replication
    num_jobs=30_000,      # cluster horizon per replication
    seed=20160627,
    threshold=2,          # keeps the QBD block at C(51, 2) = 1275
)

SIMULATORS = ("ctmc", "cluster", "fleet")


@pytest.fixture(scope="module")
def estimates():
    return {
        name: run(SPEC, backend=name, replications=4)
        for name in SIMULATORS
    }


@pytest.fixture(scope="module")
def bracket():
    return run(SPEC, backend="qbd_bounds")


class TestCrossBackendAgreement:
    def test_every_simulator_returns_an_interval(self, estimates):
        for name, result in estimates.items():
            assert result.replications == 4, name
            assert math.isfinite(result.half_width), name
            assert result.mean_delay > 1.0, name

    def test_simulators_agree_within_confidence_intervals(self, estimates):
        # Pairwise: the difference of means must be covered by the summed
        # half-widths (plus slack for the independent finite-sample biases
        # of three genuinely different engines).
        for a, b in itertools.combinations(SIMULATORS, 2):
            first, second = estimates[a], estimates[b]
            gap = abs(first.mean_delay - second.mean_delay)
            allowance = 1.5 * (first.half_width + second.half_width)
            assert gap <= allowance, (
                f"{a} ({first.mean_delay:.4f} ± {first.half_width:.4f}) vs "
                f"{b} ({second.mean_delay:.4f} ± {second.half_width:.4f}): "
                f"gap {gap:.4f} > allowance {allowance:.4f}"
            )

    def test_estimates_sit_inside_the_qbd_bracket(self, estimates, bracket):
        lower = bracket.extras["lower_delay"]
        upper = bracket.extras["upper_delay"]  # inf when the T=2 upper model is unstable
        assert lower < upper
        for name, result in estimates.items():
            assert lower <= result.mean_delay <= upper, (
                f"{name} estimate {result.mean_delay:.4f} outside [{lower:.4f}, {upper}]"
            )

    def test_estimates_respect_the_meanfield_direction(self, estimates):
        # At finite N the SQ(d) delay exceeds its N -> infinity limit.
        limit = run(SPEC, backend="meanfield").mean_delay
        for name, result in estimates.items():
            assert result.mean_delay >= limit - 3.0 * result.half_width, name

    def test_auto_selects_a_capable_engine_for_every_backend_spec(self, estimates):
        # The acceptance clause: auto must place every spec in this test.
        chosen = select_backend(SPEC)
        assert chosen.name in SIMULATORS
        assert chosen.capabilities.why_unsupported(SPEC) is None
        for name in SIMULATORS + ("qbd_bounds", "meanfield"):
            result = estimates.get(name)
            if result is not None:
                assert result.backend == name
