"""Tests for the per-server queue-length tail distribution of the bound models."""

import pytest

from repro.core.asymptotic import asymptotic_queue_length_distribution
from repro.core.bound_models import LowerBoundModel
from repro.core.exact import solve_exact_truncated
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.core.qbd_solver import SolutionMethod, solve_bound_model
from repro.core.state import State


def exact_tail_distribution(model: SQDModel, buffer_size: int, max_length: int):
    """Brute-force tail fractions from the exact truncated chain."""
    solution = solve_exact_truncated(model, buffer_size=buffer_size)
    tail = [0.0] * (max_length + 1)
    for state, probability in solution.distribution.items():
        for k in range(max_length + 1):
            tail[k] += probability * sum(1 for v in state if v >= k) / model.num_servers
    return tail


class TestQueueLengthTailDistribution:
    def test_basic_properties(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        tail = solution.queue_length_tail_distribution(max_length=20)
        assert tail[0] == pytest.approx(1.0, abs=1e-8)
        assert all(tail[k] >= tail[k + 1] - 1e-12 for k in range(20))
        assert tail[-1] < 0.05

    def test_s1_equals_utilization(self, small_lower_blocks):
        # The fraction of busy servers equals rho for the (job-conserving)
        # lower bound model, exactly as in the original system.
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        tail = solution.queue_length_tail_distribution(max_length=5)
        assert tail[1] == pytest.approx(small_lower_blocks.model.utilization, abs=1e-8)

    def test_scalar_and_matrix_methods_agree(self, small_model):
        blocks = LowerBoundModel(small_model, 2).qbd_blocks()
        matrix_tail = solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC).queue_length_tail_distribution(15)
        scalar_tail = solve_improved_lower_bound(small_model, 2, blocks=blocks).queue_length_tail_distribution(15)
        assert matrix_tail == pytest.approx(scalar_tail, abs=1e-9)

    def test_mean_queue_length_consistent_with_tail_sum(self, small_lower_blocks):
        # E[per-server queue length] = sum_{k>=1} P(queue >= k).
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        tail = solution.queue_length_tail_distribution(max_length=60)
        mean_per_server = sum(tail[1:])
        assert mean_per_server * small_lower_blocks.model.num_servers == pytest.approx(
            solution.mean_jobs_in_system, rel=1e-6
        )

    def test_close_to_exact_distribution_at_moderate_load(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.6)
        lower_tail = solve_improved_lower_bound(model, 3).queue_length_tail_distribution(max_length=8)
        exact_tail = exact_tail_distribution(model, buffer_size=20, max_length=8)
        for k in range(4):
            assert lower_tail[k] == pytest.approx(exact_tail[k], abs=0.02)
        # The lower bound model is stochastically smaller, so its tail is lighter.
        assert all(lower_tail[k] <= exact_tail[k] + 1e-6 for k in range(9))

    def test_heavier_than_asymptotic_tail_for_small_n(self):
        # The finite-N queue-length tail is heavier than the mean-field tail at
        # high load (the same effect Figure 9 quantifies through the delay).
        model = SQDModel(num_servers=3, d=2, utilization=0.9)
        lower_tail = solve_improved_lower_bound(model, 3).queue_length_tail_distribution(max_length=10)
        asymptotic_tail = asymptotic_queue_length_distribution(0.9, 2, max_length=10)
        assert lower_tail[4] > asymptotic_tail[4]
