"""Tests for the exact truncated SQ(d) oracle."""

import pytest

from repro.core.delay import mm1_sojourn_time, mmn_sojourn_time
from repro.core.exact import exact_state_space_size, solve_exact_truncated
from repro.core.model import SQDModel
from repro.utils.validation import ValidationError


class TestExactOracle:
    def test_d1_two_servers_matches_mm1(self):
        # SQ(1) = independent M/M/1 queues, so the mean sojourn time is 1/(1-rho).
        model = SQDModel(num_servers=2, d=1, utilization=0.6)
        solution = solve_exact_truncated(model, buffer_size=60)
        assert solution.mean_delay == pytest.approx(mm1_sojourn_time(0.6), rel=1e-4)

    def test_jsq_two_servers_between_mm2_and_mm1(self):
        model = SQDModel(num_servers=2, d=2, utilization=0.7)
        solution = solve_exact_truncated(model, buffer_size=40)
        assert mmn_sojourn_time(2, 0.7) < solution.mean_delay < mm1_sojourn_time(0.7)

    def test_more_choices_reduce_exact_delay(self):
        delays = []
        for d in (1, 2, 3):
            model = SQDModel(num_servers=3, d=d, utilization=0.8)
            delays.append(solve_exact_truncated(model, buffer_size=20).mean_delay)
        assert delays[0] > delays[1] > delays[2]

    def test_distribution_normalized_and_truncation_small(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.7)
        solution = solve_exact_truncated(model, buffer_size=25)
        assert sum(solution.distribution.values()) == pytest.approx(1.0, abs=1e-9)
        assert solution.truncation_mass < 1e-6
        # Every ordered state with all queues at most B is reachable.
        assert solution.num_states == exact_state_space_size(model, 25)

    def test_truncation_mass_decreases_with_buffer(self):
        model = SQDModel(num_servers=2, d=2, utilization=0.9)
        small = solve_exact_truncated(model, buffer_size=10)
        large = solve_exact_truncated(model, buffer_size=30)
        assert large.truncation_mass < small.truncation_mass

    def test_state_space_size_formula(self):
        model = SQDModel(num_servers=2, d=2, utilization=0.5)
        # Ordered states with both queues at most B: C(B+2, 2).
        assert exact_state_space_size(model, 10) == 66

    def test_unstable_model_rejected(self):
        with pytest.raises(ValidationError):
            solve_exact_truncated(SQDModel(2, 2, 1.1), buffer_size=10)

    def test_invalid_buffer_rejected(self):
        with pytest.raises(Exception):
            solve_exact_truncated(SQDModel(2, 2, 0.5), buffer_size=0)
