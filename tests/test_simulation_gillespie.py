"""Tests for the CTMC (Gillespie) SQ(d) simulator."""

import pytest

from repro.core.delay import mm1_sojourn_time, mmn_sojourn_time
from repro.policies import JoinShortestQueue
from repro.simulation.gillespie import simulate_sqd_ctmc
from repro.simulation.workloads import poisson_exponential_workload
from repro.simulation.cluster import ClusterSimulation
from repro.policies.sqd import PowerOfD


class TestAgainstClosedForms:
    def test_d1_matches_mm1(self):
        result = simulate_sqd_ctmc(num_servers=4, d=1, utilization=0.7, num_events=400_000, seed=3)
        assert result.mean_delay == pytest.approx(mm1_sojourn_time(0.7), rel=0.05)

    def test_single_server_matches_mm1(self):
        result = simulate_sqd_ctmc(num_servers=1, d=1, utilization=0.5, num_events=200_000, seed=4)
        assert result.mean_delay == pytest.approx(2.0, rel=0.05)

    def test_jsq_close_to_mmn_lower_envelope(self):
        # JSQ is within a few percent of the (unattainable) central-queue M/M/N
        # at moderate load, and never below it.
        n, rho = 3, 0.8
        result = simulate_sqd_ctmc(num_servers=n, d=n, utilization=rho, num_events=500_000, seed=5)
        reference = mmn_sojourn_time(n, rho)
        assert result.mean_delay >= reference * 0.97
        assert result.mean_delay <= reference * 1.35

    def test_more_choices_reduce_delay(self):
        delays = []
        for d in (1, 2, 4):
            delays.append(
                simulate_sqd_ctmc(num_servers=8, d=d, utilization=0.9, num_events=300_000, seed=6).mean_delay
            )
        assert delays[0] > delays[1] > delays[2]

    def test_agrees_with_job_level_simulator(self):
        n, d, rho = 4, 2, 0.8
        ctmc = simulate_sqd_ctmc(num_servers=n, d=d, utilization=rho, num_events=400_000, seed=7)
        workload = poisson_exponential_workload(n, rho)
        job_level = ClusterSimulation(workload, PowerOfD(d), seed=7, warmup_jobs=5_000).run(80_000)
        assert ctmc.mean_delay == pytest.approx(job_level.mean_sojourn_time, rel=0.08)


class TestInterface:
    def test_waiting_plus_service_equals_sojourn(self):
        result = simulate_sqd_ctmc(num_servers=3, d=2, utilization=0.6, num_events=100_000, seed=8)
        assert result.mean_sojourn_time == pytest.approx(result.mean_waiting_time + 1.0)

    def test_littles_law_consistency(self):
        result = simulate_sqd_ctmc(num_servers=3, d=2, utilization=0.6, num_events=100_000, seed=9)
        arrival_rate = 0.6 * 3
        assert result.mean_jobs_in_system == pytest.approx(result.mean_sojourn_time * arrival_rate, rel=1e-9)

    def test_reproducible_with_seed(self):
        first = simulate_sqd_ctmc(3, 2, 0.7, num_events=50_000, seed=10)
        second = simulate_sqd_ctmc(3, 2, 0.7, num_events=50_000, seed=10)
        assert first.mean_delay == second.mean_delay

    def test_unstable_utilization_rejected(self):
        with pytest.raises(Exception):
            simulate_sqd_ctmc(3, 2, 1.0, num_events=1_000)

    def test_d_larger_than_n_rejected(self):
        with pytest.raises(Exception):
            simulate_sqd_ctmc(3, 4, 0.5, num_events=1_000)

    def test_custom_policy_is_used(self):
        jsq = simulate_sqd_ctmc(4, 2, 0.9, num_events=200_000, seed=11, policy=JoinShortestQueue())
        sq2 = simulate_sqd_ctmc(4, 2, 0.9, num_events=200_000, seed=11)
        assert jsq.mean_delay < sq2.mean_delay

    def test_imbalance_metric_is_nonnegative(self):
        result = simulate_sqd_ctmc(3, 2, 0.7, num_events=50_000, seed=12)
        assert result.mean_queue_imbalance >= 0
