"""Campaign durability: interruption, SIGKILL, crash reclaim, resume identity.

The load-bearing guarantee of :mod:`repro.campaigns`: a campaign interrupted
at *any* instant — graceful ``max_tasks`` stop, SIGKILL of the scheduler
process, SIGKILL of a worker mid-task — resumes from its directory and
finishes with results **bitwise identical** to a never-interrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignError,
    campaign_fingerprint,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.campaigns.manifest import CampaignManifest
from repro.ensemble.grid import GridConfig

SRC = str(Path(__file__).resolve().parent.parent / "src")


def small_grid(**overrides):
    base = dict(
        server_counts=(20,),
        choices=(2,),
        utilizations=(0.8, 0.95),
        num_events=2000,
        replications=3,
        seed=7,
        workers=1,
    )
    base.update(overrides)
    return GridConfig(**base)


class TestResumeIdentity:
    def test_interrupted_resume_is_bitwise_identical(self, tmp_path):
        clean = run_campaign(grid=small_grid(), directory=tmp_path / "clean")
        assert clean.complete and clean.executed_tasks == 6

        interrupted = run_campaign(
            grid=small_grid(), directory=tmp_path / "twin", max_tasks=2
        )
        assert not interrupted.complete and interrupted.executed_tasks == 2
        status = campaign_status(tmp_path / "twin")
        assert not status.complete and status.counts["done"] == 2

        resumed = resume_campaign(tmp_path / "twin")
        assert resumed.complete and resumed.executed_tasks == 4

        fp_clean = campaign_fingerprint(tmp_path / "clean")
        fp_twin = campaign_fingerprint(tmp_path / "twin")
        assert fp_clean == fp_twin  # records AND streamed estimates, bitwise

    def test_repeated_interruptions_still_identical(self, tmp_path):
        run_campaign(grid=small_grid(), directory=tmp_path / "clean")
        directory = tmp_path / "choppy"
        result = run_campaign(grid=small_grid(), directory=directory, max_tasks=1)
        hops = 0
        while not result.complete:
            result = resume_campaign(directory, max_tasks=1)
            hops += 1
            assert hops < 20, "resume loop failed to make progress"
        assert campaign_fingerprint(directory) == campaign_fingerprint(tmp_path / "clean")

    def test_resume_of_finished_campaign_is_noop(self, tmp_path):
        run_campaign(grid=small_grid(), directory=tmp_path / "done")
        again = resume_campaign(tmp_path / "done")
        assert again.complete and again.executed_tasks == 0

    def test_worker_count_does_not_change_results(self, tmp_path):
        run_campaign(grid=small_grid(replications=4), directory=tmp_path / "serial")
        run_campaign(
            grid=small_grid(replications=4, workers=3), directory=tmp_path / "pool"
        )
        assert campaign_fingerprint(tmp_path / "serial") == campaign_fingerprint(
            tmp_path / "pool"
        )

    def test_resume_against_different_grid_fails_loudly(self, tmp_path):
        run_campaign(grid=small_grid(), directory=tmp_path / "camp", max_tasks=1)
        with pytest.raises(CampaignError, match="differs"):
            run_campaign(grid=small_grid(seed=8), directory=tmp_path / "camp")


class TestSigkillResume:
    def test_sigkill_mid_sweep_then_resume_is_bitwise_identical(self, tmp_path):
        """Kill -9 the whole scheduler process mid-campaign; resume; compare."""
        clean_dir = tmp_path / "clean"
        run_campaign(grid=small_grid(replications=4), directory=clean_dir)

        victim_dir = tmp_path / "victim"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CAMPAIGN_TASK_DELAY"] = "0.15"  # widen the kill window
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run",
                "--dir", str(victim_dir),
                "--servers", "20", "--utilizations", "0.8", "0.95",
                "--events", "2000", "--replications", "4", "--seed", "7",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        records = victim_dir / "records.jsonl"
        deadline = time.time() + 60.0
        # Wait until at least one record is durably on disk, then SIGKILL
        # mid-sweep — with the per-task delay the scheduler is overwhelmingly
        # likely to be holding leases and half-written state right now.
        while time.time() < deadline:
            if records.exists() and records.stat().st_size > 0:
                break
            if process.poll() is not None:
                pytest.fail("campaign finished before the test could kill it")
            time.sleep(0.01)
        else:
            process.kill()
            pytest.fail("campaign produced no records within 60s")
        os.kill(process.pid, signal.SIGKILL)
        process.wait(timeout=30)

        interrupted = campaign_status(victim_dir)
        assert not interrupted.complete  # it really was cut short

        resumed = resume_campaign(victim_dir)
        assert resumed.complete
        assert campaign_fingerprint(victim_dir) == campaign_fingerprint(clean_dir)

    def test_worker_crash_is_reclaimed_and_result_identical(self, tmp_path):
        """A worker SIGKILLs itself after its first task — after simulating,
        before reporting (the worst-case window).  The scheduler must reclaim
        the lease, respawn, finish, and still match the clean run."""
        clean_dir = tmp_path / "clean"
        run_campaign(grid=small_grid(replications=4), directory=clean_dir)

        crash_dir = tmp_path / "crash"
        old = {
            key: os.environ.get(key)
            for key in ("REPRO_CAMPAIGN_CRASH_AFTER", "REPRO_CAMPAIGN_CRASH_WORKER")
        }
        os.environ["REPRO_CAMPAIGN_CRASH_AFTER"] = "1"
        os.environ["REPRO_CAMPAIGN_CRASH_WORKER"] = "w0"
        try:
            result = run_campaign(
                grid=small_grid(replications=4, workers=2), directory=crash_dir
            )
        finally:
            for key, value in old.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        assert result.complete
        assert campaign_fingerprint(crash_dir) == campaign_fingerprint(clean_dir)


class TestAdaptiveAllocation:
    def test_replications_go_where_intervals_are_widest(self, tmp_path):
        """The whole point of per-point adaptive allocation: the noisy
        high-utilization point must receive strictly more replications than
        the quiet low-utilization point, and both must converge."""
        grid = small_grid(
            utilizations=(0.5, 0.95), num_events=1500, replications=3, seed=11
        )
        result = run_campaign(
            grid=grid,
            directory=tmp_path / "adaptive",
            target_relative_half_width=0.10,
            max_replications=24,
            batch_size=3,
        )
        assert result.complete
        by_rho = {point.labels["utilization"]: point for point in result.points}
        quiet, noisy = by_rho[0.5], by_rho[0.95]
        assert quiet.converged and noisy.converged
        assert quiet.replications == grid.replications  # converged immediately
        assert noisy.replications > quiet.replications  # budget went to the noise
        # And the allocation is itself resumable: interrupt a twin mid-flight
        # and the adaptive decisions come out identical.
        twin_dir = tmp_path / "adaptive-twin"
        twin = run_campaign(
            grid=grid,
            directory=twin_dir,
            target_relative_half_width=0.10,
            max_replications=24,
            batch_size=3,
            max_tasks=4,
        )
        assert not twin.complete
        twin = resume_campaign(twin_dir)
        assert twin.complete
        assert campaign_fingerprint(twin_dir) == campaign_fingerprint(tmp_path / "adaptive")

    def test_cap_retires_unconverged_points(self, tmp_path):
        result = run_campaign(
            grid=small_grid(utilizations=(0.95,), num_events=1000, replications=2),
            directory=tmp_path / "capped",
            target_relative_half_width=1e-6,  # unreachable
            max_replications=4,
            batch_size=2,
        )
        assert result.complete  # the campaign finishes...
        point = result.points[0]
        assert point.replications == 4  # ...at the cap
        assert not point.converged  # ...and says so

    def test_campaign_memory_is_o_points_not_o_jobs(self, tmp_path):
        """Per-point scheduler state must not grow with the replication
        count: streaming moments instead of sample lists, an empty
        out-of-order buffer once folded, slots everywhere."""
        from repro.campaigns.accumulators import PointAccumulator, StreamingMoments

        result = run_campaign(
            grid=small_grid(utilizations=(0.8,), num_events=500, replications=32),
            directory=tmp_path / "wide",
        )
        assert result.complete and result.total_replications == 32
        accumulator = PointAccumulator()
        for index in range(10_000):
            accumulator.add(index, {"replication": index, "mean_delay": 2.0 + index * 1e-4})
        assert accumulator.count == 10_000
        assert accumulator.buffered == 0  # nothing retained per record
        assert not hasattr(accumulator, "__dict__")
        assert not hasattr(accumulator.statistics("mean_delay"), "__dict__")
        assert not hasattr(StreamingMoments(), "samples")


class TestCampaignCli:
    def test_status_and_resume_round_trip(self, tmp_path):
        directory = tmp_path / "cli"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        run = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run",
                "--dir", str(directory),
                "--servers", "20", "--utilizations", "0.8",
                "--events", "1000", "--replications", "2", "--seed", "3",
                "--max-tasks", "1",
            ],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert run.returncode == 0, run.stderr
        assert "interrupted" in run.stdout and "campaign resume" in run.stdout

        snapshot_path = tmp_path / "status.json"
        status = subprocess.run(
            [sys.executable, "-m", "repro.cli", "campaign", "status",
             "--dir", str(directory), "--json", str(snapshot_path)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert status.returncode == 0, status.stderr
        assert "resumable" in status.stdout
        snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
        assert snapshot["complete"] is False
        assert snapshot["counts"]["done"] == 1

        resume = subprocess.run(
            [sys.executable, "-m", "repro.cli", "campaign", "resume",
             "--dir", str(directory)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert resume.returncode == 0, resume.stderr
        assert "complete" in resume.stdout
        assert campaign_status(directory).complete

    def test_run_refuses_existing_directory(self, tmp_path):
        directory = tmp_path / "cli2"
        run_campaign(grid=small_grid(), directory=directory, max_tasks=1)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        rerun = subprocess.run(
            [sys.executable, "-m", "repro.cli", "campaign", "run",
             "--dir", str(directory), "--servers", "20",
             "--utilizations", "0.8", "--events", "1000"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert rerun.returncode != 0
        assert "resume" in rerun.stderr

    def test_manifest_records_provenance_and_policy(self, tmp_path):
        directory = tmp_path / "manifest"
        run_campaign(
            grid=small_grid(),
            directory=directory,
            target_relative_half_width=0.2,
            max_replications=8,
            max_tasks=1,
        )
        manifest = CampaignManifest.load(directory)
        assert manifest.target_relative_half_width == 0.2
        assert manifest.max_replications == 8
        assert manifest.grid["seed"] == 7
        assert "package_version" in manifest.provenance or manifest.provenance
