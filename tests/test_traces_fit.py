"""Model fitting: moment matching onto MMPP2 and the renewal families."""

import json

import numpy as np
import pytest

from repro.api.spec import ExperimentSpec, SpecError
from repro.markov.arrival_processes import MarkovianArrivalProcess, PoissonArrivals
from repro.markov.service_distributions import ErlangService, HyperexponentialService
from repro.markov.arrival_processes import RenewalArrivals
from repro.traces import (
    TraceFitError,
    fit_arrival,
    fit_erlang,
    fit_hyperexponential,
    fit_mmpp2,
    fit_poisson,
    summarize_trace,
    synthesize_trace,
)


@pytest.fixture(scope="module")
def truth() -> MarkovianArrivalProcess:
    return MarkovianArrivalProcess.mmpp2(
        rate_high=3.0, rate_low=0.4, switch_to_low=0.05, switch_to_high=0.04
    ).rescaled(42.5)


@pytest.fixture(scope="module")
def bursty_summary(truth):
    return summarize_trace(synthesize_trace(truth, 60_000, seed=2016))


class TestFitMMPP2:
    def test_recovers_analytic_targets_exactly(self, truth, bursty_summary):
        # Fit to the *analytic* statistics of a known MMPP2: the optimizer
        # must land on a model reproducing them within tolerance.
        fit = fit_mmpp2(
            bursty_summary,
            targets={
                "scv": truth.interarrival_scv,
                "lag1": truth.lag_autocorrelation(1),
                "idc": truth.asymptotic_idc(),
            },
        )
        assert fit.converged
        fitted = fit.process
        assert isinstance(fitted, MarkovianArrivalProcess)
        assert fitted.interarrival_scv == pytest.approx(truth.interarrival_scv, rel=0.05)
        assert fitted.lag_autocorrelation(1) == pytest.approx(
            truth.lag_autocorrelation(1), abs=0.02
        )
        assert fitted.asymptotic_idc() == pytest.approx(truth.asymptotic_idc(), rel=0.05)

    def test_fit_from_synthesized_trace_converges(self, truth, bursty_summary):
        fit = fit_mmpp2(bursty_summary)
        assert fit.family == "mmpp2"
        assert fit.converged, fit.as_table()
        assert fit.max_relative_error < 0.05
        assert fit.process.rate == pytest.approx(bursty_summary.rate, rel=1e-9)
        # The fitted model must be bursty like the truth, not Poisson-like.
        assert fit.process.interarrival_scv > 2.0
        assert fit.process.lag_autocorrelation(1) > 0.2

    def test_spec_params_are_unit_rate_normalized(self, bursty_summary):
        fit = fit_mmpp2(bursty_summary)
        params = dict(fit.arrival.params)
        assert set(params) == {"rate_high", "rate_low", "switch_to_low", "switch_to_high"}
        unit = MarkovianArrivalProcess.mmpp2(**params)
        assert unit.rate == pytest.approx(1.0, rel=1e-6)

    def test_rejects_underdispersed_and_uncorrelated(self, bursty_summary):
        with pytest.raises(TraceFitError):
            fit_mmpp2(bursty_summary, targets={"scv": 0.8})
        with pytest.raises(TraceFitError):
            fit_mmpp2(bursty_summary, targets={"lag1": -0.1})

    def test_rejects_unknown_targets(self, bursty_summary):
        with pytest.raises(TraceFitError):
            fit_mmpp2(bursty_summary, targets={"skewness": 3.0})


class TestRenewalFits:
    def test_hyperexponential_matches_scv(self):
        process = RenewalArrivals(
            HyperexponentialService.balanced_two_phase(mean=0.2, scv=4.0)
        )
        summary = summarize_trace(synthesize_trace(process, 40_000, seed=5))
        fit = fit_hyperexponential(summary)
        assert fit.achieved["scv"] == pytest.approx(summary.scv)
        assert fit.converged  # renewal input: no correlation to miss
        assert dict(fit.arrival.params)["scv"] == pytest.approx(4.0, rel=0.1)

    def test_hyperexponential_rejects_smooth_traces(self):
        process = RenewalArrivals(ErlangService(stages=4, mean=0.25))
        summary = summarize_trace(synthesize_trace(process, 20_000, seed=6))
        with pytest.raises(TraceFitError):
            fit_hyperexponential(summary)

    def test_erlang_recovers_stage_count(self):
        process = RenewalArrivals(ErlangService(stages=4, mean=0.25))
        summary = summarize_trace(synthesize_trace(process, 40_000, seed=6))
        fit = fit_erlang(summary)
        assert dict(fit.arrival.params)["stages"] == 4
        assert fit.converged

    def test_erlang_rejects_bursty_traces(self, bursty_summary):
        with pytest.raises(TraceFitError):
            fit_erlang(bursty_summary)

    def test_poisson_fit_is_rate_only(self, bursty_summary):
        fit = fit_poisson(bursty_summary)
        assert isinstance(fit.process, PoissonArrivals)
        assert fit.process.rate == pytest.approx(bursty_summary.rate)
        assert not fit.converged  # the trace is over-dispersed; flagged

    def test_mismatch_headline_only_covers_matched_statistics(self):
        # A Poisson trace has noise-level lag1; the renewal fits structurally
        # achieve 0 there, which must not read as a near-100% "mismatch".
        summary = summarize_trace(synthesize_trace(PoissonArrivals(4.0), 40_000, seed=21))
        poisson = fit_poisson(summary)
        assert poisson.matched == ("rate",)
        assert poisson.max_relative_error == pytest.approx(0.0, abs=1e-12)
        hyper = fit_hyperexponential(
            summarize_trace(
                synthesize_trace(
                    RenewalArrivals(
                        HyperexponentialService.balanced_two_phase(mean=0.2, scv=4.0)
                    ),
                    40_000,
                    seed=22,
                )
            )
        )
        assert hyper.matched == ("rate", "scv")
        assert hyper.max_relative_error < 0.01
        assert "* = matched" in hyper.as_table()


class TestAutoDispatch:
    def test_bursty_trace_gets_mmpp2(self, bursty_summary):
        assert fit_arrival(bursty_summary).family == "mmpp2"

    def test_uncorrelated_overdispersed_gets_hyperexponential(self):
        process = RenewalArrivals(
            HyperexponentialService.balanced_two_phase(mean=0.2, scv=5.0)
        )
        summary = summarize_trace(synthesize_trace(process, 40_000, seed=8))
        assert fit_arrival(summary).family == "hyperexponential"

    def test_smooth_trace_gets_erlang(self):
        process = RenewalArrivals(ErlangService(stages=3, mean=0.5))
        summary = summarize_trace(synthesize_trace(process, 30_000, seed=9))
        assert fit_arrival(summary).family == "erlang"

    def test_poisson_trace_stays_poisson(self):
        summary = summarize_trace(synthesize_trace(PoissonArrivals(4.0), 40_000, seed=10))
        assert fit_arrival(summary).family == "poisson"

    def test_explicit_family_and_unknown_family(self, bursty_summary):
        assert fit_arrival(bursty_summary, family="hyperexponential").family == "hyperexponential"
        with pytest.raises(TraceFitError):
            fit_arrival(bursty_summary, family="weibull")


class TestExperimentSpec:
    def test_spec_reflects_the_trace_rate(self, bursty_summary):
        fit = fit_mmpp2(bursty_summary)
        spec = fit.experiment_spec(num_servers=50, d=2, num_jobs=10_000, seed=3)
        assert spec.system.utilization == pytest.approx(bursty_summary.rate / 50.0)
        assert spec.workload.arrival.name == "mmpp2"
        assert spec.horizon.num_jobs == 10_000
        # The emitted spec round-trips through canonical JSON unchanged.
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        payload = json.loads(spec.to_json())
        assert payload["workload"]["arrival"]["name"] == "mmpp2"

    def test_overloaded_pool_is_rejected(self, bursty_summary):
        fit = fit_mmpp2(bursty_summary)
        with pytest.raises(TraceFitError):
            fit.experiment_spec(num_servers=40)  # rate 42.5ish on 40 servers: rho > 1

    def test_diagnostics_table_renders(self, bursty_summary):
        table = fit_mmpp2(bursty_summary).as_table()
        assert "mmpp2 fit" in table and "scv" in table
