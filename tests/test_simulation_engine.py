"""Tests for the discrete-event scheduler."""

import pytest

from repro.simulation.engine import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, lambda: fired.append("late"))
        scheduler.schedule(1.0, lambda: fired.append("early"))
        scheduler.run()
        assert fired == ["early", "late"]
        assert scheduler.now == pytest.approx(2.0)

    def test_ties_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append("first"))
        scheduler.schedule(1.0, lambda: fired.append("second"))
        scheduler.run()
        assert fired == ["first", "second"]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule_at(3.0, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [3.0]

    def test_cancelled_events_do_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule(1.0, lambda: fired.append("cancelled"))
        scheduler.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        scheduler.run()
        assert fired == ["kept"]
        assert scheduler.executed_events == 1

    def test_events_scheduled_during_execution(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.now)
            if len(fired) < 3:
                scheduler.schedule(1.0, chain)

        scheduler.schedule(1.0, chain)
        scheduler.run()
        assert fired == [1.0, 2.0, 3.0]


class TestRunLimits:
    def test_run_until_time_stops_clock_at_limit(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(2))
        scheduler.run(until_time=2.0)
        assert fired == [1]
        assert scheduler.now == pytest.approx(2.0)
        assert scheduler.pending_events == 1

    def test_run_until_time_advances_clock_when_heap_drains(self):
        """The clock must reach until_time even if every event fires earlier."""
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run(until_time=7.5)
        assert scheduler.now == pytest.approx(7.5)
        assert scheduler.pending_events == 0

    def test_run_until_time_on_empty_heap(self):
        scheduler = EventScheduler()
        scheduler.run(until_time=3.0)
        assert scheduler.now == pytest.approx(3.0)

    def test_run_until_time_in_past_leaves_clock(self):
        scheduler = EventScheduler()
        scheduler.schedule(2.0, lambda: None)
        scheduler.run()
        assert scheduler.now == pytest.approx(2.0)
        scheduler.run(until_time=1.0)
        assert scheduler.now == pytest.approx(2.0)

    def test_max_events_takes_precedence_over_until_time_clamp(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(2.0, lambda: fired.append(2))
        scheduler.run(until_time=10.0, max_events=1)
        assert fired == [1]
        assert scheduler.now == pytest.approx(1.0)

    def test_run_max_events(self):
        scheduler = EventScheduler()
        fired = []
        for i in range(5):
            scheduler.schedule(float(i + 1), lambda i=i: fired.append(i))
        scheduler.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        scheduler = EventScheduler()
        assert scheduler.step() is False

    def test_clock_monotone_nondecreasing(self):
        scheduler = EventScheduler()
        observed = []
        for delay in (3.0, 1.0, 2.0):
            scheduler.schedule(delay, lambda: observed.append(scheduler.now))
        scheduler.run()
        assert observed == sorted(observed)
