"""Tests for the QBD matrix-geometric machinery (Latouche–Ramaswami)."""

import numpy as np
import pytest

from repro.linalg.logarithmic_reduction import (
    QBDSolveError,
    is_qbd_positive_recurrent,
    qbd_drift,
    qbd_residual,
    rate_matrix_from_G,
    rate_matrix_residual,
    solve_G_functional_iteration,
    solve_G_logarithmic_reduction,
)


def mm1_blocks(lam: float, mu: float):
    """The scalar (1x1 block) QBD of an M/M/1 queue."""
    A0 = np.array([[lam]])
    A1 = np.array([[-(lam + mu)]])
    A2 = np.array([[mu]])
    return A0, A1, A2


def mmc_like_blocks():
    """A small 2-phase QBD with a known-stable structure (MAP/M/1-like)."""
    D0 = np.array([[-3.0, 1.0], [0.5, -2.0]])
    D1 = np.array([[1.5, 0.5], [0.5, 1.0]])
    mu = 4.0
    A0 = D1
    A1 = D0 - mu * np.eye(2)
    A2 = mu * np.eye(2)
    return A0, A1, A2


class TestMM1Case:
    def test_G_is_one_for_stable_mm1(self):
        A0, A1, A2 = mm1_blocks(0.5, 1.0)
        result = solve_G_logarithmic_reduction(A0, A1, A2)
        assert result.G.shape == (1, 1)
        assert result.G[0, 0] == pytest.approx(1.0, abs=1e-10)

    def test_R_equals_rho_for_mm1(self):
        lam, mu = 0.7, 1.0
        A0, A1, A2 = mm1_blocks(lam, mu)
        result = solve_G_logarithmic_reduction(A0, A1, A2)
        R = rate_matrix_from_G(A0, A1, result.G)
        assert R[0, 0] == pytest.approx(lam / mu, abs=1e-10)

    def test_drift_sign_matches_stability(self):
        stable = mm1_blocks(0.5, 1.0)
        unstable = mm1_blocks(1.5, 1.0)
        assert qbd_drift(*stable) < 0
        assert qbd_drift(*unstable) > 0
        assert is_qbd_positive_recurrent(*stable)
        assert not is_qbd_positive_recurrent(*unstable)


class TestPhaseTypeCase:
    def test_logarithmic_reduction_solves_fixed_point(self):
        A0, A1, A2 = mmc_like_blocks()
        result = solve_G_logarithmic_reduction(A0, A1, A2)
        assert qbd_residual(A0, A1, A2, result.G) < 1e-9
        # G of a positive recurrent QBD is stochastic.
        assert np.allclose(result.G.sum(axis=1), 1.0, atol=1e-8)

    def test_agrees_with_functional_iteration(self):
        A0, A1, A2 = mmc_like_blocks()
        log_red = solve_G_logarithmic_reduction(A0, A1, A2)
        iterate = solve_G_functional_iteration(A0, A1, A2, tolerance=1e-13)
        assert np.allclose(log_red.G, iterate.G, atol=1e-8)

    def test_logarithmic_reduction_converges_quickly(self):
        A0, A1, A2 = mmc_like_blocks()
        result = solve_G_logarithmic_reduction(A0, A1, A2)
        assert result.iterations <= 10  # the paper reports k <= 6 for its configurations

    def test_rate_matrix_satisfies_its_equation(self):
        A0, A1, A2 = mmc_like_blocks()
        result = solve_G_logarithmic_reduction(A0, A1, A2)
        R = rate_matrix_from_G(A0, A1, result.G)
        assert rate_matrix_residual(A0, A1, A2, R) < 1e-9
        assert np.all(R >= 0)
        assert np.max(np.abs(np.linalg.eigvals(R))) < 1.0


class TestValidation:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            solve_G_logarithmic_reduction(np.eye(2), np.eye(3), np.eye(2))

    def test_negative_rate_blocks_rejected(self):
        A0 = np.array([[-0.5]])
        A1 = np.array([[-1.0]])
        A2 = np.array([[1.0]])
        with pytest.raises(ValueError):
            solve_G_logarithmic_reduction(A0, A1, A2)

    def test_positive_row_sum_rejected(self):
        A0 = np.array([[1.0]])
        A1 = np.array([[-1.0]])
        A2 = np.array([[1.0]])  # rows of A0+A1+A2 sum to +1: not a generator slice
        with pytest.raises(ValueError):
            solve_G_logarithmic_reduction(A0, A1, A2)
