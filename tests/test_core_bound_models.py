"""Tests for the lower/upper bound models and their QBD generator blocks."""

import numpy as np
import pytest

from repro.core.bound_models import (
    BoundKind,
    LowerBoundModel,
    UpperBoundModel,
    make_bound_model,
    verify_redirections_respect_precedence,
)
from repro.core.model import SQDModel
from repro.core.state import imbalance, precedes, total_jobs
from repro.core.state_space import boundary_states, first_repeating_block


@pytest.fixture
def model():
    return SQDModel(num_servers=3, d=2, utilization=0.7)


class TestRedirectionRules:
    def test_lower_bound_redirects_arrival_to_shortest_queue(self, model):
        lower = LowerBoundModel(model, threshold=2)
        # (3, 3, 1) has imbalance 2 = T; an arrival into the top group would
        # give (4, 3, 1) (imbalance 3) and must be redirected to (3, 3, 2).
        redirections = lower.redirections((3, 3, 1))
        arrival_redirects = [r for r in redirections if "arrival" in r.reason]
        assert len(arrival_redirects) == 1
        assert arrival_redirects[0].original_target == (4, 3, 1)
        assert arrival_redirects[0].redirected_target == (3, 3, 2)

    def test_lower_bound_redirects_departure_to_longest_queue(self, model):
        lower = LowerBoundModel(model, threshold=2)
        # (3, 1, 1): a departure from the shortest group would give (3, 1, 0)
        # with imbalance 3; the lower bound takes the job from the longest
        # queue instead: (2, 1, 1).
        redirections = lower.redirections((3, 1, 1))
        departure_redirects = [r for r in redirections if "departure" in r.reason]
        assert len(departure_redirects) == 1
        assert departure_redirects[0].original_target == (3, 1, 0)
        assert departure_redirects[0].redirected_target == (2, 1, 1)

    def test_upper_bound_blocks_departure(self, model):
        upper = UpperBoundModel(model, threshold=2)
        redirections = upper.redirections((3, 1, 1))
        departure_redirects = [r for r in redirections if "departure" in r.reason]
        assert len(departure_redirects) == 1
        assert departure_redirects[0].redirected_target is None

    def test_upper_bound_arrival_injects_phantom_jobs(self, model):
        upper = UpperBoundModel(model, threshold=2)
        redirections = upper.redirections((3, 3, 1))
        arrival_redirects = [r for r in redirections if "arrival" in r.reason]
        assert len(arrival_redirects) == 1
        target = arrival_redirects[0].redirected_target
        assert target == (4, 3, 2)
        assert imbalance(target) <= 2
        assert precedes(arrival_redirects[0].original_target, target)

    def test_no_redirections_away_from_the_threshold(self, model):
        lower = LowerBoundModel(model, threshold=3)
        assert lower.redirections((2, 1, 1)) == []
        upper = UpperBoundModel(model, threshold=3)
        assert upper.redirections((2, 1, 1)) == []

    def test_all_targets_stay_inside_restricted_space(self, model):
        for threshold in (1, 2, 3):
            for bound in (LowerBoundModel(model, threshold), UpperBoundModel(model, threshold)):
                states = boundary_states(3, threshold) + first_repeating_block(3, threshold)
                for state in states:
                    for target in bound.transition_map(state):
                        assert bound.contains(target), f"{target} escapes S for T={threshold}"

    def test_redirections_respect_precedence_order(self, model):
        for threshold in (1, 2):
            states = boundary_states(3, threshold) + first_repeating_block(3, threshold)
            assert verify_redirections_respect_precedence(LowerBoundModel(model, threshold), states)
            assert verify_redirections_respect_precedence(UpperBoundModel(model, threshold), states)

    def test_state_outside_space_rejected(self, model):
        lower = LowerBoundModel(model, threshold=1)
        with pytest.raises(ValueError):
            lower.transition_map((3, 1, 0))

    def test_rate_conservation_lower_bound(self, model):
        # The lower bound only reroutes transitions, so the total outgoing rate
        # of every all-busy state is lambda*N + N*mu.
        lower = LowerBoundModel(model, threshold=2)
        for state in first_repeating_block(3, 2):
            total_rate = sum(lower.transition_map(state).values())
            expected = model.total_arrival_rate + 3 * model.service_rate
            assert total_rate == pytest.approx(expected)

    def test_upper_bound_loses_rate_only_through_blocking(self, model):
        upper = UpperBoundModel(model, threshold=2)
        for state in first_repeating_block(3, 2):
            total_rate = sum(upper.transition_map(state).values())
            blocked = sum(r.rate for r in upper.redirections(state) if r.redirected_target is None)
            expected = model.total_arrival_rate + 3 * model.service_rate - blocked
            assert total_rate == pytest.approx(expected)


class TestFactory:
    def test_make_bound_model(self, model):
        assert isinstance(make_bound_model(model, 2, "lower"), LowerBoundModel)
        assert isinstance(make_bound_model(model, 2, BoundKind.UPPER), UpperBoundModel)
        with pytest.raises(ValueError):
            make_bound_model(model, 2, "sideways")

    def test_single_server_rejected(self):
        with pytest.raises(ValueError):
            LowerBoundModel(SQDModel(1, 1, 0.5), threshold=2)

    def test_invalid_threshold_rejected(self, model):
        with pytest.raises(Exception):
            LowerBoundModel(model, threshold=0)


class TestQBDBlocks:
    def test_block_shapes(self, small_lower_blocks):
        blocks = small_lower_blocks
        m = blocks.block_size
        b = blocks.boundary_size
        assert blocks.R00.shape == (b, b)
        assert blocks.R01.shape == (b, m)
        assert blocks.R10.shape == (m, b)
        for block in (blocks.A0, blocks.A1, blocks.A2):
            assert block.shape == (m, m)

    def test_generator_rows_sum_to_zero(self, small_lower_blocks):
        blocks = small_lower_blocks
        boundary_rows = np.hstack([blocks.R00, blocks.R01]).sum(axis=1)
        assert np.allclose(boundary_rows, 0.0, atol=1e-10)
        level_rows = (blocks.A0 + blocks.A1 + blocks.A2).sum(axis=1)
        assert np.allclose(level_rows, 0.0, atol=1e-10)
        b0_rows = np.hstack([blocks.R10, blocks.A1, blocks.A0]).sum(axis=1)
        assert np.allclose(b0_rows, 0.0, atol=1e-10)

    def test_upper_bound_blocks_departure_capacity(self, small_lower_blocks, small_upper_blocks):
        # A blocked departure is removed from the chain (the bottom server
        # pauses), so the upper bound model's generator is still conservative
        # but its total downward ("service") rate is strictly smaller than the
        # lower bound model's in the states at the imbalance threshold.
        level_rows = (small_upper_blocks.A0 + small_upper_blocks.A1 + small_upper_blocks.A2).sum(axis=1)
        assert np.allclose(level_rows, 0.0, atol=1e-9)
        lower_down = small_lower_blocks.A2.sum()
        upper_down = small_upper_blocks.A2.sum()
        assert upper_down < lower_down - 1e-9
        # Per-row downward rate never exceeds the full service capacity N*mu.
        n_mu = small_upper_blocks.model.num_servers * small_upper_blocks.model.service_rate
        assert np.all(small_upper_blocks.A2.sum(axis=1) <= n_mu + 1e-9)

    def test_off_diagonal_blocks_nonnegative(self, small_lower_blocks, small_upper_blocks):
        for blocks in (small_lower_blocks, small_upper_blocks):
            assert np.all(blocks.A0 >= 0)
            assert np.all(blocks.A2 >= 0)
            assert np.all(blocks.R01 >= 0)
            assert np.all(blocks.R10 >= 0)
            off_diag = blocks.A1 - np.diag(np.diag(blocks.A1))
            assert np.all(off_diag >= 0)

    def test_level_independence_holds_for_larger_models(self):
        # qbd_blocks() internally asserts Eq. (9); exercising it on a bigger
        # model makes sure the shift-invariance is not an artifact of N=3.
        model = SQDModel(num_servers=5, d=3, utilization=0.8)
        blocks = LowerBoundModel(model, threshold=2).qbd_blocks()
        assert blocks.block_size == 15
        blocks_upper = UpperBoundModel(model, threshold=2).qbd_blocks()
        assert blocks_upper.block_size == 15

    def test_arrival_rate_into_higher_job_counts_is_lambda_n(self, small_lower_blocks):
        # In the lower bound model every arrival (redirected or not) adds
        # exactly one job, so from any repeating state the total rate into
        # states with one more job equals lambda*N.  Those targets live either
        # within the same block (A1) or in the next block (A0).
        blocks = small_lower_blocks
        partition = blocks.partition
        lam_n = blocks.model.total_arrival_rate
        block1_totals = [total_jobs(s) for s in partition.block1]
        block2_totals = [total_jobs(s) for s in partition.block2]
        for i, source in enumerate(partition.block1):
            source_total = total_jobs(source)
            up_rate = sum(
                blocks.A1[i, j] for j, t in enumerate(block1_totals) if t == source_total + 1
            ) + sum(
                blocks.A0[i, j] for j, t in enumerate(block2_totals) if t == source_total + 1
            )
            assert up_rate == pytest.approx(lam_n)
