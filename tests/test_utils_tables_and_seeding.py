"""Tests for repro.utils.tables and repro.utils.seeding."""

import numpy as np
import pytest

from repro.utils.seeding import spawn_rngs
from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["name", "value"], [["alpha", 1.5], ["beta", 2]])
        assert "name" in text and "value" in text
        assert "alpha" in text and "beta" in text
        assert "1.5" in text

    def test_title_is_first_line(self):
        text = format_table(["a"], [[1]], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_columns_are_aligned(self):
        text = format_table(["col", "x"], [["short", 1], ["much-longer-cell", 2]])
        lines = text.splitlines()
        # The x column starts at the same offset on every data row.
        offsets = {line.rstrip().rindex(str(v)) for line, v in zip(lines[2:], [1, 2])}
        assert len(offsets) == 1

    def test_floats_are_formatted_compactly(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.123457" in text


class TestFormatSeries:
    def test_series_are_columns(self):
        text = format_series({"lower": [1.0, 2.0], "upper": [3.0, 4.0]}, "rho", [0.5, 0.9])
        assert "lower" in text and "upper" in text and "rho" in text
        assert "0.5" in text and "0.9" in text

    def test_short_series_padded_with_nan(self):
        text = format_series({"s": [1.0]}, "x", [1, 2])
        assert "nan" in text


class TestSpawnRngs:
    def test_returns_requested_count(self):
        rngs = spawn_rngs(1, 3)
        assert len(rngs) == 3
        assert all(isinstance(r, np.random.Generator) for r in rngs)

    def test_streams_are_reproducible(self):
        first = [r.random() for r in spawn_rngs(42, 2)]
        second = [r.random() for r in spawn_rngs(42, 2)]
        assert first == second

    def test_streams_are_distinct(self):
        a, b = spawn_rngs(7, 2)
        assert a.random() != b.random()

    def test_different_seeds_differ(self):
        a = spawn_rngs(1, 1)[0].random()
        b = spawn_rngs(2, 1)[0].random()
        assert a != b

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, 0)
