"""Tests for the power-of-d mean-field ODE and its fixed point."""

import pytest

from repro.core.asymptotic import (
    asymptotic_delay,
    asymptotic_mean_queue_length,
    asymptotic_queue_length_distribution,
)
from repro.fleet.meanfield import (
    integrate_meanfield,
    meanfield_delay,
    meanfield_fixed_point,
    meanfield_mean_queue_length,
)
from repro.utils.validation import ValidationError


class TestFixedPoint:
    def test_matches_core_asymptotic_distribution(self):
        """The ODE fixed point is the paper's asymptotic occupancy profile."""
        for d in (1, 2, 5):
            fixed_point = meanfield_fixed_point(0.85, d)
            reference = asymptotic_queue_length_distribution(0.85, d, max_length=len(fixed_point) - 1)
            for ours, theirs in zip(fixed_point, reference):
                assert ours == pytest.approx(theirs, abs=1e-12)

    def test_delay_equals_eq16(self):
        """Little's law on the fixed point reproduces Eq. (16) exactly."""
        for d in (1, 2, 3, 10):
            for rho in (0.3, 0.8, 0.95):
                assert meanfield_delay(rho, d) == pytest.approx(asymptotic_delay(rho, d), rel=1e-10)

    def test_mean_queue_length_matches_core(self):
        assert meanfield_mean_queue_length(0.9, 2) == pytest.approx(
            asymptotic_mean_queue_length(0.9, 2), rel=1e-10
        )

    def test_zero_load(self):
        assert meanfield_fixed_point(0.0, 2) == [1.0]
        assert meanfield_delay(0.0, 2) == 1.0

    def test_unstable_rejected(self):
        with pytest.raises(ValidationError):
            meanfield_fixed_point(1.0, 2)


class TestIntegration:
    def test_converges_to_fixed_point_from_empty(self):
        trajectory = integrate_meanfield(0.8, 2, t_end=120.0, dt=0.02)
        assert trajectory.final_mean_queue_length == pytest.approx(
            meanfield_mean_queue_length(0.8, 2), abs=1e-6
        )
        assert trajectory.final_delay == pytest.approx(asymptotic_delay(0.8, 2), rel=1e-5)

    def test_fixed_point_is_invariant(self):
        start = meanfield_fixed_point(0.9, 2)
        trajectory = integrate_meanfield(0.9, 2, t_end=5.0, dt=0.01, initial=start)
        for t, value in zip(trajectory.times, trajectory.mean_queue_lengths):
            assert value == pytest.approx(trajectory.mean_queue_lengths[0], abs=1e-8)

    def test_monotone_fill_from_empty(self):
        trajectory = integrate_meanfield(0.7, 2, t_end=10.0, dt=0.05)
        values = trajectory.mean_queue_lengths
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        assert values[0] == 0.0

    def test_overload_grows_queues(self):
        """Transient overload (rho > 1) is allowed and queues keep growing."""
        trajectory = integrate_meanfield(1.5, 2, t_end=5.0, dt=0.02, max_levels=32)
        assert trajectory.final_mean_queue_length > 1.0

    def test_store_states_records_profiles(self):
        trajectory = integrate_meanfield(0.5, 2, t_end=1.0, dt=0.1, store_states=True)
        assert trajectory.states is not None
        assert len(trajectory.states) == len(trajectory.times)
        for state in trajectory.states:
            assert state[0] == 1.0
            assert all(0.0 <= s <= 1.0 for s in state)

    def test_d1_matches_mm1(self):
        trajectory = integrate_meanfield(0.6, 1, t_end=200.0, dt=0.02)
        assert trajectory.final_delay == pytest.approx(1.0 / (1.0 - 0.6), rel=1e-5)

    def test_bad_initial_rejected(self):
        with pytest.raises(ValidationError):
            integrate_meanfield(0.5, 2, t_end=1.0, initial=[0.5, 0.2])
