"""Tests for the MAP/PH/1 QBD solver (the paper's suggested extension)."""

import pytest

from repro.markov.arrival_processes import MarkovianArrivalProcess, PoissonArrivals
from repro.markov.map_ph_queue import (
    mg1_pollaczek_khinchine_waiting_time,
    solve_map_ph_1,
)
from repro.markov.service_distributions import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
    PhaseTypeService,
)
from repro.utils.validation import ValidationError


class TestAgainstClassicalFormulas:
    def test_mm1_special_case(self):
        rho = 0.7
        solution = solve_map_ph_1(PoissonArrivals(rho), ExponentialService(1.0))
        assert solution.mean_sojourn_time == pytest.approx(1.0 / (1.0 - rho), rel=1e-8)
        assert solution.probability_empty == pytest.approx(1.0 - rho, rel=1e-8)
        assert solution.decay_radius == pytest.approx(rho, abs=1e-9)

    def test_m_erlang_1_matches_pollaczek_khinchine(self):
        arrival_rate = 0.8
        service = ErlangService(stages=3, mean=1.0)
        solution = solve_map_ph_1(PoissonArrivals(arrival_rate), service)
        expected_wait = mg1_pollaczek_khinchine_waiting_time(arrival_rate, service)
        assert solution.mean_waiting_time == pytest.approx(expected_wait, rel=1e-6)

    def test_m_hyperexponential_1_matches_pollaczek_khinchine(self):
        arrival_rate = 0.6
        probabilities, rates = [0.3, 0.7], [0.6, 2.0]
        service = PhaseTypeService.from_hyperexponential(probabilities, rates)
        mixture = HyperexponentialService(probabilities, rates)
        assert service.mean == pytest.approx(mixture.mean)
        assert service.variance == pytest.approx(mixture.variance)
        solution = solve_map_ph_1(PoissonArrivals(arrival_rate), service)
        expected_wait = mg1_pollaczek_khinchine_waiting_time(arrival_rate, service)
        assert solution.mean_waiting_time == pytest.approx(expected_wait, rel=1e-6)

    def test_utilization_and_littles_law_consistency(self):
        solution = solve_map_ph_1(PoissonArrivals(0.5), ErlangService(stages=2, mean=1.2))
        assert solution.utilization == pytest.approx(0.6)
        assert solution.mean_jobs_in_system == pytest.approx(
            solution.mean_sojourn_time * solution.arrival_rate, rel=1e-9
        )
        assert solution.mean_queue_length == pytest.approx(
            solution.mean_jobs_in_system - solution.utilization, rel=1e-9
        )


class TestMAPInput:
    def test_one_phase_map_equals_poisson(self):
        rate = 0.7
        map_process = MarkovianArrivalProcess([[-rate]], [[rate]])
        via_map = solve_map_ph_1(map_process, ExponentialService(1.0))
        via_poisson = solve_map_ph_1(PoissonArrivals(rate), ExponentialService(1.0))
        assert via_map.mean_sojourn_time == pytest.approx(via_poisson.mean_sojourn_time, rel=1e-9)

    def test_bursty_arrivals_increase_delay(self):
        # An MMPP with the same mean rate as a Poisson process but bursty
        # structure yields a longer queue — the reason the paper flags MAP
        # support as a significant extension.
        bursty = MarkovianArrivalProcess.mmpp2(rate_high=1.4, rate_low=0.2, switch_to_low=0.05, switch_to_high=0.05)
        smooth = PoissonArrivals(bursty.rate)
        service = ExponentialService(1.0)
        assert solve_map_ph_1(bursty, service).mean_sojourn_time > solve_map_ph_1(smooth, service).mean_sojourn_time

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValidationError):
            solve_map_ph_1(PoissonArrivals(1.2), ExponentialService(1.0))

    def test_unsupported_service_rejected(self):
        with pytest.raises(ValidationError):
            solve_map_ph_1(PoissonArrivals(0.5), DeterministicService(1.0))


class TestPollaczekKhinchineHelper:
    def test_exponential_reduces_to_mm1(self):
        assert mg1_pollaczek_khinchine_waiting_time(0.5, ExponentialService(1.0)) == pytest.approx(1.0)

    def test_deterministic_is_half_of_exponential(self):
        exponential = mg1_pollaczek_khinchine_waiting_time(0.5, ExponentialService(1.0))
        deterministic = mg1_pollaczek_khinchine_waiting_time(0.5, DeterministicService(1.0))
        assert deterministic == pytest.approx(exponential / 2.0)

    def test_unstable_rejected(self):
        with pytest.raises(ValidationError):
            mg1_pollaczek_khinchine_waiting_time(1.5, ExponentialService(1.0))
