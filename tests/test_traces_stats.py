"""Burstiness statistics: estimator sanity plus the MMPP2 sampling contract.

The second half is the satellite guarantee of this PR: seeded empirical
rate, SCV and lag-1 autocorrelation of
``MarkovianArrivalProcess.sample_interarrival_times`` must match the
analytic values the new closed-form MAP methods report — the simulators and
the asymptotics must be talking about the same process.
"""

import numpy as np
import pytest

from repro.markov.arrival_processes import MarkovianArrivalProcess, PoissonArrivals
from repro.traces import (
    ArrivalTrace,
    TraceError,
    index_of_dispersion,
    interarrival_scv,
    lag_autocorrelation,
    summarize_trace,
    synthesize_trace,
)


@pytest.fixture(scope="module")
def poisson_trace() -> ArrivalTrace:
    return synthesize_trace(PoissonArrivals(5.0), 40_000, seed=7)


@pytest.fixture(scope="module")
def mmpp_process() -> MarkovianArrivalProcess:
    return MarkovianArrivalProcess.mmpp2(
        rate_high=3.0, rate_low=0.4, switch_to_low=0.05, switch_to_high=0.04
    )


@pytest.fixture(scope="module")
def mmpp_samples(mmpp_process) -> np.ndarray:
    rng = np.random.default_rng(20160627)
    return mmpp_process.sample_interarrival_times(rng, 60_000)


class TestEstimators:
    def test_poisson_is_the_neutral_point(self, poisson_trace):
        summary = summarize_trace(poisson_trace)
        assert summary.rate == pytest.approx(5.0, rel=0.05)
        assert summary.scv == pytest.approx(1.0, rel=0.05)
        assert abs(summary.lag1) < 0.02
        for _, idc in summary.idc:
            assert idc == pytest.approx(1.0, abs=0.25)
        assert not summary.is_bursty

    def test_deterministic_trace_has_zero_scv(self):
        trace = ArrivalTrace(np.arange(200) * 0.5)
        assert interarrival_scv(trace) == pytest.approx(0.0, abs=1e-12)
        assert index_of_dispersion(trace, window=5.0) == pytest.approx(0.0, abs=1e-12)

    def test_lag_autocorrelation_detects_alternation(self):
        # Strictly alternating short/long gaps: lag-1 negative, lag-2 positive.
        gaps = np.tile([0.1, 1.9], 500)
        trace = ArrivalTrace(np.concatenate([[0.0], np.cumsum(gaps)]))
        assert lag_autocorrelation(trace, 1) == pytest.approx(-1.0, abs=0.01)
        assert lag_autocorrelation(trace, 2) == pytest.approx(1.0, abs=0.01)

    def test_statistics_validate_their_inputs(self, poisson_trace):
        tiny = ArrivalTrace([0.0, 1.0])
        with pytest.raises(TraceError):
            interarrival_scv(tiny)
        with pytest.raises(TraceError):
            lag_autocorrelation(poisson_trace, 0)
        with pytest.raises(TraceError):
            index_of_dispersion(poisson_trace, -1.0)
        with pytest.raises(TraceError):
            # Window longer than half the span: fewer than 2 full windows.
            index_of_dispersion(poisson_trace, poisson_trace.duration)

    def test_summary_serializes(self, poisson_trace):
        summary = summarize_trace(poisson_trace, lags=(1, 3))
        payload = summary.to_dict()
        assert set(payload["autocorrelations"]) == {"1", "3"}
        assert "interarrival SCV" in summary.as_table()
        assert summary.lag1 == dict(summary.autocorrelations)[1]

    def test_skips_lags_and_windows_that_do_not_fit(self):
        trace = ArrivalTrace(np.cumsum(np.full(12, 1.0)))
        summary = summarize_trace(trace, lags=(1, 50), idc_windows=(2.0, 100.0))
        assert [lag for lag, _ in summary.autocorrelations] == [1]
        assert [window for window, _ in summary.idc] == [2.0]


class TestMMPP2SamplingMatchesAnalytic:
    """Satellite: empirical sampling moments vs the closed MAP formulas."""

    def test_empirical_rate(self, mmpp_process, mmpp_samples):
        empirical_rate = 1.0 / mmpp_samples.mean()
        assert empirical_rate == pytest.approx(mmpp_process.rate, rel=0.03)
        # ... and the analytic stationary mean interval agrees with 1/rate.
        assert mmpp_process.interarrival_moment(1) == pytest.approx(
            1.0 / mmpp_process.rate, rel=1e-9
        )

    def test_empirical_scv(self, mmpp_process, mmpp_samples):
        scv = mmpp_samples.var() / mmpp_samples.mean() ** 2
        assert scv == pytest.approx(mmpp_process.interarrival_scv, rel=0.08)

    def test_empirical_lag1_autocorrelation(self, mmpp_process, mmpp_samples):
        centered = mmpp_samples - mmpp_samples.mean()
        lag1 = float(np.dot(centered[:-1], centered[1:]) / np.dot(centered, centered))
        assert lag1 == pytest.approx(mmpp_process.lag_autocorrelation(1), rel=0.10)

    def test_empirical_idc_approaches_analytic_limit(self, mmpp_process):
        trace = synthesize_trace(mmpp_process, 60_000, seed=11)
        summary = summarize_trace(trace)
        # IDC(t) increases towards IDC(inf); the largest finite window must
        # land in the right ballpark (between the SCV and the limit).
        limit = mmpp_process.asymptotic_idc()
        assert mmpp_process.interarrival_scv < summary.max_idc < 1.3 * limit

    def test_trace_summary_agrees_with_analytics(self, mmpp_process):
        trace = synthesize_trace(mmpp_process, 60_000, seed=13)
        summary = summarize_trace(trace)
        assert summary.rate == pytest.approx(mmpp_process.rate, rel=0.05)
        assert summary.scv == pytest.approx(mmpp_process.interarrival_scv, rel=0.10)
        assert summary.lag1 == pytest.approx(
            mmpp_process.lag_autocorrelation(1), rel=0.15
        )
        assert summary.is_bursty
