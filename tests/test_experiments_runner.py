"""Tests for the generic sweep runner and its export helpers."""

import csv
import json

import pytest

from repro.experiments.runner import SweepConfig, SweepResult, run_sweep


class TestSweepConfig:
    def test_grid_expansion_skips_invalid_combinations(self):
        config = SweepConfig(server_counts=(2, 4), choices=(2, 3), utilizations=(0.5,), thresholds=(2,))
        configurations = config.configurations()
        # d=3 with N=2 is skipped.
        assert {"num_servers": 2, "d": 3, "utilization": 0.5, "threshold": 2} not in configurations
        assert len(configurations) == 3

    def test_grid_is_cartesian(self):
        config = SweepConfig(server_counts=(3,), choices=(2,), utilizations=(0.3, 0.6), thresholds=(1, 2))
        assert len(config.configurations()) == 4


class TestRunSweep:
    def test_sweep_produces_one_record_per_configuration(self):
        config = SweepConfig(server_counts=(3,), choices=(2,), utilizations=(0.4, 0.7), thresholds=(2,))
        result = run_sweep(config)
        assert len(result.records) == 2
        assert result.column("utilization") == [0.4, 0.7]
        assert all(record["lower_bound"] > 1.0 for record in result.records)

    def test_progress_callback_invoked(self):
        calls = []
        config = SweepConfig(server_counts=(3,), choices=(2,), utilizations=(0.5,), thresholds=(2,))
        run_sweep(config, progress=lambda i, total, parameters: calls.append((i, total)))
        assert calls == [(0, 1)]

    def test_table_rendering(self):
        config = SweepConfig(server_counts=(3,), choices=(2,), utilizations=(0.5,), thresholds=(2,))
        result = run_sweep(config)
        text = result.as_table(title="sweep")
        assert "lower_bound" in text and "sweep" in text

    def test_empty_result_renders_placeholder(self):
        result = SweepResult(config=SweepConfig())
        assert result.as_table() == "(empty sweep)"


class TestExport:
    @pytest.fixture
    def small_result(self):
        config = SweepConfig(server_counts=(3,), choices=(2,), utilizations=(0.5, 0.8), thresholds=(2,))
        return run_sweep(config)

    def test_csv_round_trip(self, small_result, tmp_path):
        path = small_result.to_csv(tmp_path / "sweep.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert float(rows[0]["lower_bound"]) > 1.0

    def test_json_round_trip(self, small_result, tmp_path):
        path = small_result.to_json(tmp_path / "sweep.json")
        data = json.loads(path.read_text())
        assert len(data) == 2
        assert data[1]["utilization"] == pytest.approx(0.8)

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SweepResult(config=SweepConfig()).to_csv(tmp_path / "empty.csv")
