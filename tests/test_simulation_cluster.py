"""Tests for the job-level cluster simulator."""

import pytest

from repro.markov.arrival_processes import PoissonArrivals
from repro.markov.service_distributions import DeterministicService, ExponentialService
from repro.policies import JoinShortestQueue, PowerOfD, RoundRobin, UniformRandom
from repro.simulation.cluster import ClusterSimulation
from repro.simulation.workloads import Workload, poisson_exponential_workload


class TestBasicBehaviour:
    def test_all_jobs_complete(self):
        workload = poisson_exponential_workload(num_servers=2, utilization=0.5)
        simulation = ClusterSimulation(workload, PowerOfD(2), seed=1)
        result = simulation.run(2_000)
        assert result.completed_jobs == 2_000
        assert simulation.queue_lengths.sum() == 0

    def test_warmup_jobs_are_discarded_from_stats(self):
        workload = poisson_exponential_workload(num_servers=2, utilization=0.5)
        result = ClusterSimulation(workload, PowerOfD(2), seed=1, warmup_jobs=500).run(2_000)
        assert result.completed_jobs == 1_500
        assert result.discarded_jobs == 500

    def test_sojourn_is_waiting_plus_service_on_average(self):
        workload = Workload(3, PoissonArrivals(1.5), ExponentialService(1.0))
        result = ClusterSimulation(workload, JoinShortestQueue(), seed=3, warmup_jobs=1_000).run(20_000)
        assert result.mean_sojourn_time == pytest.approx(result.mean_waiting_time + 1.0, rel=0.05)

    def test_results_are_reproducible_with_same_seed(self):
        workload = poisson_exponential_workload(num_servers=3, utilization=0.7)
        first = ClusterSimulation(workload, PowerOfD(2), seed=11).run(3_000)
        second = ClusterSimulation(workload, PowerOfD(2), seed=11).run(3_000)
        assert first.mean_sojourn_time == second.mean_sojourn_time

    def test_different_seeds_differ(self):
        workload = poisson_exponential_workload(num_servers=3, utilization=0.7)
        first = ClusterSimulation(workload, PowerOfD(2), seed=11).run(3_000)
        second = ClusterSimulation(workload, PowerOfD(2), seed=12).run(3_000)
        assert first.mean_sojourn_time != second.mean_sojourn_time

    def test_invalid_job_count_rejected(self):
        workload = poisson_exponential_workload(num_servers=2, utilization=0.5)
        with pytest.raises(Exception):
            ClusterSimulation(workload, PowerOfD(2), seed=1).run(0)

    def test_second_run_on_same_instance_rejected(self):
        # State and statistics are not reset between runs; a silent second
        # run would mix both runs' statistics.
        workload = poisson_exponential_workload(num_servers=2, utilization=0.5)
        simulation = ClusterSimulation(workload, PowerOfD(2), seed=1)
        simulation.run(500)
        with pytest.raises(RuntimeError, match="once per instance"):
            simulation.run(500)

    def test_failed_run_does_not_mark_instance_as_used(self):
        workload = poisson_exponential_workload(num_servers=2, utilization=0.5)
        simulation = ClusterSimulation(workload, PowerOfD(2), seed=1)
        with pytest.raises(Exception):
            simulation.run(0)  # validation fails before any state mutates
        assert simulation.run(500).completed_jobs == 500


class TestAgainstKnownResults:
    def test_random_dispatch_matches_mm1(self):
        # SQ(1)/uniform random splits a Poisson stream: each server is an
        # independent M/M/1 with sojourn time 1 / (1 - rho).
        utilization = 0.6
        workload = poisson_exponential_workload(num_servers=4, utilization=utilization)
        result = ClusterSimulation(workload, UniformRandom(), seed=5, warmup_jobs=5_000).run(60_000)
        assert result.mean_sojourn_time == pytest.approx(1.0 / (1.0 - utilization), rel=0.08)

    def test_single_server_deterministic_service_md1(self):
        # M/D/1 mean waiting time: rho * b / (2 (1 - rho)) with service time b.
        utilization = 0.5
        workload = Workload(1, PoissonArrivals(utilization), DeterministicService(1.0))
        result = ClusterSimulation(workload, UniformRandom(), seed=9, warmup_jobs=5_000).run(60_000)
        expected_wait = utilization / (2 * (1 - utilization))
        assert result.mean_waiting_time == pytest.approx(expected_wait, rel=0.1)

    def test_jsq_beats_random_dispatch(self):
        workload = poisson_exponential_workload(num_servers=4, utilization=0.85)
        random_result = ClusterSimulation(workload, UniformRandom(), seed=21, warmup_jobs=3_000).run(40_000)
        jsq_result = ClusterSimulation(workload, JoinShortestQueue(), seed=21, warmup_jobs=3_000).run(40_000)
        assert jsq_result.mean_sojourn_time < random_result.mean_sojourn_time

    def test_sq2_between_random_and_jsq(self):
        workload = poisson_exponential_workload(num_servers=6, utilization=0.85)
        random_result = ClusterSimulation(workload, UniformRandom(), seed=31, warmup_jobs=3_000).run(40_000)
        sq2_result = ClusterSimulation(workload, PowerOfD(2), seed=31, warmup_jobs=3_000).run(40_000)
        jsq_result = ClusterSimulation(workload, JoinShortestQueue(), seed=31, warmup_jobs=3_000).run(40_000)
        assert jsq_result.mean_sojourn_time <= sq2_result.mean_sojourn_time <= random_result.mean_sojourn_time

    def test_round_robin_beats_random_for_poisson_input(self):
        workload = poisson_exponential_workload(num_servers=4, utilization=0.8)
        random_result = ClusterSimulation(workload, UniformRandom(), seed=41, warmup_jobs=3_000).run(40_000)
        rr_result = ClusterSimulation(workload, RoundRobin(), seed=41, warmup_jobs=3_000).run(40_000)
        assert rr_result.mean_sojourn_time < random_result.mean_sojourn_time
