"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.model import SQDModel


@pytest.fixture
def small_model() -> SQDModel:
    """A 3-server SQ(2) model at moderate utilization — the paper's smallest case."""
    return SQDModel(num_servers=3, d=2, utilization=0.7)


@pytest.fixture
def small_lower_blocks(small_model):
    """QBD blocks of the lower bound model for the small model (T=2)."""
    return LowerBoundModel(small_model, threshold=2).qbd_blocks()

@pytest.fixture
def small_upper_blocks(small_model):
    """QBD blocks of the upper bound model for the small model (T=2)."""
    return UpperBoundModel(small_model, threshold=2).qbd_blocks()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20160627)
