"""Tests for workload descriptions."""

import pytest

from repro.markov.arrival_processes import PoissonArrivals
from repro.markov.service_distributions import ErlangService, ExponentialService
from repro.simulation.workloads import Workload, poisson_exponential_workload
from repro.utils.validation import ValidationError


class TestWorkload:
    def test_per_server_load(self):
        workload = Workload(4, PoissonArrivals(3.2), ExponentialService(1.0))
        assert workload.per_server_load == pytest.approx(0.8)
        assert workload.total_arrival_rate == pytest.approx(3.2)
        assert workload.is_stable

    def test_unstable_detection(self):
        workload = Workload(2, PoissonArrivals(3.0), ExponentialService(1.0))
        assert not workload.is_stable

    def test_non_exponential_service_allowed(self):
        workload = Workload(2, PoissonArrivals(1.0), ErlangService(stages=3, mean=0.5))
        assert workload.per_server_load == pytest.approx(0.25)

    def test_invalid_server_count_rejected(self):
        with pytest.raises(Exception):
            Workload(0, PoissonArrivals(1.0), ExponentialService(1.0))


class TestPoissonExponentialWorkload:
    def test_matches_paper_parameterization(self):
        workload = poisson_exponential_workload(num_servers=6, utilization=0.9)
        assert workload.total_arrival_rate == pytest.approx(5.4)
        assert workload.per_server_load == pytest.approx(0.9)
        assert workload.service_distribution.mean == pytest.approx(1.0)

    def test_custom_service_rate(self):
        workload = poisson_exponential_workload(num_servers=2, utilization=0.5, service_rate=2.0)
        assert workload.total_arrival_rate == pytest.approx(2.0)
        assert workload.per_server_load == pytest.approx(0.5)

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValidationError):
            poisson_exponential_workload(num_servers=2, utilization=0.0)
