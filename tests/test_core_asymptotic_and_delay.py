"""Tests for the asymptotic formula (Eq. 16) and the delay-metric helpers."""

import math

import pytest

from repro.core.asymptotic import (
    asymptotic_delay,
    asymptotic_mean_queue_length,
    asymptotic_queue_length_distribution,
    power_of_d_improvement,
    relative_error_percent,
)
from repro.core.delay import (
    metrics_from_distribution,
    mm1_sojourn_time,
    mm1_waiting_time,
    mmn_erlang_c,
    mmn_sojourn_time,
)
from repro.utils.validation import ValidationError


class TestAsymptoticDelay:
    def test_d1_is_mm1(self):
        for rho in (0.2, 0.5, 0.9):
            assert asymptotic_delay(rho, 1) == pytest.approx(1.0 / (1.0 - rho))

    def test_d2_series_matches_direct_sum(self):
        rho = 0.9
        direct = sum(rho ** (2 ** i - 2) for i in range(1, 200))
        assert asymptotic_delay(rho, 2) == pytest.approx(direct, rel=1e-12)

    def test_zero_load_gives_pure_service_time(self):
        assert asymptotic_delay(0.0, 3) == 1.0

    def test_delay_decreases_with_d(self):
        rho = 0.95
        delays = [asymptotic_delay(rho, d) for d in (1, 2, 5, 10)]
        assert delays == sorted(delays, reverse=True)
        assert delays[-1] >= 1.0

    def test_unstable_load_rejected(self):
        with pytest.raises(ValidationError):
            asymptotic_delay(1.0, 2)

    def test_exponential_improvement_of_two_choices(self):
        # The power-of-two result: at high load the improvement factor of d=2
        # over d=1 is dramatic (here more than 5x at rho=0.95).
        assert power_of_d_improvement(0.95, 2) > 5.0

    def test_queue_length_distribution_consistency(self):
        # The mean queue length equals the tail sum of the fractions s_k, and
        # delay = mean queue length / lambda.
        rho, d = 0.9, 2
        fractions = asymptotic_queue_length_distribution(rho, d, max_length=300)
        mean_queue = sum(fractions[1:])
        assert asymptotic_mean_queue_length(rho, d) == pytest.approx(mean_queue, rel=1e-10)
        assert asymptotic_delay(rho, d) == pytest.approx(mean_queue / rho, rel=1e-10)


class TestRelativeError:
    def test_symmetric_absolute_error(self):
        assert relative_error_percent(1.1, 1.0) == pytest.approx(10.0)
        assert relative_error_percent(0.9, 1.0) == pytest.approx(10.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            relative_error_percent(1.0, 0.0)


class TestDistributionMetrics:
    def test_two_state_distribution(self):
        distribution = {(2, 1, 0): 0.5, (1, 0, 0): 0.5}
        metrics = metrics_from_distribution(distribution, total_arrival_rate=1.5)
        assert metrics.mean_jobs_in_system == pytest.approx(2.0)
        assert metrics.mean_waiting_jobs == pytest.approx(0.5)
        assert metrics.mean_busy_servers == pytest.approx(1.5)
        assert metrics.mean_waiting_time == pytest.approx(0.5 / 1.5)
        assert metrics.mean_delay == pytest.approx(0.5 / 1.5 + 1.0)

    def test_unnormalized_distribution_is_renormalized(self):
        distribution = {(1, 0): 2.0, (0, 0): 2.0}
        metrics = metrics_from_distribution(distribution, total_arrival_rate=1.0)
        assert metrics.mean_jobs_in_system == pytest.approx(0.5)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            metrics_from_distribution({}, total_arrival_rate=1.0)


class TestClassicalQueueFormulas:
    def test_mm1_formulas(self):
        assert mm1_sojourn_time(0.5) == pytest.approx(2.0)
        assert mm1_waiting_time(0.5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mm1_sojourn_time(1.0)

    def test_erlang_c_known_value(self):
        # M/M/2 with offered load 1 (rho = 0.5): Erlang-C = 1/3.
        assert mmn_erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_mmn_reduces_to_mm1(self):
        assert mmn_sojourn_time(1, 0.6) == pytest.approx(mm1_sojourn_time(0.6))

    def test_mmn_sojourn_below_mm1_per_server(self):
        # Pooling N servers behind one queue beats N separate M/M/1 queues.
        assert mmn_sojourn_time(4, 0.8) < mm1_sojourn_time(0.8)

    def test_erlang_c_requires_stability(self):
        with pytest.raises(ValueError):
            mmn_erlang_c(2, 2.5)
