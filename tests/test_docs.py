"""Tier-1 guard for the documentation tree (same checks as the CI docs job):
every ```bash block parses and every relative link resolves."""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_docs.py"
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)


def test_docs_tree_exists():
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md",
        "api.md",
        "architecture.md",
        "campaigns.md",
        "cli.md",
        "resilience.md",
        "reproducing-the-paper.md",
        "traces.md",
    } <= names


def test_checker_passes_on_repo_docs():
    completed = subprocess.run(
        [sys.executable, str(CHECKER)] + [str(path) for path in DOC_FILES],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr


def test_checker_catches_broken_link(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](does-not-exist.md)\n")
    completed = subprocess.run(
        [sys.executable, str(CHECKER), str(bad)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 1
    assert "broken link" in completed.stderr


@pytest.mark.skipif(shutil.which("bash") is None, reason="bash not available")
def test_checker_catches_bash_syntax_error(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("```bash\nfor do done (((\n```\n")
    completed = subprocess.run(
        [sys.executable, str(CHECKER), str(bad)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 1
    assert "does not parse" in completed.stderr


def test_checker_ignores_links_inside_code_fences(tmp_path):
    good = tmp_path / "good.md"
    good.write_text("```text\nsee [label](not/a/real/file.md)\n```\n")
    completed = subprocess.run(
        [sys.executable, str(CHECKER), str(good)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stderr


def test_checker_ignores_external_links_and_anchors(tmp_path):
    good = tmp_path / "good.md"
    good.write_text(
        "[web](https://example.com) [anchor](#section) ![img](missing.png)\n"
    )
    completed = subprocess.run(
        [sys.executable, str(CHECKER), str(good)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stderr
