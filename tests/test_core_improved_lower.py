"""Tests for the improved (Theorem 2/3) lower bound."""

import pytest

from repro.core.bound_models import LowerBoundModel
from repro.core.improved_lower import (
    general_decay_factor,
    geometric_tail_decay,
    poisson_decay_factor,
    solve_improved_lower_bound,
)
from repro.core.model import SQDModel
from repro.core.qbd_solver import SolutionMethod, solve_bound_model
from repro.markov.arrival_processes import PoissonArrivals, RenewalArrivals
from repro.markov.service_distributions import ErlangService
from repro.utils.validation import ValidationError


class TestDecayFactors:
    def test_poisson_decay_is_rho_to_the_n(self):
        model = SQDModel(4, 2, 0.8)
        assert poisson_decay_factor(model) == pytest.approx(0.8 ** 4)

    def test_poisson_decay_requires_stability(self):
        with pytest.raises(ValidationError):
            poisson_decay_factor(SQDModel(4, 2, 1.2))

    def test_general_decay_reduces_to_poisson(self):
        model = SQDModel(3, 2, 0.7)
        poisson = PoissonArrivals(model.total_arrival_rate)
        assert general_decay_factor(model, poisson) == pytest.approx(poisson_decay_factor(model), abs=1e-10)

    def test_smoother_arrivals_give_smaller_decay_factor(self):
        model = SQDModel(3, 2, 0.8)
        erlang_arrivals = RenewalArrivals(ErlangService(stages=4, mean=1.0 / model.total_arrival_rate))
        assert general_decay_factor(model, erlang_arrivals) < poisson_decay_factor(model)


class TestTheorem3AgainstTheorem1:
    @pytest.mark.parametrize("num_servers,d,threshold", [(3, 2, 2), (3, 2, 3), (4, 2, 2), (4, 3, 2), (5, 5, 2)])
    def test_agreement_across_configurations(self, num_servers, d, threshold):
        model = SQDModel(num_servers, d, 0.75)
        blocks = LowerBoundModel(model, threshold).qbd_blocks()
        matrix_solution = solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        scalar_solution = solve_improved_lower_bound(model, threshold, blocks=blocks)
        assert scalar_solution.mean_delay == pytest.approx(matrix_solution.mean_delay, rel=1e-6)
        assert scalar_solution.mean_waiting_jobs == pytest.approx(matrix_solution.mean_waiting_jobs, rel=1e-6)

    def test_agreement_at_high_utilization(self):
        model = SQDModel(3, 2, 0.95)
        blocks = LowerBoundModel(model, 2).qbd_blocks()
        matrix_solution = solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        scalar_solution = solve_improved_lower_bound(model, 2, blocks=blocks)
        assert scalar_solution.mean_delay == pytest.approx(matrix_solution.mean_delay, rel=1e-8)

    def test_blocks_are_rebuilt_when_not_supplied(self):
        model = SQDModel(3, 2, 0.6)
        solution = solve_improved_lower_bound(model, 2)
        assert solution.mean_delay > 1.0

    def test_unstable_model_rejected(self):
        with pytest.raises(ValidationError):
            solve_improved_lower_bound(SQDModel(3, 2, 1.05), 2)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(Exception):
            solve_improved_lower_bound(SQDModel(3, 2, 0.5), 0)


class TestRenewalExtension:
    def test_poisson_input_falls_back_to_theorem_3(self):
        model = SQDModel(3, 2, 0.7)
        poisson = PoissonArrivals(model.total_arrival_rate)
        assert geometric_tail_decay(model, poisson) == pytest.approx(poisson_decay_factor(model))
        assert geometric_tail_decay(model) == pytest.approx(poisson_decay_factor(model))

    def test_smoother_arrivals_reduce_the_tail_decay(self):
        # Theorem 2: the geometric tail of the lower bound model decays by
        # sigma^N per block; smoother-than-Poisson arrivals shrink sigma and
        # hence lighten the tail.
        model = SQDModel(3, 2, 0.85)
        erlang_arrivals = RenewalArrivals(ErlangService(stages=4, mean=1.0 / model.total_arrival_rate))
        assert geometric_tail_decay(model, erlang_arrivals) < geometric_tail_decay(model)

    def test_burstier_arrivals_increase_the_tail_decay(self):
        from repro.markov.service_distributions import HyperexponentialService

        model = SQDModel(3, 2, 0.85)
        bursty = RenewalArrivals(
            HyperexponentialService.balanced_two_phase(mean=1.0 / model.total_arrival_rate, scv=4.0)
        )
        assert geometric_tail_decay(model, bursty) > geometric_tail_decay(model)
