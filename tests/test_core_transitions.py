"""Tests for the SQ(d) transition rates of Section II.A."""

import pytest

from repro.core.model import SQDModel
from repro.core.transitions import (
    all_transitions,
    arrival_position_probabilities,
    arrival_transitions,
    departure_transitions,
    transition_rate_map,
)
from repro.utils.combinatorics import binomial


class TestArrivalRatesDistinctCase:
    def test_paper_formula_for_distinct_components(self):
        # State (2, 1, 0) with N=3, d=2: arrivals go to position i with rate
        # C(i-1, d-1)/C(N, d) * lambda*N for i >= d.
        model = SQDModel(num_servers=3, d=2, utilization=0.6)
        lam_n = model.total_arrival_rate
        transitions = dict(arrival_transitions((2, 1, 0), model))
        assert transitions[(2, 2, 0)] == pytest.approx(lam_n * binomial(1, 1) / binomial(3, 2))
        assert transitions[(2, 1, 1)] == pytest.approx(lam_n * binomial(2, 1) / binomial(3, 2))
        assert len(transitions) == 2  # position 1 unreachable for d = 2

    def test_rates_sum_to_total_arrival_rate(self):
        model = SQDModel(num_servers=5, d=3, utilization=0.8)
        for state in [(4, 3, 2, 1, 0), (2, 2, 2, 2, 2), (5, 5, 1, 1, 0), (1, 0, 0, 0, 0)]:
            total = sum(rate for _, rate in arrival_transitions(state, model))
            assert total == pytest.approx(model.total_arrival_rate)

    def test_d1_is_uniform_over_positions(self):
        model = SQDModel(num_servers=4, d=1, utilization=0.5)
        transitions = arrival_transitions((4, 3, 2, 1), model)
        rates = [rate for _, rate in transitions]
        assert len(rates) == 4
        assert all(rate == pytest.approx(model.total_arrival_rate / 4) for rate in rates)

    def test_jsq_always_joins_shortest(self):
        model = SQDModel(num_servers=4, d=4, utilization=0.5)
        transitions = arrival_transitions((4, 3, 2, 1), model)
        assert transitions == [((4, 3, 2, 2), pytest.approx(model.total_arrival_rate))]


class TestArrivalRatesTieCase:
    def test_tie_group_aggregate_rate(self):
        # State (1, 1, 0) with N=3, d=2: the group {1,2} receives
        # (C(2,2) - C(0,2)) / C(3,2) and the group {3} receives (C(3,2)-C(2,2))/C(3,2).
        model = SQDModel(num_servers=3, d=2, utilization=0.6)
        lam_n = model.total_arrival_rate
        transitions = dict(arrival_transitions((1, 1, 0), model))
        assert transitions[(2, 1, 0)] == pytest.approx(lam_n * 1 / 3)
        assert transitions[(1, 1, 1)] == pytest.approx(lam_n * 2 / 3)

    def test_arrival_joins_first_position_of_group(self):
        model = SQDModel(num_servers=4, d=2, utilization=0.5)
        targets = [target for target, _ in arrival_transitions((2, 2, 1, 1), model)]
        # Joining the level-1 group yields (2,2,2,1); joining the level-2 group yields (3,2,1,1).
        assert (2, 2, 2, 1) in targets
        assert (3, 2, 1, 1) in targets

    def test_all_servers_equal_single_target(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.5)
        transitions = arrival_transitions((2, 2, 2), model)
        assert transitions == [((3, 2, 2), pytest.approx(model.total_arrival_rate))]

    def test_position_probabilities_sum_to_one(self):
        model = SQDModel(num_servers=5, d=2, utilization=0.5)
        for state in [(3, 2, 2, 1, 0), (2, 2, 2, 2, 2), (4, 0, 0, 0, 0)]:
            assert sum(arrival_position_probabilities(state, model).values()) == pytest.approx(1.0)


class TestDepartures:
    def test_each_busy_server_departs_at_mu(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.5, service_rate=2.0)
        transitions = dict(departure_transitions((2, 1, 0), model))
        assert transitions[(1, 1, 0)] == pytest.approx(2.0)
        assert transitions[(2, 0, 0)] == pytest.approx(2.0)
        assert len(transitions) == 2

    def test_group_departure_rate_scales_with_group_size(self):
        model = SQDModel(num_servers=4, d=2, utilization=0.5)
        transitions = dict(departure_transitions((3, 3, 3, 0), model))
        assert transitions[(3, 3, 2, 0)] == pytest.approx(3.0)

    def test_departure_total_rate_equals_busy_servers(self):
        model = SQDModel(num_servers=5, d=2, utilization=0.5)
        for state in [(3, 2, 1, 0, 0), (1, 1, 1, 1, 1), (4, 4, 0, 0, 0)]:
            total = sum(rate for _, rate in departure_transitions(state, model))
            busy = sum(1 for v in state if v > 0)
            assert total == pytest.approx(busy * model.service_rate)

    def test_empty_system_has_no_departures(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.5)
        assert departure_transitions((0, 0, 0), model) == []

    def test_departure_leaves_last_position_of_group(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.5)
        targets = [target for target, _ in departure_transitions((2, 2, 1), model)]
        assert (2, 1, 1) in targets  # departure recorded at the last index of the level-2 group
        assert (2, 2, 0) in targets


class TestCombined:
    def test_all_transitions_targets_are_valid_ordered_states(self):
        model = SQDModel(num_servers=4, d=3, utilization=0.7)
        for state in [(3, 2, 2, 0), (1, 1, 0, 0), (5, 5, 5, 5)]:
            for target, rate in all_transitions(state, model):
                assert rate > 0
                assert all(target[i] >= target[i + 1] for i in range(3))
                assert min(target) >= 0
                assert abs(sum(target) - sum(state)) == 1

    def test_rate_map_aggregates_duplicates(self):
        model = SQDModel(num_servers=2, d=1, utilization=0.5)
        rates = transition_rate_map((1, 1), model)
        # Both single-choice arrivals land on the canonical state (2, 1).
        assert rates[(2, 1)] == pytest.approx(model.total_arrival_rate)

    def test_state_length_mismatch_rejected(self):
        model = SQDModel(num_servers=3, d=2, utilization=0.5)
        with pytest.raises(ValueError):
            arrival_transitions((1, 0), model)
        with pytest.raises(ValueError):
            departure_transitions((1, 0), model)
