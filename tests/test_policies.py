"""Tests for the dispatching policies."""

import numpy as np
import pytest

from repro.policies import (
    ClusterView,
    JoinIdleQueue,
    JoinShortestQueue,
    LeastWorkLeft,
    PowerOfD,
    RoundRobin,
    UniformRandom,
)


def make_view(queue_lengths, work=None):
    return ClusterView(
        queue_lengths=np.asarray(queue_lengths, dtype=np.int64),
        work_remaining=None if work is None else np.asarray(work, dtype=float),
    )


class TestClusterView:
    def test_num_servers_and_idle(self):
        view = make_view([0, 2, 0, 1])
        assert view.num_servers == 4
        assert view.idle_servers().tolist() == [0, 2]


class TestPowerOfD:
    def test_d_equal_n_always_picks_global_shortest(self, rng):
        policy = PowerOfD(4)
        view = make_view([3, 1, 2, 5])
        for _ in range(20):
            assert policy.select_server(view, rng) == 1

    def test_d_one_is_uniform(self, rng):
        policy = PowerOfD(1)
        counts = np.zeros(3)
        view = make_view([5, 5, 5])
        for _ in range(3000):
            counts[policy.select_server(view, rng)] += 1
        assert np.all(counts > 800)

    def test_never_selects_longer_of_the_polled_pair(self, rng):
        # With d = N-1 = 2 out of 3 servers, the longest queue can only be
        # selected when it is polled together with an even longer one — here it
        # is the unique maximum, so it must never win a poll it shares.
        policy = PowerOfD(3)
        view = make_view([7, 1, 1])
        for _ in range(50):
            assert policy.select_server(view, rng) != 0

    def test_tie_breaking_is_random_among_polled_shortest(self, rng):
        policy = PowerOfD(2)
        view = make_view([0, 0])
        chosen = {policy.select_server(view, rng) for _ in range(100)}
        assert chosen == {0, 1}

    def test_d_larger_than_n_rejected(self, rng):
        policy = PowerOfD(5)
        with pytest.raises(ValueError):
            policy.select_server(make_view([1, 1]), rng)

    def test_invalid_d_rejected(self):
        with pytest.raises(Exception):
            PowerOfD(0)

    def test_feedback_cost_is_d(self):
        assert PowerOfD(3).feedback_messages_per_job == 3

    def test_sampling_is_without_replacement(self, rng):
        # With d = N every server is polled, so the unique zero-length queue
        # must always be found even though it sits at the last index.
        policy = PowerOfD(6)
        view = make_view([4, 4, 4, 4, 4, 0])
        for _ in range(20):
            assert policy.select_server(view, rng) == 5


class TestJoinShortestQueue:
    def test_selects_global_minimum(self, rng):
        policy = JoinShortestQueue()
        assert policy.select_server(make_view([4, 2, 3]), rng) == 1

    def test_ties_broken_among_minima(self, rng):
        policy = JoinShortestQueue()
        chosen = {policy.select_server(make_view([1, 0, 0]), rng) for _ in range(100)}
        assert chosen == {1, 2}


class TestUniformRandom:
    def test_all_servers_reachable(self, rng):
        policy = UniformRandom()
        chosen = {policy.select_server(make_view([9, 0, 3]), rng) for _ in range(200)}
        assert chosen == {0, 1, 2}

    def test_zero_feedback(self):
        assert UniformRandom().feedback_messages_per_job == 0


class TestRoundRobin:
    def test_cycles_in_order(self, rng):
        policy = RoundRobin()
        view = make_view([0, 0, 0])
        sequence = [policy.select_server(view, rng) for _ in range(6)]
        assert sequence == [0, 1, 2, 0, 1, 2]

    def test_reset_restarts_cycle(self, rng):
        policy = RoundRobin()
        view = make_view([0, 0])
        policy.select_server(view, rng)
        policy.reset()
        assert policy.select_server(view, rng) == 0


class TestJoinIdleQueue:
    def test_prefers_idle_servers(self, rng):
        policy = JoinIdleQueue()
        view = make_view([3, 0, 2])
        for _ in range(20):
            assert policy.select_server(view, rng) == 1

    def test_falls_back_to_random_when_none_idle(self, rng):
        policy = JoinIdleQueue()
        chosen = {policy.select_server(make_view([1, 2, 3]), rng) for _ in range(200)}
        assert chosen == {0, 1, 2}


class TestLeastWorkLeft:
    def test_uses_work_when_available(self, rng):
        policy = LeastWorkLeft()
        view = make_view([1, 1, 1], work=[5.0, 0.5, 3.0])
        assert policy.select_server(view, rng) == 1

    def test_falls_back_to_queue_lengths(self, rng):
        policy = LeastWorkLeft()
        assert policy.select_server(make_view([4, 1, 2]), rng) == 1

    def test_respects_d_subsampling(self, rng):
        policy = LeastWorkLeft(1)
        chosen = {policy.select_server(make_view([1, 1, 1], work=[1.0, 2.0, 3.0]), rng) for _ in range(200)}
        assert chosen == {0, 1, 2}
