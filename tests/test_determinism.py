"""Regression tests: seeded runs are bitwise identical across processes.

The reproducibility contract of the CLI and the ensemble runner is stronger
than "statistically the same": with a fixed ``--seed``, every simulated
number must be *bitwise identical* across runs, across separate operating
system processes, and across worker counts.  These tests spawn fresh python
interpreters (not just fresh calls in this process) so they would catch any
dependence on process-level state — hash randomization, global RNG state,
scheduling order of pool workers, or dict ordering leaking into seeds.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _run_cli(*arguments: str) -> str:
    """Run ``repro-lb`` in a fresh interpreter and return its stdout."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro.cli", *arguments],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def _simulated_lines(stdout: str) -> list:
    """Drop wall-clock diagnostic lines — the only legitimate variation."""
    return [line for line in stdout.splitlines() if not line.startswith("wall-clock")]


class TestFleetSeedDeterminism:
    def test_fleet_seed_bitwise_identical_across_processes(self):
        arguments = ("fleet", "-N", "500", "-u", "0.8", "--events", "40000", "--seed", "3")
        first = _run_cli(*arguments)
        second = _run_cli(*arguments)
        assert _simulated_lines(first) == _simulated_lines(second)
        # The filter removed exactly the wall-clock line, nothing else.
        assert len(first.splitlines()) - len(_simulated_lines(first)) == 1

    def test_fleet_different_seed_changes_output(self):
        base = ("fleet", "-N", "500", "-u", "0.8", "--events", "40000", "--seed")
        assert _simulated_lines(_run_cli(*base, "3")) != _simulated_lines(_run_cli(*base, "4"))


class TestEnsembleSeedDeterminism:
    def test_ensemble_bitwise_identical_across_processes_and_workers(self):
        base = (
            "ensemble", "-N", "300", "-d", "2", "-u", "0.9",
            "--replications", "3", "--events", "20000", "--seed", "17",
        )
        first = _run_cli(*base, "--workers", "1")
        second = _run_cli(*base, "--workers", "1")
        parallel = _run_cli(*base, "--workers", "2")
        assert _simulated_lines(first) == _simulated_lines(second)
        # Worker count must not leak into the simulated numbers either.
        assert _simulated_lines(first) == _simulated_lines(parallel)

    def test_ensemble_jsonl_metrics_identical_across_processes(self, tmp_path):
        import json

        base = (
            "ensemble", "-N", "200", "-u", "0.8",
            "--replications", "2", "--events", "10000", "--seed", "23",
        )
        runs = []
        for index in range(2):
            path = tmp_path / f"run{index}.jsonl"
            _run_cli(*base, "--jsonl", str(path))
            records = [json.loads(line) for line in path.read_text().splitlines()]
            # Strip what is legitimately run-dependent: wall-clock metrics
            # and the provenance timestamp.
            for record in records:
                record.pop("wall_seconds", None)
                record.pop("events_per_second", None)
                record.pop("provenance", None)
            runs.append(records)
        assert runs[0] == runs[1]
