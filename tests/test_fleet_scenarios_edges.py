"""Edge-case tests for fleet scenarios: zero-duration segments, flash crowds
at t=0, and shrinking a pool whose servers are still occupied."""

import pytest

from repro.fleet.engine import FleetSimulation, run_scenario
from repro.fleet.scenarios import (
    Scenario,
    ScenarioPhase,
    flash_crowd,
    get_scenario,
    load_ramp,
)
from repro.utils.validation import ValidationError


class TestZeroDurationSegments:
    def test_zero_duration_phase_is_legal(self):
        phase = ScenarioPhase(duration=0.0, utilization=0.9)
        assert phase.duration == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioPhase(duration=-1.0, utilization=0.9)

    def test_all_zero_durations_rejected(self):
        with pytest.raises(ValidationError, match="positive total duration"):
            Scenario(
                name="empty",
                description="no time at all",
                phases=(ScenarioPhase(duration=0.0, utilization=0.5),),
            )

    def test_zero_total_duration_ramp_rejected(self):
        with pytest.raises(ValidationError, match="positive total duration"):
            load_ramp(total_duration=0.0)

    def test_zero_duration_segment_is_skipped_but_reconfigures(self):
        """A zero-length mid-ramp segment applies its load without a window."""
        scenario = Scenario(
            name="step",
            description="instantaneous load step",
            phases=(
                ScenarioPhase(duration=5.0, utilization=0.5, label="low"),
                ScenarioPhase(duration=0.0, utilization=5.0, label="ghost"),
                ScenarioPhase(duration=5.0, utilization=0.9, label="high"),
            ),
            warmup_time=2.0,
        )
        result = run_scenario(scenario, num_servers=200, seed=31)
        # The zero-duration phase contributes no statistics window...
        assert list(result.labels) == ["low", "high"]
        assert len(result.phases) == 2
        # ...and did not leak its (absurd) utilization into the windows.
        assert result.phases[0].utilization == pytest.approx(0.5)
        assert result.phases[1].utilization == pytest.approx(0.9)

    def test_zero_duration_resize_applies_instantaneously(self):
        scenario = Scenario(
            name="snap-resize",
            description="pool doubles in zero time",
            phases=(
                ScenarioPhase(duration=4.0, utilization=0.7, label="before"),
                ScenarioPhase(duration=0.0, utilization=0.7, server_scale=2.0, label="snap"),
                ScenarioPhase(duration=4.0, utilization=0.7, server_scale=2.0, label="after"),
            ),
        )
        result = run_scenario(scenario, num_servers=100, seed=32)
        assert result.phases[0].num_servers == 100
        assert result.phases[1].num_servers == 200


class TestFlashCrowdAtTimeZero:
    def test_peak_at_t0(self):
        scenario = flash_crowd(base_duration=0.0, peak_duration=3.0, recovery_duration=10.0)
        result = run_scenario(scenario, num_servers=300, seed=33)
        # No base window: measurement starts inside the spike.
        assert list(result.labels) == ["spike", "recovery"]
        assert result.phases[0].utilization == pytest.approx(1.4)
        # Overload at t=0 builds queues; recovery drains them back down.
        assert result.phases[0].mean_queue_length < result.phases[1].mean_queue_length * 10
        assert result.total_time == pytest.approx(13.0)

    def test_registry_forwards_base_duration(self):
        scenario = get_scenario("flash-crowd", base_duration=0.0)
        assert scenario.phases[0].duration == 0.0
        assert scenario.phases[1].label == "spike"

    def test_default_still_has_base_phase(self):
        result = run_scenario(flash_crowd(), num_servers=100, seed=34)
        assert list(result.labels) == ["base", "spike", "recovery"]


class TestShrinkWithOccupiedServers:
    def test_engine_clamps_shrink_at_busy_servers(self):
        simulation = FleetSimulation(num_servers=50, d=2, utilization=0.95, seed=35)
        simulation.advance(max_events=20_000)
        busy = simulation.state.busy_servers
        assert busy > 2  # high load: most servers hold a job
        actual = simulation.set_num_servers(2)
        # Running jobs are never killed: the pool clamps at the busy count.
        assert actual == busy
        assert simulation.state.num_servers == busy

    def test_resize_scenario_with_occupied_servers_keeps_law_valid(self):
        scenario = Scenario(
            name="deep-shrink",
            description="resize far below the busy count",
            phases=(
                ScenarioPhase(duration=5.0, utilization=0.95, label="hot"),
                ScenarioPhase(duration=5.0, utilization=0.95, server_scale=0.01, label="shrunk"),
            ),
            warmup_time=2.0,
        )
        result = run_scenario(scenario, num_servers=200, seed=36)
        shrunk = result.phases[1]
        # The pool never drops below its busy servers, so the occupancy
        # fractions stay a valid non-increasing profile with s_0 = 1.
        assert shrunk.num_servers >= 2
        fractions = shrunk.occupancy_fractions
        assert fractions[0] == pytest.approx(1.0)
        assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:]))

    def test_shrink_below_d_still_rejected(self):
        simulation = FleetSimulation(num_servers=10, d=5, utilization=0.0, seed=37)
        with pytest.raises(ValidationError):
            simulation.set_num_servers(1)
