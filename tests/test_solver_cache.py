"""The spec-keyed QBD solver cache: one solve per distinct configuration.

ISSUE 4 acceptance: a grid sweep with the solver cache performs exactly one
QBD solve per distinct ``(system, policy)`` configuration and reproduces
the pre-cache numbers bitwise.
"""

import pytest

from repro.core.analysis import analyze_sqd
from repro.core.solver_cache import (
    SolverCache,
    bound_solve_key,
    clear_solver_cache,
    solver_cache,
)
from repro.ensemble.grid import GridConfig, run_grid
from repro.experiments.runner import SweepConfig, run_sweep


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_solver_cache()
    yield
    clear_solver_cache()


class TestSolverCacheObject:
    def test_get_or_compute_caches_and_counts(self):
        cache = SolverCache(maxsize=4)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 41) == 41
        assert cache.get_or_compute("k", lambda: calls.append(1) or 42) == 41
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.solves == 1
        assert cache.stats.lookups == 2

    def test_lru_eviction(self):
        cache = SolverCache(maxsize=2)
        for key in ("a", "b", "c"):  # evicts "a"
            cache.get_or_compute(key, lambda k=key: k.upper())
        assert cache.stats.evictions == 1
        calls = []
        cache.get_or_compute("a", lambda: calls.append(1) or "A2")
        assert calls  # "a" was re-solved

    def test_maxsize_zero_disables_storage(self):
        cache = SolverCache(maxsize=0)
        calls = []
        for _ in range(3):
            cache.get_or_compute("k", lambda: calls.append(1) or 1)
        assert len(calls) == 3
        assert len(cache) == 0

    def test_clear_resets_entries_and_stats(self):
        cache = SolverCache()
        cache.get_or_compute("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_key_distinguishes_every_model_parameter(self):
        base = dict(num_servers=6, d=2, utilization=0.9, service_rate=1.0, threshold=3)
        key = bound_solve_key("lower", method="m", **base)
        assert bound_solve_key("upper", method="m", **base) != key
        assert bound_solve_key("lower", method="other", **base) != key
        for field, value in [("num_servers", 7), ("d", 3), ("utilization", 0.8),
                             ("service_rate", 2.0), ("threshold", 2)]:
            changed = {**base, field: value}
            assert bound_solve_key("lower", method="m", **changed) != key


class TestAnalyzeSqdCaching:
    def test_cached_and_uncached_results_are_bitwise_identical(self):
        fresh = analyze_sqd(num_servers=4, d=2, utilization=0.9, threshold=2, use_cache=False)
        cached = analyze_sqd(num_servers=4, d=2, utilization=0.9, threshold=2)
        replay = analyze_sqd(num_servers=4, d=2, utilization=0.9, threshold=2)
        for analysis in (cached, replay):
            assert analysis.lower_delay == fresh.lower_delay
            assert analysis.upper_delay == fresh.upper_delay
            assert analysis.asymptotic_delay == fresh.asymptotic_delay
        # the replay answered from the cache: two bound solves total
        assert solver_cache().stats.solves == 2
        assert solver_cache().stats.hits == 2

    def test_unstable_upper_bound_outcome_is_cached(self):
        # (N=3, T=2, rho=0.95) violates the upper model's drift condition.
        first = analyze_sqd(num_servers=3, d=2, utilization=0.95, threshold=2)
        assert first.upper_bound_unstable
        solves_after_first = solver_cache().stats.solves
        second = analyze_sqd(num_servers=3, d=2, utilization=0.95, threshold=2)
        assert second.upper_bound_unstable
        assert solver_cache().stats.solves == solves_after_first

    def test_method_is_part_of_the_key(self):
        analyze_sqd(num_servers=4, d=2, utilization=0.9, threshold=2,
                    lower_bound_method="scalar-geometric", compute_upper_bound=False)
        analyze_sqd(num_servers=4, d=2, utilization=0.9, threshold=2,
                    lower_bound_method="matrix-geometric", compute_upper_bound=False)
        assert solver_cache().stats.solves == 2


class TestSweepAndGridCaching:
    def test_sweep_rerun_is_fully_cached_and_bitwise_stable(self):
        config = SweepConfig(server_counts=(3, 4), choices=(2,),
                             utilizations=(0.7, 0.9), thresholds=(2,))
        first = run_sweep(config)
        solves = solver_cache().stats.solves
        # 4 configurations x (lower + upper) = 8 distinct solves
        assert solves == 8
        second = run_sweep(config)
        assert solver_cache().stats.solves == solves  # zero new solves
        assert second.records == first.records        # bitwise replay

    def test_grid_sweep_solves_each_distinct_system_once(self):
        config = GridConfig(
            server_counts=(4,),
            choices=(2,),
            utilizations=(0.8, 0.9),
            num_events=4_000,
            replications=3,
            seed=11,
            bounds=True,
            threshold=2,
        )
        result = run_grid(config)
        # 2 distinct (system, policy) configurations, lower + upper each —
        # independent of the 3 replications per point.
        assert solver_cache().stats.solves == 4
        rows = result.records()
        assert len(rows) == 2
        for row in rows:
            assert row["lower_bound"] > 0
            if row["upper_bound"] is not None:  # None = drift-unstable upper model
                assert row["lower_bound"] <= row["upper_bound"]
        # a re-run reuses every solve and reproduces the bracket bitwise
        again = run_grid(config)
        assert solver_cache().stats.solves == 4
        assert again.records() == rows

    def test_grid_bounds_skip_intractable_and_non_sqd_points(self):
        huge = GridConfig(server_counts=(5000,), utilizations=(0.9,),
                          num_events=2_000, replications=1, bounds=True)
        row = run_grid(huge).records()[0]
        assert "lower_bound" not in row
        assert solver_cache().stats.solves == 0

        jsq = GridConfig(server_counts=(4,), utilizations=(0.9,), policy="jsq",
                         num_events=2_000, replications=1, bounds=True)
        row = run_grid(jsq).records()[0]
        assert "lower_bound" not in row
        assert solver_cache().stats.solves == 0

    def test_grid_without_bounds_is_unchanged(self):
        config = GridConfig(server_counts=(4,), utilizations=(0.9,),
                            num_events=2_000, replications=1)
        row = run_grid(config).records()[0]
        assert "lower_bound" not in row
        assert solver_cache().stats.lookups == 0
