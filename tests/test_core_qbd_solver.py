"""Tests for the matrix-geometric bound solver (Theorem 1)."""

import numpy as np
import pytest

from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.model import SQDModel
from repro.core.qbd_solver import (
    SolutionMethod,
    UnstableBoundModelError,
    decay_rate,
    solve_bound_model,
    upper_bound_is_stable,
)
from repro.core.state import total_jobs


class TestLowerBoundSolution:
    def test_probability_mass_is_one(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        assert solution.total_probability_mass() == pytest.approx(1.0, abs=1e-8)
        assert np.all(solution.pi_boundary >= 0)
        assert np.all(solution.pi_block0 >= 0)
        assert np.all(solution.pi_block1 >= 0)

    def test_balance_residual_is_small(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        assert solution.balance_residual < 1e-8
        assert solution.g_residual < 1e-8
        assert solution.r_residual < 1e-8

    def test_g_converges_in_few_iterations(self, small_lower_blocks):
        # The paper reports the logarithmic-reduction algorithm needs k <= 6
        # iterations for its configurations.
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        assert solution.g_iterations <= 8

    def test_rate_matrix_spectral_radius_is_rho_to_the_n(self, small_lower_blocks):
        # Theorem 3 in disguise: the tail of the lower bound model decays by
        # rho^N per block of N jobs.
        model = small_lower_blocks.model
        radius = decay_rate(small_lower_blocks)
        assert radius == pytest.approx(model.utilization ** model.num_servers, abs=1e-8)

    def test_scalar_and_matrix_methods_agree(self, small_lower_blocks):
        matrix_solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        scalar_solution = solve_bound_model(
            small_lower_blocks,
            method=SolutionMethod.SCALAR_GEOMETRIC,
            decay_factor=small_lower_blocks.model.utilization ** 3,
        )
        assert scalar_solution.mean_delay == pytest.approx(matrix_solution.mean_delay, abs=1e-8)
        assert scalar_solution.mean_jobs_in_system == pytest.approx(matrix_solution.mean_jobs_in_system, abs=1e-8)

    def test_delay_decomposition_consistent(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks)
        model = small_lower_blocks.model
        assert solution.mean_sojourn_time == pytest.approx(solution.mean_waiting_time + 1.0 / model.service_rate)
        assert solution.mean_waiting_time == pytest.approx(
            solution.mean_waiting_jobs / model.total_arrival_rate
        )
        assert solution.mean_delay == solution.mean_sojourn_time

    def test_boundary_probabilities_keyed_by_state(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks)
        probabilities = solution.boundary_probabilities()
        assert (0, 0, 0) in probabilities
        assert all(p >= 0 for p in probabilities.values())

    def test_block_probabilities_decay_geometrically(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        block1 = sum(solution.block_probabilities(1).values())
        block3 = sum(solution.block_probabilities(3).values())
        rho_n = small_lower_blocks.model.utilization ** 3
        assert block3 == pytest.approx(block1 * rho_n ** 2, rel=1e-6)

    def test_low_utilization_delay_close_to_service_time(self):
        model = SQDModel(3, 2, 0.05)
        solution = solve_bound_model(LowerBoundModel(model, 2).qbd_blocks())
        assert solution.mean_delay == pytest.approx(1.0, abs=0.05)

    def test_delay_increases_with_utilization(self):
        delays = []
        for utilization in (0.3, 0.6, 0.9):
            model = SQDModel(3, 2, utilization)
            delays.append(solve_bound_model(LowerBoundModel(model, 2).qbd_blocks()).mean_delay)
        assert delays[0] < delays[1] < delays[2]


class TestUpperBoundSolution:
    def test_upper_bound_above_lower_bound(self, small_lower_blocks, small_upper_blocks):
        lower = solve_bound_model(small_lower_blocks)
        upper = solve_bound_model(small_upper_blocks)
        assert upper.mean_delay > lower.mean_delay

    def test_upper_bound_tightens_with_threshold(self):
        model = SQDModel(3, 2, 0.7)
        upper_t2 = solve_bound_model(UpperBoundModel(model, 2).qbd_blocks()).mean_delay
        upper_t3 = solve_bound_model(UpperBoundModel(model, 3).qbd_blocks()).mean_delay
        upper_t4 = solve_bound_model(UpperBoundModel(model, 4).qbd_blocks()).mean_delay
        assert upper_t2 > upper_t3 > upper_t4

    def test_unstable_upper_bound_raises(self):
        # With T=1 the blocking rule wastes enough capacity that the drift
        # condition fails well below utilization 1.
        model = SQDModel(3, 2, 0.9)
        blocks = UpperBoundModel(model, 1).qbd_blocks()
        assert not upper_bound_is_stable(blocks)
        with pytest.raises(UnstableBoundModelError):
            solve_bound_model(blocks)

    def test_stability_helper_matches_drift_sign(self, small_upper_blocks):
        assert upper_bound_is_stable(small_upper_blocks) == (
            solve_bound_model(small_upper_blocks).drift < 0
        )

    def test_scalar_method_rejected_for_upper_bound(self, small_upper_blocks):
        with pytest.raises(ValueError):
            solve_bound_model(small_upper_blocks, method=SolutionMethod.SCALAR_GEOMETRIC)


class TestSolutionIntrospection:
    def test_mean_jobs_consistent_with_distribution_head(self, small_lower_blocks):
        # Recompute the mean number of jobs by brute-force summation over many
        # blocks and compare with the closed-form geometric sums.
        solution = solve_bound_model(small_lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        total = 0.0
        for state, probability in solution.boundary_probabilities().items():
            total += probability * total_jobs(state)
        for q in range(0, 60):
            for state, probability in solution.block_probabilities(q).items():
                total += probability * total_jobs(state)
        assert total == pytest.approx(solution.mean_jobs_in_system, rel=1e-6)

    def test_method_recorded_on_solution(self, small_lower_blocks):
        solution = solve_bound_model(small_lower_blocks, method="scalar-geometric", decay_factor=0.7 ** 3)
        assert solution.method is SolutionMethod.SCALAR_GEOMETRIC
        assert solution.decay_factor == pytest.approx(0.343)
        assert solution.rate_matrix is None
