"""Tests for the occupancy-vector CTMC state."""

import numpy as np
import pytest

from repro.fleet.occupancy import OccupancyState
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_empty_cluster(self):
        state = OccupancyState.empty(10)
        assert state.num_servers == 10
        assert state.busy_servers == 0
        assert state.total_jobs == 0
        assert state.max_queue_length == 0

    def test_from_queue_lengths(self):
        state = OccupancyState.from_queue_lengths([0, 1, 1, 3])
        assert state.levels == [4, 3, 1, 1]
        assert state.total_jobs == 5
        assert state.num_with_exactly(0) == 1
        assert state.num_with_exactly(1) == 2
        assert state.num_with_exactly(3) == 1
        assert state.queue_length_counts() == [1, 2, 0, 1]

    def test_from_fractions_rounds_and_truncates(self):
        state = OccupancyState.from_fractions(100, [1.0, 0.9, 0.5, 0.001])
        assert state.levels == [100, 90, 50]
        assert state.total_jobs == 140

    def test_trailing_zeros_trimmed(self):
        state = OccupancyState([5, 3, 0, 0])
        assert state.levels == [5, 3]

    def test_rejects_non_monotone(self):
        with pytest.raises(ValidationError):
            OccupancyState([5, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            OccupancyState([])


class TestTransitionLaw:
    def test_arrival_probabilities_sum_to_one(self):
        state = OccupancyState.from_queue_lengths([0, 1, 2, 2, 5])
        for d in (1, 2, 3):
            for with_replacement in (False, True):
                probabilities = state.arrival_level_probabilities(d, with_replacement)
                assert probabilities.sum() == pytest.approx(1.0)
                assert (probabilities >= -1e-15).all()

    def test_without_replacement_matches_hypergeometric(self):
        # 3 of 5 servers busy: P(both polled busy) = C(3,2)/C(5,2) = 3/10.
        state = OccupancyState.from_queue_lengths([0, 0, 1, 1, 1])
        assert state.poll_ge_probability(1, d=2) == pytest.approx(0.3)
        assert state.poll_ge_probability(1, d=2, with_replacement=True) == pytest.approx(0.36)

    def test_departure_probabilities(self):
        state = OccupancyState.from_queue_lengths([0, 1, 1, 3])
        probabilities = state.departure_level_probabilities()
        assert probabilities.sum() == pytest.approx(1.0)
        assert probabilities[0] == pytest.approx(2.0 / 3.0)  # two servers at length 1

    def test_transition_rates_total(self):
        state = OccupancyState.from_queue_lengths([0, 1, 2])
        arrivals, departures = state.transition_rates(arrival_rate=3.0, service_rate=1.0, d=2)
        assert arrivals.sum() == pytest.approx(3.0)
        assert departures.sum() == pytest.approx(2.0)  # two busy servers

    def test_sampler_matches_probabilities(self):
        """The O(depth) scan inverts the vectorized transition CDF exactly.

        ``sample_arrival_level(u, d)`` returns the largest ``k`` with
        ``P(all d polled >= k) > u``, so the returned level equals the
        number of tail probabilities exceeding ``u``.
        """
        state = OccupancyState.from_queue_lengths([0, 0, 1, 2, 2, 4])
        for d in (1, 2, 3):
            for with_replacement in (False, True):
                probabilities = state.arrival_level_probabilities(d, with_replacement)
                tail = 1.0 - np.cumsum(probabilities)  # tail[k] = P(level > k)
                for u in (0.01, 0.2, 0.5, 0.77, 0.99):
                    level = state.sample_arrival_level(u, d, with_replacement)
                    expected = int((tail > u).sum())
                    assert level == expected
                    assert probabilities[level] > 0

    def test_jsq_level_is_minimum(self):
        state = OccupancyState.from_queue_lengths([2, 2, 3])
        assert state.sample_jsq_level() == 2
        assert OccupancyState.empty(4).sample_jsq_level() == 0


class TestEvents:
    def test_arrival_departure_roundtrip(self):
        state = OccupancyState.empty(3)
        state.apply_arrival(0)
        state.apply_arrival(0)
        state.apply_arrival(1)
        assert state.levels == [3, 2, 1]
        assert state.total_jobs == 3
        state.apply_departure(2)
        assert state.levels == [3, 2]
        state.apply_departure(1)
        state.apply_departure(1)
        assert state.levels == [3]
        assert state.total_jobs == 0

    def test_departure_from_empty_level_rejected(self):
        state = OccupancyState.from_queue_lengths([2, 2])
        with pytest.raises(ValidationError):
            state.apply_departure(1)  # no server with exactly 1 job
        with pytest.raises(ValidationError):
            OccupancyState.empty(2).apply_departure(1)

    def test_mean_queue_length(self):
        state = OccupancyState.from_queue_lengths([0, 2, 4])
        assert state.mean_queue_length() == pytest.approx(2.0)
        assert state.fractions()[0] == pytest.approx(1.0)

    def test_resize_grow_and_shrink(self):
        state = OccupancyState.from_queue_lengths([1, 1, 0, 0])
        assert state.resize(10) == 10
        assert state.num_servers == 10
        assert state.resize(3) == 3
        # only idle servers can leave: shrinking below busy count clamps
        assert state.resize(1) == 2
        assert state.num_servers == state.busy_servers == 2

    def test_copy_is_independent(self):
        state = OccupancyState.from_queue_lengths([1, 2])
        clone = state.copy()
        clone.apply_arrival(1)
        assert state.levels == [2, 2, 1]
        assert clone.levels == [2, 2, 2]
