"""Chaos matrix: campaigns under injected faults stay bitwise-correct.

Each test arms a deterministic :class:`~repro.faults.FaultPlan`, drives a
small campaign through the fault (absorbing retries, crash-resume loops,
watchdog kills, quarantine), and asserts the load-bearing guarantee of the
resilience layer: the surviving results are **bitwise identical** to a
fault-free twin of the same grid — no record lost, none double-folded.

Also covers the graceful-degradation acceptance paths: backend fallback in
:func:`repro.run` / :func:`repro.campaigns.worker.execute_task`, quarantine
surfacing in ``campaign status --json``, and clean SIGTERM shutdown of the
CLI campaign runner.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import ExperimentSpec, run
from repro.api.backends import get_backend
from repro.campaigns import (
    campaign_fingerprint,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.campaigns.worker import execute_task
from repro.core import UnstableBoundModelError
from repro.ensemble.grid import GridConfig, PointTask
from repro.faults import FaultPlan, FaultSpec, InjectedCrash, clear, install

SRC = str(Path(__file__).resolve().parent.parent / "src")

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="chaos matrix relies on POSIX fork/signals"
)


def small_grid(**overrides):
    base = dict(
        server_counts=(20,),
        choices=(2,),
        utilizations=(0.8, 0.95),
        num_events=2000,
        replications=3,
        seed=7,
        workers=1,
    )
    base.update(overrides)
    return GridConfig(**base)


def single_point_grid(**overrides):
    return small_grid(utilizations=(0.8,), **overrides)


@pytest.fixture(autouse=True)
def _disarm_faults():
    clear()
    yield
    clear()


@pytest.fixture(scope="module")
def clean_pair(tmp_path_factory):
    """Fault-free twins of both chaos grids, run once per module."""
    root = tmp_path_factory.mktemp("clean")
    clear()
    run_campaign(grid=small_grid(), directory=root / "two_points")
    run_campaign(grid=single_point_grid(), directory=root / "one_point")
    return {
        "two_points": campaign_fingerprint(root / "two_points"),
        "one_point": campaign_fingerprint(root / "one_point"),
    }


def run_through_crashes(directory, grid, **kwargs):
    """Drive a campaign to completion across injected crash/resume cycles."""
    crashes = 0
    try:
        result = run_campaign(grid=grid, directory=directory, **kwargs)
    except InjectedCrash:
        crashes += 1
        result = None
    while result is None or not result.complete:
        assert crashes < 12, "crash/resume loop failed to make progress"
        try:
            result = resume_campaign(directory)
        except InjectedCrash:
            crashes += 1
            result = None
    return result, crashes


def journal_events(directory, kind):
    lines = (directory / "journal.jsonl").read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if f'"{kind}"' in line]


# --------------------------------------------------------------------- #
# I/O errors: absorbed by seeded-backoff retries, no resume needed
# --------------------------------------------------------------------- #
class TestTransientIOErrors:
    def test_journal_append_errors_are_absorbed(self, tmp_path, clean_pair):
        plan = install(FaultPlan(faults=[
            FaultSpec(site="journal.append", kind="io_error", times=2)
        ]))
        result = run_campaign(grid=small_grid(), directory=tmp_path / "camp")
        assert result.complete and result.status == "complete"
        assert plan.fire_counts().get("journal.append", 0) > 0
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["two_points"]

    def test_record_append_errors_are_absorbed(self, tmp_path, clean_pair):
        plan = install(FaultPlan(faults=[
            FaultSpec(site="records.append", kind="io_error", times=2)
        ]))
        result = run_campaign(grid=small_grid(), directory=tmp_path / "camp")
        assert result.complete
        assert plan.fire_counts().get("records.append", 0) > 0
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["two_points"]


# --------------------------------------------------------------------- #
# Torn writes: crash at the durability boundary, repair + resume
# --------------------------------------------------------------------- #
class TestTornWrites:
    def test_torn_journal_line_repairs_on_resume(self, tmp_path, clean_pair):
        plan = install(FaultPlan(faults=[
            FaultSpec(site="journal.append", kind="torn_write", match=":1")
        ]))
        result, crashes = run_through_crashes(tmp_path / "camp", small_grid())
        assert crashes >= 1  # the fault genuinely struck
        assert result.complete
        assert plan.fire_counts().get("journal.append", 0) == crashes
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["two_points"]

    def test_torn_record_line_reruns_the_task(self, tmp_path, clean_pair):
        plan = install(FaultPlan(faults=[
            FaultSpec(site="records.append", kind="torn_write", match=":1")
        ]))
        result, crashes = run_through_crashes(tmp_path / "camp", small_grid())
        assert crashes >= 1
        assert result.complete
        assert plan.fire_counts().get("records.append", 0) == crashes
        # The re-run reproduced the lost record exactly: same seed, same fold.
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["two_points"]


# --------------------------------------------------------------------- #
# Worker deaths: crash injection, hung-task watchdog
# --------------------------------------------------------------------- #
class TestWorkerDeaths:
    def test_first_attempt_crashes_are_retried_identically(self, tmp_path, clean_pair):
        # Every task's FIRST dispatch kills its worker (fork inherits the
        # plan); the re-leased second attempts run clean.
        install(FaultPlan(faults=[
            FaultSpec(site="worker.task", kind="crash", match="#0", times=None)
        ]))
        result = run_campaign(
            grid=single_point_grid(workers=2), directory=tmp_path / "camp"
        )
        assert result.complete and result.status == "complete"
        assert not result.quarantined
        assert journal_events(tmp_path / "camp", "release")  # reaper re-leased
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["one_point"]

    def test_hung_task_is_reaped_by_watchdog(self, tmp_path, clean_pair):
        # Replication 0's first attempt hangs far past the wall-clock budget;
        # the watchdog must kill the worker and re-lease, well under the
        # injected 30 s sleep.
        install(FaultPlan(faults=[
            FaultSpec(site="worker.task", kind="hang", match=":0#0", seconds=30.0)
        ]))
        started = time.monotonic()
        result = run_campaign(
            grid=single_point_grid(workers=2),
            directory=tmp_path / "camp",
            task_timeout_seconds=1.5,
        )
        assert time.monotonic() - started < 25.0
        assert result.complete and not result.quarantined
        assert journal_events(tmp_path / "camp", "release")
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["one_point"]

    def test_dropped_heartbeats_never_change_results(self, tmp_path, clean_pair):
        plan = install(FaultPlan(faults=[
            FaultSpec(site="scheduler.heartbeat", kind="drop", times=None)
        ]))
        result = run_campaign(
            grid=small_grid(workers=2), directory=tmp_path / "camp"
        )
        assert result.complete
        assert plan.fire_counts().get("scheduler.heartbeat", 0) > 0
        assert campaign_fingerprint(tmp_path / "camp") == clean_pair["two_points"]


# --------------------------------------------------------------------- #
# Poison tasks: quarantine and degraded completion
# --------------------------------------------------------------------- #
class TestQuarantine:
    def test_poison_task_degrades_instead_of_crash_looping(self, tmp_path):
        # Replication 1 kills every worker that touches it, forever.  After
        # quarantine_after deaths the campaign must route around it and
        # complete degraded instead of tripping the crash-loop cap.
        install(FaultPlan(faults=[
            FaultSpec(site="worker.task", kind="crash", match=":1#", times=None)
        ]))
        directory = tmp_path / "camp"
        result = run_campaign(
            grid=single_point_grid(workers=2),
            directory=directory,
            quarantine_after=2,
        )
        assert result.complete and result.status == "degraded"
        assert len(result.quarantined) == 1
        assert result.quarantined[0].endswith(":1")
        assert "DEGRADED" in result.as_table()

        # The quarantine report is durable and explains itself.
        details = [
            json.loads(line)
            for line in (directory / "quarantined.jsonl").read_text().splitlines()
        ]
        assert len(details) == 1
        assert details[0]["task"] == result.quarantined[0]
        assert details[0]["deaths"] == 2
        assert "killed its worker" in details[0]["reason"]

        # Status inspection agrees, without re-running anything.
        status = campaign_status(directory)
        assert status.complete and status.status == "degraded"
        assert status.counts["quarantined"] == 1
        assert status.quarantined == result.quarantined

        # Resuming a degraded campaign is a no-op that stays degraded —
        # quarantine is a durable verdict, not a transient state.
        clear()
        resumed = resume_campaign(directory)
        assert resumed.complete and resumed.executed_tasks == 0
        assert resumed.status == "degraded"
        assert resumed.quarantined == result.quarantined


# --------------------------------------------------------------------- #
# Backend degradation: typed runtime failures fall back, never SpecError
# --------------------------------------------------------------------- #
class TestBackendFallback:
    @pytest.fixture()
    def unstable_qbd(self, monkeypatch):
        backend = get_backend("qbd_bounds")

        def unstable(spec, seed=None):
            raise UnstableBoundModelError("injected: bound model unstable")

        monkeypatch.setattr(backend, "run_once", unstable)
        return backend

    def _spec(self):
        return ExperimentSpec.create(
            num_servers=20, d=2, utilization=0.8, num_events=2000
        )

    def test_run_degrades_to_next_capable_backend(self, unstable_qbd):
        result = run(self._spec(), backend="qbd_bounds", seed=11)
        assert result.backend != "qbd_bounds"
        degraded = result.provenance["degraded"]
        assert degraded[0]["backend"] == "qbd_bounds"
        assert "UnstableBoundModelError" in degraded[0]["error"]
        assert result.extras.get("degraded_from") == "qbd_bounds"
        assert result.mean_delay > 0

    def test_fallback_false_raises_the_original_error(self, unstable_qbd):
        with pytest.raises(UnstableBoundModelError):
            run(self._spec(), backend="qbd_bounds", fallback=False)

    def test_spec_errors_never_trigger_fallback(self, monkeypatch):
        # A SpecError means the *request* is wrong — silently answering a
        # different question with another backend would be worse than
        # failing, so the fallback chain must never catch it.
        from repro.api import SpecError

        backend = get_backend("qbd_bounds")

        def rejected(spec, seed=None):
            raise SpecError("injected: spec rejected")

        monkeypatch.setattr(backend, "run_once", rejected)
        with pytest.raises(SpecError):
            run(self._spec(), backend="qbd_bounds")

    def test_campaign_worker_records_degradation_trail(self, unstable_qbd):
        spec = self._spec()
        task = PointTask(
            task_id="deadbeef:0",
            digest="deadbeef",
            backend="qbd_bounds",
            spec=spec,
            seed=123,
            replication=0,
            labels={},
        )
        record = execute_task(task)
        assert record["degraded_from"] == "qbd_bounds"
        assert record["backend"] != "qbd_bounds"
        assert record["replication"] == 0 and record["seed"] == 123


# --------------------------------------------------------------------- #
# Graceful SIGTERM: the CLI campaign stops cleanly and resumes exactly
# --------------------------------------------------------------------- #
class TestGracefulShutdown:
    def test_sigterm_leaves_a_cleanly_resumable_campaign(self, tmp_path, clean_pair):
        victim = tmp_path / "victim"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env.pop("REPRO_FAULT_PLAN", None)
        # The per-task delay applies in pool workers; it widens the window
        # between the first durable record and campaign completion so the
        # SIGTERM reliably lands mid-sweep.
        env["REPRO_CAMPAIGN_TASK_DELAY"] = "0.3"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run",
                "--dir", str(victim),
                "--servers", "20", "--utilizations", "0.8", "0.95",
                "--events", "2000", "--replications", "3", "--seed", "7",
                "--workers", "2",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        records = victim / "records.jsonl"
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if records.exists() and records.read_text(encoding="utf-8").count("\n") >= 1:
                break
            time.sleep(0.05)
        else:  # pragma: no cover - diagnostic path
            process.kill()
            pytest.fail("campaign produced no records within 60s")
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=60.0)
        assert process.returncode == 0, output  # graceful, not a crash
        assert "interrupted after" in output
        assert "resume" in output

        status = campaign_status(victim)
        assert not status.complete and status.status == "resumable"

        resumed = resume_campaign(victim)
        assert resumed.complete
        assert campaign_fingerprint(victim) == clean_pair["two_points"]

    def test_env_armed_chaos_reaches_the_cli(self, tmp_path, clean_pair):
        """The CI chaos-smoke path: REPRO_FAULT_PLAN + plain CLI run."""
        directory = tmp_path / "camp"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_FAULT_PLAN"] = FaultPlan(faults=[
            FaultSpec(site="journal.append", kind="io_error", times=2),
            FaultSpec(site="records.append", kind="io_error", times=1),
        ]).to_json()
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "campaign", "run",
                "--dir", str(directory),
                "--servers", "20", "--utilizations", "0.8", "0.95",
                "--events", "2000", "--replications", "3", "--seed", "7",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120.0,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert campaign_fingerprint(directory) == clean_pair["two_points"]
