"""Tests for the declarative experiment spec: validation and round-tripping."""

import json

import pytest

from repro.api.spec import (
    DistributionSpec,
    ExperimentSpec,
    HorizonSpec,
    ScenarioSpec,
    SpecError,
    SystemSpec,
    WorkloadSpec,
)
from repro.utils.validation import ValidationError


class TestValidation:
    def test_spec_error_is_a_validation_error(self):
        # One exception type across the API, compatible with existing handlers.
        assert issubclass(SpecError, ValidationError)
        assert issubclass(SpecError, ValueError)

    def test_num_servers_must_be_positive_integer(self):
        with pytest.raises(SpecError, match="num_servers"):
            SystemSpec(num_servers=0)
        with pytest.raises(SpecError, match="num_servers"):
            SystemSpec(num_servers=2.5)

    def test_d_bounded_by_num_servers(self):
        with pytest.raises(SpecError, match="d must"):
            SystemSpec(num_servers=3, d=4)
        with pytest.raises(SpecError, match="d must"):
            SystemSpec(num_servers=3, d=0)

    def test_utilization_strictly_inside_unit_interval(self):
        for bad in (0.0, 1.0, -0.1, 1.7):
            with pytest.raises(SpecError, match="utilization"):
                SystemSpec(num_servers=3, utilization=bad)

    def test_utilization_required_without_scenario(self):
        with pytest.raises(SpecError, match="utilization"):
            ExperimentSpec(system=SystemSpec(num_servers=10))

    def test_scenario_releases_utilization_requirement(self):
        spec = ExperimentSpec(
            system=SystemSpec(num_servers=10), scenario=ScenarioSpec("constant")
        )
        assert spec.system.utilization is None

    def test_scenario_and_utilization_together_rejected(self):
        # Scenarios carry their own loads; a spec utilization would be
        # silently ignored, so the combination must fail loudly.
        with pytest.raises(SpecError, match="scenario"):
            ExperimentSpec.create(num_servers=10, utilization=0.9, scenario="ramp")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SpecError, match="scenario.name"):
            ScenarioSpec("black-friday")

    def test_unknown_policy_rejected(self):
        with pytest.raises(SpecError, match="policy"):
            ExperimentSpec.create(num_servers=5, utilization=0.5, policy="psychic")

    def test_unknown_distributions_rejected(self):
        with pytest.raises(SpecError, match="arrival"):
            WorkloadSpec(arrival=DistributionSpec("uniform"))
        with pytest.raises(SpecError, match="service"):
            WorkloadSpec(service=DistributionSpec("pareto"))

    def test_horizon_validation(self):
        with pytest.raises(SpecError, match="num_events"):
            HorizonSpec(num_events=0)
        with pytest.raises(SpecError, match="warmup_fraction"):
            HorizonSpec(warmup_fraction=0.95)

    def test_options_must_be_json_compatible(self):
        with pytest.raises(SpecError, match="options"):
            ExperimentSpec.create(num_servers=5, utilization=0.5, callback=print)

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            ExperimentSpec.from_json("{not json")

    def test_unknown_top_level_field_rejected(self):
        payload = ExperimentSpec.create(num_servers=5, utilization=0.5).to_dict()
        payload["surprise"] = 1
        with pytest.raises(SpecError, match="surprise"):
            ExperimentSpec.from_dict(payload)


class TestRoundTrip:
    def test_json_round_trip_is_bitwise_identical(self):
        spec = ExperimentSpec.create(
            num_servers=50,
            d=3,
            utilization=0.85,
            policy="jsq",
            num_events=123_456,
            seed=99,
            start="empty",
        )
        text = spec.to_json()
        rebuilt = ExperimentSpec.from_json(text)
        assert rebuilt == spec
        assert rebuilt.to_json() == text

    def test_round_trip_with_scenario_and_workload(self):
        spec = ExperimentSpec(
            system=SystemSpec(num_servers=200, d=2),
            policy="random",
            scenario=ScenarioSpec("flash-crowd", {"spike_utilization": 1.2}),
            seed=7,
        )
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.to_json() == spec.to_json()

    def test_round_trip_normalizes_sequences_to_tuples(self):
        # JSON has no tuples; both construction spellings must compare equal.
        spec = ExperimentSpec.create(
            num_servers=10,
            utilization=0.8,
            service="hyperexponential",
            service_params={"probabilities": [0.9, 0.1], "rates": [1.8, 0.36]},
        )
        rebuilt = ExperimentSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.workload.service.params["probabilities"] == (0.9, 0.1)

    def test_to_json_is_canonical(self):
        spec = ExperimentSpec.create(num_servers=5, utilization=0.5)
        payload = json.loads(spec.to_json())
        assert list(payload) == sorted(payload)
        assert payload["system"]["num_servers"] == 5

    def test_specs_are_hashable_free_but_comparable(self):
        a = ExperimentSpec.create(num_servers=5, utilization=0.5)
        b = ExperimentSpec.create(num_servers=5, utilization=0.5)
        c = ExperimentSpec.create(num_servers=6, utilization=0.5)
        assert a == b and a != c


class TestConveniences:
    def test_create_routes_extra_kwargs_to_options(self):
        spec = ExperimentSpec.create(
            num_servers=5, utilization=0.5, threshold=2, start="empty"
        )
        assert spec.options == {"threshold": 2, "start": "empty"}
        assert spec.option("threshold") == 2
        assert spec.option("absent", 42) == 42

    def test_with_seed(self):
        spec = ExperimentSpec.create(num_servers=5, utilization=0.5, seed=1)
        reseeded = spec.with_seed(2)
        assert reseeded.seed == 2
        assert reseeded.system == spec.system

    def test_describe_mentions_the_essentials(self):
        stationary = ExperimentSpec.create(num_servers=50, d=3, utilization=0.85)
        assert "N=50" in stationary.describe()
        assert "d=3" in stationary.describe()
        assert "rho=0.85" in stationary.describe()
        scenario = ExperimentSpec(
            system=SystemSpec(num_servers=10), scenario=ScenarioSpec("ramp")
        )
        assert "scenario=ramp" in scenario.describe()

    def test_specs_pickle(self):
        import pickle

        spec = ExperimentSpec.create(num_servers=5, utilization=0.5, threshold=2)
        assert pickle.loads(pickle.dumps(spec)) == spec
