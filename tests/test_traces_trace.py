"""Tier-1 guard for the :class:`ArrivalTrace` container.

The round-trip determinism tests are part of the acceptance contract of the
traces subsystem: ``load(save(trace)) == trace`` for every format, and a
second save of the loaded trace must reproduce the first file bitwise —
CSV and JSONL as bytes on disk, NPZ at the array-payload level (zip
containers may differ in metadata across platforms, the numbers may not).
"""

import numpy as np
import pytest

from repro.markov.arrival_processes import MarkovianArrivalProcess
from repro.markov.service_distributions import ExponentialService
from repro.traces import ArrivalTrace, TraceError, synthesize_trace

FORMATS = ("csv", "jsonl", "npz")


@pytest.fixture(scope="module")
def bursty_trace() -> ArrivalTrace:
    """A small bursty trace with job sizes and awkward float values."""
    process = MarkovianArrivalProcess.mmpp2(3.0, 0.3, 0.08, 0.05)
    return synthesize_trace(
        process, 500, seed=99, service_distribution=ExponentialService(1.0),
        meta={"capture": "unit-test"},
    )


class TestConstruction:
    def test_basic_properties(self):
        trace = ArrivalTrace([0.0, 0.5, 1.25, 3.0])
        assert trace.num_arrivals == len(trace) == 4
        assert trace.duration == pytest.approx(3.0)
        assert trace.rate == pytest.approx(1.0)
        assert np.allclose(trace.interarrival_times(), [0.5, 0.75, 1.75])
        assert not trace.has_sizes

    def test_batch_arrivals_are_legal(self):
        trace = ArrivalTrace([0.0, 1.0, 1.0, 2.0])
        assert trace.num_arrivals == 4

    def test_times_are_read_only(self):
        trace = ArrivalTrace([0.0, 1.0])
        with pytest.raises(ValueError):
            trace.arrival_times[0] = 5.0

    def test_unsorted_rejected(self):
        with pytest.raises(TraceError):
            ArrivalTrace([0.0, 2.0, 1.0])

    def test_negative_and_nonfinite_rejected(self):
        with pytest.raises(TraceError):
            ArrivalTrace([-1.0, 0.0])
        with pytest.raises(TraceError):
            ArrivalTrace([0.0, float("nan")])

    def test_size_validation(self):
        with pytest.raises(TraceError):
            ArrivalTrace([0.0, 1.0], job_sizes=[1.0])
        with pytest.raises(TraceError):
            ArrivalTrace([0.0, 1.0], job_sizes=[1.0, 0.0])

    def test_meta_must_be_strings(self):
        with pytest.raises(TraceError):
            ArrivalTrace([0.0, 1.0], meta={"seed": 7})

    def test_rate_needs_two_spanning_arrivals(self):
        with pytest.raises(TraceError):
            ArrivalTrace([1.0]).rate
        with pytest.raises(TraceError):
            ArrivalTrace([1.0, 1.0]).rate


class TestTransforms:
    def test_window_half_open(self):
        trace = ArrivalTrace([0.0, 1.0, 2.0, 3.0], job_sizes=[1, 2, 3, 4])
        windowed = trace.window(1.0, 3.0)
        assert np.allclose(windowed.arrival_times, [1.0, 2.0])
        assert np.allclose(windowed.job_sizes, [2.0, 3.0])
        assert "window[1,3)" in windowed.meta["transforms"]

    def test_head_and_shifted(self):
        trace = ArrivalTrace([5.0, 6.0, 8.0])
        assert np.allclose(trace.head(2).arrival_times, [5.0, 6.0])
        assert np.allclose(trace.shifted().arrival_times, [0.0, 1.0, 3.0])

    def test_rescaled_hits_target_rate_and_keeps_shape(self):
        trace = ArrivalTrace([0.0, 1.0, 3.0, 4.0])
        rescaled = trace.rescaled(6.0)
        assert rescaled.rate == pytest.approx(6.0)
        # Relative gaps (the burstiness shape) are preserved.
        original = trace.interarrival_times()
        scaled = rescaled.interarrival_times()
        assert np.allclose(scaled / scaled.sum(), original / original.sum())

    def test_transforms_chain_in_provenance(self):
        trace = ArrivalTrace([0.0, 1.0, 2.0, 3.0], meta={"source": "x"})
        chained = trace.window(0.0, 2.5).shifted()
        assert chained.meta["source"] == "x"
        assert chained.meta["transforms"].count("|") == 1

    def test_invalid_transform_arguments(self):
        trace = ArrivalTrace([0.0, 1.0])
        with pytest.raises(TraceError):
            trace.window(2.0, 1.0)
        with pytest.raises(TraceError):
            trace.head(-1)
        with pytest.raises(TraceError):
            trace.rescaled(0.0)


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_load_save_identity(self, tmp_path, bursty_trace, fmt):
        path = bursty_trace.save(tmp_path / f"trace.{fmt}")
        loaded = ArrivalTrace.load(path)
        assert loaded == bursty_trace
        # Arrays are bitwise identical, not merely approximately equal.
        assert loaded.arrival_times.tobytes() == bursty_trace.arrival_times.tobytes()
        assert loaded.job_sizes.tobytes() == bursty_trace.job_sizes.tobytes()
        assert loaded.meta == bursty_trace.meta

    @pytest.mark.parametrize("fmt", ("csv", "jsonl"))
    def test_text_formats_are_bitwise_stable(self, tmp_path, bursty_trace, fmt):
        first = bursty_trace.save(tmp_path / f"a.{fmt}")
        second = ArrivalTrace.load(first).save(tmp_path / f"b.{fmt}")
        assert first.read_bytes() == second.read_bytes()

    def test_npz_payload_is_bitwise_stable(self, tmp_path, bursty_trace):
        first = ArrivalTrace.load(bursty_trace.save(tmp_path / "a.npz"))
        second = ArrivalTrace.load(first.save(tmp_path / "b.npz"))
        assert second == bursty_trace
        assert second.arrival_times.tobytes() == bursty_trace.arrival_times.tobytes()

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_timestamp_only_round_trip(self, tmp_path, fmt):
        trace = ArrivalTrace([0.1, 0.7, 1.0 / 3.0 + 1.0], meta={"k": "v"})
        assert ArrivalTrace.load(trace.save(tmp_path / f"t.{fmt}")) == trace

    def test_unknown_suffix_rejected(self, tmp_path, bursty_trace):
        with pytest.raises(TraceError):
            bursty_trace.save(tmp_path / "trace.parquet")
        with pytest.raises(TraceError):
            ArrivalTrace.load(tmp_path / "missing.csv")

    def test_corrupt_files_rejected(self, tmp_path):
        bad_csv = tmp_path / "bad.csv"
        bad_csv.write_text("arrival_time\n1.0\n")
        with pytest.raises(TraceError):
            ArrivalTrace.load(bad_csv)
        bad_jsonl = tmp_path / "bad.jsonl"
        bad_jsonl.write_text('{"type": "something-else"}\n')
        with pytest.raises(TraceError):
            ArrivalTrace.load(bad_jsonl)

    def test_malformed_rows_raise_trace_error_not_value_error(self, tmp_path):
        # Corrupt values must surface as TraceError so the engine layer can
        # convert them into one consistent SpecError.
        bad_row = tmp_path / "row.csv"
        bad_row.write_text("# repro-trace v1\narrival_time\n1.2.3\n")
        with pytest.raises(TraceError):
            ArrivalTrace.load(bad_row)
        bad_meta = tmp_path / "meta.csv"
        bad_meta.write_text("# repro-trace v1\n# meta {broken\narrival_time\n1.0\n")
        with pytest.raises(TraceError):
            ArrivalTrace.load(bad_meta)
        missing_key = tmp_path / "row.jsonl"
        missing_key.write_text(
            '{"type": "repro-trace", "version": 1, "num_arrivals": 1, '
            '"has_sizes": false, "meta": {}}\n{"time": 1.0}\n'
        )
        with pytest.raises(TraceError):
            ArrivalTrace.load(missing_key)
        not_npz = tmp_path / "bad.npz"
        not_npz.write_bytes(b"this is not a zip archive")
        with pytest.raises(TraceError):
            ArrivalTrace.load(not_npz)

    def test_load_cached_shares_one_instance_and_tracks_rewrites(self, tmp_path, bursty_trace):
        path = bursty_trace.save(tmp_path / "cache.npz")
        first = ArrivalTrace.load_cached(path)
        assert ArrivalTrace.load_cached(path) is first
        # Rewriting the file (different content => different size/mtime)
        # invalidates the memo entry.
        bursty_trace.head(100).save(path)
        reread = ArrivalTrace.load_cached(path)
        assert reread is not first
        assert reread.num_arrivals == 100
        with pytest.raises(TraceError):
            ArrivalTrace.load_cached(tmp_path / "missing.npz")

    def test_jsonl_header_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "short.jsonl"
        path.write_text(
            '{"type": "repro-trace", "version": 1, "num_arrivals": 3, '
            '"has_sizes": false, "meta": {}}\n{"t": 1.0}\n'
        )
        with pytest.raises(TraceError):
            ArrivalTrace.load(path)


class TestEquality:
    def test_meta_participates(self):
        a = ArrivalTrace([0.0, 1.0], meta={"x": "1"})
        b = ArrivalTrace([0.0, 1.0], meta={"x": "2"})
        assert a != b

    def test_sizes_participate(self):
        a = ArrivalTrace([0.0, 1.0], job_sizes=[1.0, 1.0])
        b = ArrivalTrace([0.0, 1.0])
        assert a != b
        assert a == ArrivalTrace([0.0, 1.0], job_sizes=[1.0, 1.0])
