"""Unit tests for the fault-injection framework and its supporting layers.

Covers the deterministic plan machinery (:mod:`repro.faults.plan`), the
hook plumbing (:mod:`repro.faults.hooks`), seeded-backoff retries
(:mod:`repro.utils.retry`), the shared atomic-write helper
(:mod:`repro.api.serialize`), poison-task quarantine at the queue level,
and the ordered accumulator's hole-skipping.  End-to-end chaos matrices
live in ``test_faults_chaos.py``.
"""

import json
import os

import pytest

from repro import faults
from repro.campaigns.accumulators import PointAccumulator
from repro.campaigns.queue import QueueError, TaskQueue
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedIOError,
    clear,
    install,
    maybe_fire,
)
from repro.utils.retry import RetryExhaustedError, RetryPolicy, retry_call


@pytest.fixture(autouse=True)
def _disarm_faults():
    """Every test leaves the process with fault injection disarmed."""
    yield
    clear()


# --------------------------------------------------------------------- #
# FaultSpec / FaultPlan
# --------------------------------------------------------------------- #
class TestFaultSpec:
    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="nope.nope", kind="crash")
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="journal.append", kind="explode")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="journal.append", kind="io_error", probability=1.5)
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="journal.append", kind="io_error", times=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(site="worker.task", kind="hang", seconds=-1.0)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            site="worker.task", kind="hang", probability=0.25,
            match="#0", times=None, seconds=2.5,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42,
            faults=[
                FaultSpec(site="journal.append", kind="io_error", times=2),
                FaultSpec(site="worker.task", kind="crash", match="#0"),
            ],
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed and clone.faults == plan.faults
        # And the JSON is env-var friendly: one line, no spaces.
        assert "\n" not in plan.to_json()

    def test_firing_decisions_are_deterministic(self):
        def decisions():
            plan = FaultPlan(
                seed=7,
                faults=[FaultSpec(site="records.append", kind="io_error",
                                  probability=0.5, times=None)],
            )
            return [
                plan.select("records.append", f"p:{i % 3}") is not None
                for i in range(60)
            ]

        first, second = decisions(), decisions()
        assert first == second  # pure function of (seed, site, key, occurrence)
        assert any(first) and not all(first)  # the coin actually flips

    def test_match_filters_on_key_substring(self):
        plan = FaultPlan(faults=[
            FaultSpec(site="worker.task", kind="crash", match="#0", times=None)
        ])
        assert plan.select("worker.task", "abc:1#0") is not None
        assert plan.select("worker.task", "abc:1#1") is None
        assert plan.select("journal.append", "abc:1#0") is None  # wrong site

    def test_times_budget_is_per_key(self):
        plan = FaultPlan(faults=[
            FaultSpec(site="journal.append", kind="io_error", times=2)
        ])
        assert plan.select("journal.append", "a") is not None
        assert plan.select("journal.append", "a") is not None
        assert plan.select("journal.append", "a") is None  # budget spent for "a"
        assert plan.select("journal.append", "b") is not None  # fresh key

    def test_first_matching_spec_wins(self):
        crash = FaultSpec(site="worker.task", kind="crash", times=None)
        hang = FaultSpec(site="worker.task", kind="hang", times=None, seconds=1.0)
        plan = FaultPlan(faults=[crash, hang])
        assert plan.select("worker.task", "t") is crash

    def test_fire_counts_totals_by_site(self):
        plan = FaultPlan(faults=[
            FaultSpec(site="journal.append", kind="io_error", times=None)
        ])
        for key in ("a", "b", "a"):
            plan.select("journal.append", key)
        assert plan.fire_counts() == {"journal.append": 3}


# --------------------------------------------------------------------- #
# Hook plumbing
# --------------------------------------------------------------------- #
class TestHooks:
    def test_disabled_hook_is_a_noop(self):
        clear()
        assert maybe_fire("journal.append", key="anything") is False

    def test_io_error_is_a_retryable_oserror(self):
        install(FaultPlan(faults=[
            FaultSpec(site="journal.append", kind="io_error")
        ]))
        with pytest.raises(InjectedIOError) as excinfo:
            maybe_fire("journal.append", key="t")
        assert isinstance(excinfo.value, OSError)
        # times=1 budget spent: the next occurrence passes clean.
        assert maybe_fire("journal.append", key="t") is False

    def test_drop_returns_true_and_acts_nowhere_else(self):
        install(FaultPlan(faults=[
            FaultSpec(site="scheduler.heartbeat", kind="drop")
        ]))
        assert maybe_fire("scheduler.heartbeat", key="w0") is True
        assert maybe_fire("scheduler.heartbeat", key="w0") is False

    def test_torn_write_flushes_half_a_line_then_dies(self, tmp_path):
        install(FaultPlan(faults=[
            FaultSpec(site="records.append", kind="torn_write")
        ]))
        target = tmp_path / "records.jsonl"
        line = json.dumps({"replication": 0, "mean_delay": 2.0}) + "\n"
        with target.open("a", encoding="utf-8") as handle:
            with pytest.raises(InjectedCrash):
                maybe_fire("records.append", key="p:0", handle=handle, line=line)
        tail = target.read_text(encoding="utf-8")
        assert 0 < len(tail) < len(line)  # a genuine torn artifact
        assert tail == line[: len(tail)]

    def test_env_transport_round_trip(self, monkeypatch):
        plan = FaultPlan(seed=3, faults=[
            FaultSpec(site="manifest.write", kind="io_error")
        ])
        monkeypatch.setenv(faults.hooks.ENV_PLAN, plan.to_json())
        loaded = faults.installed_from_env()
        assert loaded is not None and loaded.seed == 3
        with pytest.raises(InjectedIOError):
            maybe_fire("manifest.write", key="digest")

    def test_explicit_install_outranks_environment(self, monkeypatch):
        monkeypatch.setenv(
            faults.hooks.ENV_PLAN,
            FaultPlan(faults=[FaultSpec(site="journal.append", kind="io_error")]).to_json(),
        )
        install(FaultPlan())  # an empty explicit plan: nothing fires
        assert maybe_fire("journal.append", key="t") is False

    def test_unparsable_env_plan_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(faults.hooks.ENV_PLAN, "{not json")
        with pytest.raises(faults.FaultError, match="unparsable"):
            faults.installed_from_env()


# --------------------------------------------------------------------- #
# Seeded-backoff retries
# --------------------------------------------------------------------- #
class TestRetry:
    def test_first_try_success_never_sleeps(self):
        sleeps = []
        assert retry_call(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failures_are_absorbed(self):
        policy = RetryPolicy(attempts=4, seed=9)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise InjectedIOError("disk hiccup")
            return "ok"

        sleeps = []
        assert retry_call(flaky, policy=policy, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert tuple(sleeps) == policy.delays()[:2]  # the seeded schedule

    def test_exhaustion_raises_with_cause(self):
        policy = RetryPolicy(attempts=3)

        def doomed():
            raise InjectedIOError("never recovers")

        with pytest.raises(RetryExhaustedError, match="journal append") as excinfo:
            retry_call(doomed, policy=policy, describe="journal append",
                       sleep=lambda _: None)
        assert isinstance(excinfo.value.__cause__, InjectedIOError)

    def test_non_retryable_errors_pass_straight_through(self):
        calls = {"n": 0}

        def torn():
            calls["n"] += 1
            raise InjectedCrash("torn write")

        with pytest.raises(InjectedCrash):
            retry_call(torn, sleep=lambda _: None)
        assert calls["n"] == 1  # retrying a torn write would corrupt the file

    def test_delay_schedule_is_seeded_and_capped(self):
        policy = RetryPolicy(attempts=6, base_delay=0.01, factor=10.0,
                             max_delay=0.2, jitter=0.5, seed=4)
        first, second = policy.delays(), policy.delays()
        assert first == second
        assert len(first) == 5
        assert all(delay <= 0.2 for delay in first)
        assert all(delay >= 0.2 * 0.5 for delay in first[2:])  # capped, jittered

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


# --------------------------------------------------------------------- #
# Atomic writes
# --------------------------------------------------------------------- #
class TestAtomicWrites:
    def test_atomic_write_json_round_trip(self, tmp_path):
        from repro.api.serialize import atomic_write_json

        target = tmp_path / "deep" / "manifest.json"
        payload = {"grid_digest": "abc", "lease_seconds": 300.0}
        assert atomic_write_json(target, payload) == target
        assert json.loads(target.read_text(encoding="utf-8")) == payload
        # No scratch file left behind: the rename consumed it.
        assert [p.name for p in target.parent.iterdir()] == ["manifest.json"]

    def test_atomic_write_replaces_existing_content(self, tmp_path):
        from repro.api.serialize import atomic_write_text

        target = tmp_path / "config.json"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text(encoding="utf-8") == "new"

    def test_write_json_routes_through_atomic_helper(self, tmp_path):
        from repro.api.serialize import write_json

        target = tmp_path / "result.json"
        write_json(target, {"mean_delay": 2.0})
        assert json.loads(target.read_text(encoding="utf-8")) == {"mean_delay": 2.0}
        assert not list(tmp_path.glob("*.tmp"))

    def test_manifest_write_is_atomic_under_injected_crash(self, tmp_path):
        """A fault at the manifest hook must leave either no manifest or a
        complete one — never a half-written file."""
        from repro.campaigns.manifest import CampaignManifest

        install(FaultPlan(faults=[
            FaultSpec(site="manifest.write", kind="io_error")
        ]))
        manifest = CampaignManifest(grid={}, grid_digest="x")
        with pytest.raises(InjectedIOError):
            manifest.write(tmp_path)
        assert not (tmp_path / "manifest.json").exists()
        clear()
        manifest.write(tmp_path)
        assert json.loads((tmp_path / "manifest.json").read_text())["grid_digest"] == "x"


# --------------------------------------------------------------------- #
# Poison-task quarantine (queue level)
# --------------------------------------------------------------------- #
class TestQueueQuarantine:
    def test_quarantine_removes_from_circulation(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a", "b", "c"])
            assert queue.lease("w0", 60.0) == "a"
            queue.quarantine("a")
            assert queue.is_quarantined("a")
            assert queue.quarantined_ids() == {"a"}
            assert queue.outstanding == 2  # quarantined tasks are owed nothing
            assert queue.lease("w0", 60.0) == "b"  # never re-leased
            queue.quarantine("a")  # idempotent
            assert queue.counts()["quarantined"] == 1

    def test_quarantine_survives_replay_and_reenqueue(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with TaskQueue(journal) as queue:
            queue.enqueue(["a", "b"])
            queue.lease("w0", 60.0)
            queue.quarantine("a")
        with TaskQueue(journal) as queue:
            assert queue.is_quarantined("a")
            assert queue.enqueue(["a", "b"]) == 0  # known ids: never resurrected
            assert queue.lease("w1", 60.0) == "b"
            assert queue.lease("w1", 60.0) is None

    def test_late_completion_wins_over_quarantine(self, tmp_path):
        """A completion racing a quarantine proves the task was not poison:
        done wins, on line and on replay, and the sets stay disjoint."""
        journal = tmp_path / "j.jsonl"
        with TaskQueue(journal) as queue:
            queue.enqueue(["a"])
            queue.lease("w0", 60.0)
            queue.quarantine("a")
            queue.complete("a")
            assert queue.is_done("a") and not queue.is_quarantined("a")
            counts = queue.counts()
            assert counts["done"] == 1 and counts["quarantined"] == 0
        with TaskQueue(journal) as queue:
            assert queue.is_done("a") and not queue.is_quarantined("a")

    def test_quarantine_of_unknown_or_done_task_raises(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a"])
            with pytest.raises(QueueError, match="unknown"):
                queue.quarantine("ghost")
            queue.lease("w0", 60.0)
            queue.complete("a")
            with pytest.raises(QueueError, match="completed"):
                queue.quarantine("a")


# --------------------------------------------------------------------- #
# Ordered accumulator: skipping permanent holes
# --------------------------------------------------------------------- #
class TestAccumulatorSkip:
    def test_skip_unblocks_the_ordered_fold(self):
        accumulator = PointAccumulator()
        accumulator.add(0, {"mean_delay": 2.0})
        accumulator.add(2, {"mean_delay": 2.2})  # buffered behind the hole
        assert accumulator.count == 1 and accumulator.buffered == 1
        assert accumulator.skip(1) is True
        assert accumulator.count == 2  # 0 and 2 folded; the hole contributes nothing
        assert accumulator.buffered == 0
        assert accumulator.statistics("mean_delay").count == 2

    def test_skip_is_idempotent_and_rejects_folded_indices(self):
        accumulator = PointAccumulator()
        accumulator.add(0, {"mean_delay": 2.0})
        assert accumulator.skip(0) is False  # already folded
        assert accumulator.skip(1) is True
        assert accumulator.skip(1) is False  # already advanced past

    def test_record_for_a_skipped_slot_is_ignored(self):
        accumulator = PointAccumulator()
        accumulator.skip(0)
        assert accumulator.add(0, {"mean_delay": 9.9}) is False
        accumulator.add(1, {"mean_delay": 2.0})
        assert accumulator.count == 1
        assert accumulator.statistics("mean_delay").mean == pytest.approx(2.0)
