"""Tests for repro.linalg.blocks."""

import numpy as np
import pytest

from repro.linalg.blocks import assemble_block_matrix, geometric_block_sum, spectral_radius


class TestAssembleBlockMatrix:
    def test_two_by_two_assembly(self):
        A = np.ones((2, 2))
        B = 2 * np.ones((2, 3))
        C = 3 * np.ones((1, 2))
        D = 4 * np.ones((1, 3))
        result = assemble_block_matrix([[A, B], [C, D]])
        assert result.shape == (3, 5)
        assert np.all(result[:2, :2] == 1)
        assert np.all(result[:2, 2:] == 2)
        assert np.all(result[2:, :2] == 3)
        assert np.all(result[2:, 2:] == 4)

    def test_none_blocks_become_zeros(self):
        A = np.ones((2, 2))
        result = assemble_block_matrix([[A, None], [None, A]])
        assert result.shape == (4, 4)
        assert np.all(result[:2, 2:] == 0)
        assert np.all(result[2:, :2] == 0)

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ValueError):
            assemble_block_matrix([[np.ones((2, 2)), np.ones((3, 2))]])

    def test_uninferrable_all_none_column_rejected(self):
        with pytest.raises(ValueError):
            assemble_block_matrix([[None, np.ones((2, 2))], [None, np.ones((2, 2))]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            assemble_block_matrix([[np.eye(2), np.eye(2)], [np.eye(2)]])


class TestSpectralRadius:
    def test_diagonal_matrix(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_empty_matrix(self):
        assert spectral_radius(np.zeros((0, 0))) == 0.0

    def test_rotation_matrix(self):
        theta = 0.3
        rotation = np.array([[np.cos(theta), -np.sin(theta)], [np.sin(theta), np.cos(theta)]])
        assert spectral_radius(rotation) == pytest.approx(1.0)


class TestGeometricBlockSum:
    def test_matches_series(self):
        R = np.array([[0.2, 0.1], [0.0, 0.3]])
        closed_form = geometric_block_sum(R)
        series = sum(np.linalg.matrix_power(R, k) for k in range(200))
        assert np.allclose(closed_form, series, atol=1e-10)

    def test_applies_to_vector(self):
        R = 0.5 * np.eye(2)
        result = geometric_block_sum(R, np.ones(2))
        assert np.allclose(result, 2.0)

    def test_divergent_radius_rejected(self):
        with pytest.raises(ValueError):
            geometric_block_sum(np.eye(2))
