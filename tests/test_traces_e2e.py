"""End-to-end cross-validation of the traces subsystem (acceptance tests).

The loop the whole PR exists for: a bursty synthetic trace is fitted to an
MMPP2, the fitted spec runs through the cluster backend via ``repro.run``
as a replicated ensemble, the raw trace is replayed through the *same*
backend, and the replayed mean delay must land inside the fitted model's
confidence interval — measurement and model agree through every layer.
Plus the CLI contract: ``repro-lb trace fit`` emits a spec JSON that
``repro-lb run --spec`` accepts unchanged.
"""

import json
from dataclasses import replace

import pytest

from repro import run
from repro.api.spec import DistributionSpec, ExperimentSpec, WorkloadSpec
from repro.cli import main
from repro.ensemble.grid import GridConfig, run_grid
from repro.markov.arrival_processes import MarkovianArrivalProcess
from repro.traces import fit_mmpp2, summarize_trace, synthesize_trace

N, D, RHO = 50, 2, 0.85


@pytest.fixture(scope="module")
def bursty_trace_file(tmp_path_factory):
    truth = MarkovianArrivalProcess.mmpp2(
        rate_high=3.0, rate_low=0.4, switch_to_low=0.05, switch_to_high=0.04
    ).rescaled(RHO * N)
    trace = synthesize_trace(truth, 60_000, seed=20160627)
    return trace.save(tmp_path_factory.mktemp("traces") / "bursty.npz"), trace


class TestFitReplayCrossValidation:
    def test_replayed_delay_inside_fitted_model_ci(self, bursty_trace_file):
        path, trace = bursty_trace_file
        fit = fit_mmpp2(summarize_trace(trace))
        assert fit.converged, fit.as_table()

        spec = fit.experiment_spec(num_servers=N, d=D, num_jobs=20_000, seed=414)
        fitted = run(spec, backend="cluster", replications=6)
        low, high = fitted.confidence_interval()
        assert low < high

        replay_spec = replace(
            spec,
            workload=WorkloadSpec(
                arrival=DistributionSpec("trace", {"path": str(path)})
            ),
        )
        replayed = run(replay_spec, backend="cluster")
        assert replayed.backend == "cluster"
        assert low <= replayed.mean_delay <= high, (
            f"replayed delay {replayed.mean_delay:.4f} outside the fitted model's "
            f"{fitted.confidence:.0%} CI [{low:.4f}, {high:.4f}]"
        )

    def test_auto_backend_routes_trace_workloads_to_cluster(self, bursty_trace_file):
        path, trace = bursty_trace_file
        spec = ExperimentSpec.create(
            num_servers=N,
            d=D,
            utilization=RHO,
            arrival="trace",
            arrival_params={"path": str(path)},
            num_jobs=2_000,
            seed=7,
        )
        result = run(spec)  # backend="auto"
        assert result.backend == "cluster"

    def test_replay_is_deterministic_across_runs(self, bursty_trace_file):
        path, _ = bursty_trace_file
        spec = ExperimentSpec.create(
            num_servers=N,
            d=D,
            utilization=RHO,
            arrival="trace",
            arrival_params={"path": str(path)},
            num_jobs=2_000,
            seed=9,
        )
        first = run(spec, backend="cluster")
        second = run(spec, backend="cluster")
        assert first.mean_delay == second.mean_delay


class TestCLISpecContract:
    def test_trace_fit_spec_runs_unchanged(self, bursty_trace_file, tmp_path, capsys):
        path, _ = bursty_trace_file
        spec_path = tmp_path / "fitted_spec.json"
        exit_code = main(
            [
                "trace", "fit",
                "--trace", str(path),
                "--family", "mmpp2",
                "--servers", str(N),
                "--choices", str(D),
                "--jobs", "3000",
                "--spec-out", str(spec_path),
            ]
        )
        assert exit_code == 0
        assert spec_path.exists()
        emitted = spec_path.read_text(encoding="utf-8")

        # The emitted file is a valid canonical spec ...
        spec = ExperimentSpec.from_json(emitted)
        assert spec.workload.arrival.name == "mmpp2"
        assert spec.system.num_servers == N

        # ... and `repro-lb run --spec` accepts it byte-for-byte unchanged.
        exit_code = main(["run", "--spec", str(spec_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mean delay" in output
        assert "cluster" in output

    def test_trace_stats_and_run_commands(self, bursty_trace_file, capsys):
        path, _ = bursty_trace_file
        assert main(["trace", "stats", "--trace", str(path)]) == 0
        stats_out = capsys.readouterr().out
        assert "interarrival SCV" in stats_out

        assert main(
            ["trace", "run", "--trace", str(path), "-N", str(N), "--jobs", "2000"]
        ) == 0
        run_out = capsys.readouterr().out
        assert "mean delay" in run_out

    def test_trace_run_rejects_an_overloaded_pool(self, bursty_trace_file, capsys):
        path, _ = bursty_trace_file
        with pytest.raises(SystemExit, match="rho"):
            main(["trace", "run", "--trace", str(path), "-N", "10", "--jobs", "1000"])

    def test_corrupt_trace_file_is_a_spec_error_not_a_crash(self, tmp_path):
        corrupt = tmp_path / "corrupt.csv"
        corrupt.write_text("# repro-trace v1\narrival_time\n1.2.3\n")
        spec = ExperimentSpec.create(
            num_servers=4,
            utilization=0.5,
            arrival="trace",
            arrival_params={"path": str(corrupt)},
            num_jobs=100,
        )
        from repro.api.spec import SpecError

        with pytest.raises(SpecError, match="trace"):
            run(spec, backend="cluster")

    def test_analyze_invalid_shape_param_exits_cleanly(self, capsys):
        # stages=0 passes spec validation but fails at process construction;
        # the CLI must exit with its one-line message, not a traceback.
        with pytest.raises(SystemExit, match="stages"):
            main(
                [
                    "analyze", "-N", "4", "-u", "0.8",
                    "--arrival", "erlang", "--arrival-param", "stages=0",
                ]
            )

    def test_trace_fit_json_diagnostics(self, bursty_trace_file, tmp_path, capsys):
        path, _ = bursty_trace_file
        json_path = tmp_path / "fit.json"
        assert main(
            [
                "trace", "fit",
                "--trace", str(path),
                "--servers", str(N),
                "--json", str(json_path),
            ]
        ) == 0
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["family"] == "mmpp2"
        assert payload["converged"] is True
        assert payload["spec"]["workload"]["arrival"]["name"] == "mmpp2"


class TestGridWorkloadAxis:
    def test_fitted_workloads_sweep_against_the_poisson_baseline(self, bursty_trace_file):
        _, trace = bursty_trace_file
        fit = fit_mmpp2(summarize_trace(trace))
        config = GridConfig(
            server_counts=(20,),
            choices=(2,),
            utilizations=(0.8,),
            workloads=(WorkloadSpec(), WorkloadSpec(arrival=fit.arrival)),
            num_events=20_000,
            num_jobs=2_000,
            replications=2,
            bounds=True,
            threshold=2,
            seed=11,
        )
        result = run_grid(config)
        assert len(result.points) == 2
        labels = [point.labels["workload"] for point in result.points]
        assert labels[0] == "poisson"
        assert labels[1].startswith("mmpp2#")
        # The Poisson baseline gets the QBD bracket; the fitted workload
        # (a different arrival law) must not be annotated with it.
        assert result.points[0].bounds is not None
        assert result.points[1].bounds is None
        # Bursty input at equal load queues more on average.
        records = result.records()
        assert records[1]["mean_delay"] > records[0]["mean_delay"]

    def test_workload_labels_feed_stable_seeds(self, bursty_trace_file):
        _, trace = bursty_trace_file
        fit = fit_mmpp2(summarize_trace(trace))
        base = dict(
            server_counts=(10,),
            choices=(2,),
            utilizations=(0.7,),
            num_jobs=500,
            num_events=5_000,
            replications=1,
            seed=3,
        )
        both = run_grid(
            GridConfig(workloads=(WorkloadSpec(), WorkloadSpec(arrival=fit.arrival)), **base)
        )
        only_fitted = run_grid(
            GridConfig(workloads=(WorkloadSpec(arrival=fit.arrival),), **base)
        )
        assert (
            both.points[1].ensemble.records[0]["mean_delay"]
            == only_fitted.points[0].ensemble.records[0]["mean_delay"]
        )
