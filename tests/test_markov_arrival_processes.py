"""Tests for arrival processes, the beta_k coefficients and the sigma root."""

import numpy as np
import pytest

from repro.markov.arrival_processes import (
    MarkovianArrivalProcess,
    PoissonArrivals,
    RenewalArrivals,
    beta_coefficients,
    solve_sigma,
)
from repro.markov.service_distributions import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
)
from repro.utils.validation import ValidationError


class TestPoissonArrivals:
    def test_rate_and_mean(self):
        process = PoissonArrivals(2.5)
        assert process.rate == 2.5
        assert process.mean_interarrival_time() == pytest.approx(0.4)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValidationError):
            PoissonArrivals(0.0)

    def test_sample_mean_matches_rate(self, rng):
        process = PoissonArrivals(4.0)
        samples = process.sample_interarrival_times(rng, 20000)
        assert samples.mean() == pytest.approx(0.25, rel=0.05)

    def test_lst_closed_form(self):
        process = PoissonArrivals(2.0)
        assert process.interarrival_lst(3.0) == pytest.approx(2.0 / 5.0)


class TestRenewalArrivals:
    def test_rate_from_distribution_mean(self):
        process = RenewalArrivals(ErlangService(stages=2, mean=0.5))
        assert process.rate == pytest.approx(2.0)

    def test_lst_delegates_to_distribution(self):
        erlang = ErlangService(stages=2, mean=1.0)
        process = RenewalArrivals(erlang)
        assert process.interarrival_lst(1.0) == pytest.approx(erlang.lst(1.0))

    def test_sampling_uses_distribution(self, rng):
        process = RenewalArrivals(DeterministicService(0.25))
        samples = process.sample_interarrival_times(rng, 10)
        assert np.allclose(samples, 0.25)


class TestBetaCoefficients:
    def test_poisson_closed_form(self):
        # beta_k = rho / (1 + rho)^{k+1} — the paper's Eq. (21) rewritten.
        process = PoissonArrivals(0.8)
        coefficients = beta_coefficients(process, service_rate=1.0, max_k=6)
        rho = 0.8
        expected = [rho / (1 + rho) ** (k + 1) for k in range(7)]
        assert np.allclose(coefficients, expected)

    def test_poisson_coefficients_sum_to_one(self):
        process = PoissonArrivals(0.5)
        coefficients = beta_coefficients(process, service_rate=1.0, max_k=200)
        assert sum(coefficients) == pytest.approx(1.0, abs=1e-8)

    def test_erlang_interarrivals_by_quadrature(self):
        # For Erlang(2) interarrivals the beta_k have a negative-binomial form;
        # check the numerically integrated values against that closed form.
        mean_interarrival = 1.25
        process = RenewalArrivals(ErlangService(stages=2, mean=mean_interarrival))
        mu = 1.0
        coefficients = beta_coefficients(process, service_rate=mu, max_k=5)
        stage_rate = 2 / mean_interarrival
        p = stage_rate / (stage_rate + mu)  # success = stage completes before service event
        from math import comb

        expected = [comb(k + 1, 1) * (p ** 2) * ((1 - p) ** k) for k in range(6)]
        assert np.allclose(coefficients, expected, atol=1e-8)

    def test_deterministic_interarrivals_are_poisson_probabilities(self):
        process = RenewalArrivals(DeterministicService(2.0))
        coefficients = beta_coefficients(process, service_rate=1.5, max_k=4)
        from scipy.stats import poisson

        expected = poisson.pmf(range(5), 3.0)
        assert np.allclose(coefficients, expected, atol=1e-10)

    def test_invalid_max_k_rejected(self):
        with pytest.raises(ValidationError):
            beta_coefficients(PoissonArrivals(1.0), 1.0, -1)


class TestSolveSigma:
    def test_poisson_sigma_equals_rho(self):
        # Theorem 3: for Poisson arrivals the root is the traffic intensity.
        assert solve_sigma(PoissonArrivals(0.7), service_rate=1.0) == pytest.approx(0.7)

    def test_sigma_solves_fixed_point_for_erlang(self):
        process = RenewalArrivals(ErlangService(stages=3, mean=2.0))
        mu = 1.0
        sigma = solve_sigma(process, service_rate=mu)
        assert 0 < sigma < 1
        assert process.interarrival_lst(mu * (1 - sigma)) == pytest.approx(sigma, abs=1e-9)

    def test_sigma_smaller_for_smoother_arrivals(self):
        # At equal rates, more regular (Erlang) arrivals yield a smaller sigma
        # (shorter queues) than Poisson, and bursty hyperexponential arrivals a
        # larger one — the classical GI/M/1 ordering.
        rate = 0.8
        poisson_sigma = solve_sigma(PoissonArrivals(rate), 1.0)
        erlang_sigma = solve_sigma(RenewalArrivals(ErlangService(stages=4, mean=1 / rate)), 1.0)
        bursty = RenewalArrivals(HyperexponentialService.balanced_two_phase(mean=1 / rate, scv=5.0))
        bursty_sigma = solve_sigma(bursty, 1.0)
        assert erlang_sigma < poisson_sigma < bursty_sigma

    def test_unstable_input_rejected(self):
        with pytest.raises(ValidationError):
            solve_sigma(PoissonArrivals(1.5), service_rate=1.0)


class TestMarkovianArrivalProcess:
    def test_poisson_as_one_phase_map(self):
        process = MarkovianArrivalProcess([[-2.0]], [[2.0]])
        assert process.rate == pytest.approx(2.0)
        assert process.is_renewal()

    def test_mmpp2_rate_is_phase_weighted(self):
        process = MarkovianArrivalProcess.mmpp2(rate_high=3.0, rate_low=0.5, switch_to_low=1.0, switch_to_high=1.0)
        assert process.num_phases == 2
        assert 0.5 < process.rate < 3.0
        assert process.rate == pytest.approx(1.75, rel=1e-6)

    def test_invalid_generator_rejected(self):
        with pytest.raises(ValidationError):
            MarkovianArrivalProcess([[-1.0]], [[2.0]])  # rows of D0+D1 must sum to zero

    def test_sample_mean_matches_rate(self, rng):
        process = MarkovianArrivalProcess.mmpp2(rate_high=3.0, rate_low=1.0, switch_to_low=0.5, switch_to_high=0.5)
        samples = process.sample_interarrival_times(rng, 4000)
        assert samples.mean() == pytest.approx(1.0 / process.rate, rel=0.1)
