"""Tests for the threshold-restricted state space and its QBD partition."""

import pytest

from repro.core.state import imbalance, shift_state, total_jobs
from repro.core.state_space import (
    boundary_job_limit,
    boundary_states,
    build_partition,
    enumerate_restricted_states,
    first_repeating_block,
    membership_checker,
    repeating_block,
    repeating_block_size,
)
from repro.utils.combinatorics import binomial


class TestBoundaryStates:
    def test_boundary_limit(self):
        assert boundary_job_limit(3, 2) == 4
        assert boundary_job_limit(12, 3) == 33

    def test_all_boundary_states_satisfy_constraints(self):
        for n, t in [(2, 1), (3, 2), (4, 3)]:
            for state in boundary_states(n, t):
                assert len(state) == n
                assert imbalance(state) <= t
                assert total_jobs(state) <= boundary_job_limit(n, t)
                assert all(state[i] >= state[i + 1] for i in range(n - 1))

    def test_empty_state_and_full_corner_present(self):
        states = boundary_states(3, 2)
        assert (0, 0, 0) in states
        assert (2, 2, 0) in states  # the (T, ..., T, 0) corner state
        assert (3, 2, 1) not in states  # 6 jobs > (N-1)T = 4

    def test_states_with_idle_server_are_all_in_boundary(self):
        # Every state with mN = 0 has #m <= (N-1)T, hence is a boundary state.
        n, t = 4, 2
        states = set(boundary_states(n, t))
        for state in enumerate_restricted_states(n, t, boundary_job_limit(n, t) + n):
            if state[-1] == 0:
                assert state in states

    def test_sorted_by_total_then_lexicographic(self):
        states = boundary_states(3, 2)
        keys = [(total_jobs(s), s) for s in states]
        assert keys == sorted(keys)

    def test_no_duplicates(self):
        states = boundary_states(4, 2)
        assert len(states) == len(set(states))


class TestRepeatingBlocks:
    def test_block_size_formula(self):
        for n, t in [(2, 1), (3, 2), (3, 3), (6, 3), (12, 3)]:
            assert repeating_block_size(n, t) == binomial(n + t - 1, t)
            assert len(first_repeating_block(n, t)) == repeating_block_size(n, t)

    def test_block0_totals_lie_in_window(self):
        n, t = 3, 2
        limit = boundary_job_limit(n, t)
        for state in first_repeating_block(n, t):
            assert limit < total_jobs(state) <= limit + n
            assert state[-1] >= 1  # all servers busy above the boundary

    def test_blocks_are_shifts_of_block0(self):
        n, t = 3, 2
        block0 = first_repeating_block(n, t)
        block2 = repeating_block(n, t, 2)
        assert block2 == [shift_state(s, 2) for s in block0]

    def test_block_states_satisfy_imbalance_constraint(self):
        for state in first_repeating_block(4, 3):
            assert imbalance(state) <= 3

    def test_blocks_partition_totals(self):
        # Union of boundary and the first two blocks covers every restricted
        # state with at most (N-1)T + 2N jobs, with no overlaps.
        n, t = 3, 2
        limit = boundary_job_limit(n, t)
        universe = set(enumerate_restricted_states(n, t, limit + 2 * n))
        covered = set(boundary_states(n, t)) | set(first_repeating_block(n, t)) | set(repeating_block(n, t, 1))
        assert covered == universe
        assert len(covered) == len(boundary_states(n, t)) + 2 * repeating_block_size(n, t)


class TestPartition:
    def test_partition_shapes(self):
        partition = build_partition(3, 2)
        assert partition.boundary_size == len(boundary_states(3, 2))
        assert partition.block_size == repeating_block_size(3, 2)
        assert len(partition.block1) == partition.block_size
        assert len(partition.block2) == partition.block_size

    def test_classify_locates_states(self):
        partition = build_partition(3, 2)
        name, index = partition.classify((0, 0, 0))
        assert name == "boundary"
        name, _ = partition.classify(partition.block1[0])
        assert name == "block1"
        with pytest.raises(KeyError):
            partition.classify((50, 50, 50))

    def test_index_maps_are_consistent(self):
        partition = build_partition(3, 2)
        boundary_index = partition.boundary_index()
        for i, state in enumerate(partition.boundary):
            assert boundary_index[state] == i

    def test_membership_checker(self):
        contains = membership_checker(3, 2)
        assert contains((2, 1, 0))
        assert not contains((3, 1, 0))      # imbalance 3 > 2
        assert not contains((1, 2, 0))      # not ordered
        assert not contains((1, 0))         # wrong length
