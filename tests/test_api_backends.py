"""Tests for the backend registry: capabilities, auto-selection, SpecError."""

import pytest

from repro.api import (
    ExperimentSpec,
    SpecError,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    select_backend,
)
from repro.api.backends import Capabilities, require_capable
from repro.api.spec import ScenarioSpec, SystemSpec


def spec(**kwargs):
    kwargs.setdefault("num_servers", 20)
    kwargs.setdefault("utilization", 0.8)
    return ExperimentSpec.create(**kwargs)


class TestRegistry:
    def test_six_backends_registered(self):
        assert available_backends() == [
            "cluster",
            "ctmc",
            "exact",
            "fleet",
            "meanfield",
            "qbd_bounds",
        ]

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="unknown backend"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SpecError, match="already registered"):
            @register_backend("fleet")
            class Impostor:
                capabilities = Capabilities(description="", policies=("sqd",))

                def run_once(self, spec, seed):
                    return {"mean_delay": 0.0}

    def test_capabilities_table_is_complete(self):
        table = backend_capabilities()
        assert set(table) == set(available_backends())
        for capabilities in table.values():
            assert capabilities.answer in {"estimate", "exact", "bounds", "limit"}
            assert capabilities.description


class TestCapabilityGates:
    def test_exact_rejects_large_pools(self):
        with pytest.raises(SpecError, match="up to N=3"):
            require_capable("exact", spec(num_servers=50))

    def test_qbd_bounds_reject_intractable_blocks(self):
        # N=50 at the default threshold T=3 would need a C(52, 3) block.
        with pytest.raises(SpecError, match="block size"):
            require_capable("qbd_bounds", spec(num_servers=50))
        # Lowering the threshold makes the same pool tractable.
        require_capable("qbd_bounds", spec(num_servers=50, threshold=2))

    def test_qbd_bounds_reject_non_sqd_policies(self):
        with pytest.raises(SpecError, match="policy"):
            require_capable("qbd_bounds", spec(policy="jsq"))

    def test_fleet_rejects_work_aware_policies(self):
        with pytest.raises(SpecError, match="policy"):
            require_capable("fleet", spec(policy="least_work_left"))

    def test_only_cluster_runs_hyperexponential_service(self):
        bursty = spec(
            service="hyperexponential",
            service_params={"probabilities": [0.5, 0.5], "rates": [2.0, 2.0 / 3.0]},
        )
        require_capable("cluster", bursty)
        for name in ("fleet", "ctmc", "qbd_bounds", "exact", "meanfield"):
            with pytest.raises(SpecError, match="service"):
                require_capable(name, bursty)

    def test_only_fleet_plays_scenarios(self):
        playback = ExperimentSpec(
            system=SystemSpec(num_servers=100), scenario=ScenarioSpec("ramp")
        )
        require_capable("fleet", playback)
        with pytest.raises(SpecError, match="scenario"):
            require_capable("ctmc", playback)

    def test_unknown_backend_options_rejected_consistently(self):
        for name in ("fleet", "ctmc", "cluster", "meanfield"):
            with pytest.raises(SpecError, match="unknown spec options"):
                get_backend(name).run_once(
                    spec(num_servers=5, num_events=1000, typo_option=1), seed=1
                )

    def test_foreign_options_ride_along_harmlessly(self):
        # One spec, many engines: 'threshold' belongs to qbd_bounds but must
        # not stop a simulator from running the same spec.
        metrics = get_backend("fleet").run_once(
            spec(num_servers=10, num_events=2_000, threshold=2), seed=3
        )
        assert metrics["mean_delay"] > 1.0


class TestAutoSelection:
    def test_tiny_pools_go_exact(self):
        assert select_backend(spec(num_servers=3)).name == "exact"

    def test_standard_pools_go_fleet(self):
        assert select_backend(spec(num_servers=100)).name == "fleet"
        assert select_backend(spec(num_servers=500_000)).name == "fleet"

    def test_non_default_workloads_go_cluster(self):
        chosen = select_backend(spec(service="deterministic"))
        assert chosen.name == "cluster"

    def test_work_aware_policies_go_cluster(self):
        assert select_backend(spec(policy="least_work_left")).name == "cluster"

    def test_limit_and_bounds_backends_never_auto_selected(self):
        for n in (3, 100, 10_000):
            assert select_backend(spec(num_servers=n)).name not in {"meanfield", "qbd_bounds"}

    def test_replicable_only_skips_deterministic_backends(self):
        assert select_backend(spec(num_servers=3), replicable_only=True).name == "fleet"

    def test_impossible_spec_explains_every_candidate(self):
        impossible = spec(policy="round_robin", service="deterministic", num_servers=50_000)
        with pytest.raises(SpecError, match="cluster"):
            select_backend(impossible)


class TestBackendAnswers:
    def test_deterministic_backends_ignore_the_seed(self):
        bounds_spec = spec(num_servers=6, threshold=2)
        a = get_backend("qbd_bounds").run_once(bounds_spec, seed=1)
        b = get_backend("qbd_bounds").run_once(bounds_spec, seed=2)
        assert a == b

    def test_bounds_bracket_and_asymptote(self):
        metrics = get_backend("qbd_bounds").run_once(spec(num_servers=6, threshold=2), seed=None)
        assert metrics["lower_delay"] == metrics["mean_delay"]
        assert metrics["lower_delay"] <= metrics["upper_delay"]
        assert metrics["asymptotic_delay"] > 1.0

    def test_meanfield_matches_closed_form(self):
        from repro.fleet.meanfield import meanfield_delay

        metrics = get_backend("meanfield").run_once(spec(num_servers=9999, d=2), seed=None)
        assert metrics["mean_delay"] == pytest.approx(meanfield_delay(0.8, 2))

    def test_meanfield_jsq_limit_is_bare_service_time(self):
        metrics = get_backend("meanfield").run_once(spec(policy="jsq"), seed=None)
        assert metrics["mean_delay"] == 1.0

    def test_stochastic_backends_report_mean_delay(self):
        fast = spec(num_servers=10, num_events=2_000, num_jobs=2_000)
        for name in ("ctmc", "cluster", "fleet"):
            metrics = get_backend(name).run_once(fast, seed=5)
            assert metrics["mean_delay"] > 1.0  # sojourn >= one service time
