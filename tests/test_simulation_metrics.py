"""Tests for simulation output analysis."""

import math

import numpy as np
import pytest

from repro.simulation.metrics import (
    TimeAverageAccumulator,
    WaitingTimeAccumulator,
    batch_means_confidence_interval,
)


class TestBatchMeans:
    def test_mean_of_constant_series(self):
        summary = batch_means_confidence_interval([2.0] * 100)
        assert summary.mean == pytest.approx(2.0)
        assert summary.half_width == pytest.approx(0.0)

    def test_interval_contains_true_mean_for_iid_normal(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(10.0, 2.0, size=20_000)
        summary = batch_means_confidence_interval(samples)
        assert summary.contains(10.0)
        assert summary.relative_half_width < 0.05

    def test_too_few_samples_still_works(self):
        summary = batch_means_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert summary.num_samples == 4
        assert 1.0 <= summary.mean <= 4.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            batch_means_confidence_interval([])

    def test_invalid_batch_count_rejected(self):
        with pytest.raises(ValueError):
            batch_means_confidence_interval([1.0, 2.0], num_batches=1)

    def test_interval_property(self):
        summary = batch_means_confidence_interval(list(range(100)))
        low, high = summary.interval
        assert low <= summary.mean <= high


class TestWaitingTimeAccumulator:
    def test_warmup_jobs_are_discarded(self):
        accumulator = WaitingTimeAccumulator(warmup_jobs=2)
        for i in range(5):
            accumulator.record(float(i), float(i) + 1.0)
        assert accumulator.recorded_jobs == 3
        assert accumulator.discarded_jobs == 2
        assert accumulator.mean_waiting_time() == pytest.approx(3.0)
        assert accumulator.mean_sojourn_time() == pytest.approx(4.0)

    def test_no_warmup(self):
        accumulator = WaitingTimeAccumulator()
        accumulator.record(1.0, 2.0)
        assert accumulator.recorded_jobs == 1
        assert accumulator.waiting_times().tolist() == [1.0]

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            WaitingTimeAccumulator(warmup_jobs=-1)

    def test_empty_accumulator_reports_nan(self):
        accumulator = WaitingTimeAccumulator()
        assert math.isnan(accumulator.mean_waiting_time())

    def test_summaries_use_recorded_samples(self):
        accumulator = WaitingTimeAccumulator()
        for i in range(200):
            accumulator.record(1.0, 2.0)
        assert accumulator.sojourn_summary().mean == pytest.approx(2.0)
        assert accumulator.waiting_summary().mean == pytest.approx(1.0)


class TestTimeAverageAccumulator:
    def test_piecewise_constant_average(self):
        acc = TimeAverageAccumulator()
        acc.observe(0.0, 1.0)
        acc.observe(1.0, 3.0)   # value 1 held for 1 time unit
        acc.observe(3.0, 0.0)   # value 3 held for 2 time units
        assert acc.average() == pytest.approx((1.0 * 1 + 3.0 * 2) / 3.0)
        assert acc.total_time == pytest.approx(3.0)

    def test_out_of_order_observations_rejected(self):
        acc = TimeAverageAccumulator()
        acc.observe(1.0, 1.0)
        with pytest.raises(ValueError):
            acc.observe(0.5, 2.0)

    def test_reset_discards_history(self):
        acc = TimeAverageAccumulator()
        acc.observe(0.0, 100.0)
        acc.observe(10.0, 1.0)
        acc.reset(10.0, 1.0)
        acc.observe(12.0, 0.0)
        assert acc.average() == pytest.approx(1.0)

    def test_no_time_reports_nan(self):
        acc = TimeAverageAccumulator()
        acc.observe(0.0, 1.0)
        assert math.isnan(acc.average())
