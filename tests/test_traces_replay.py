"""Replay and synthesis: traces as deterministic arrival processes."""

import numpy as np
import pytest

from repro.markov.arrival_processes import PoissonArrivals
from repro.markov.service_distributions import ErlangService
from repro.traces import ArrivalTrace, TraceArrivals, TraceError, synthesize_trace


@pytest.fixture
def trace() -> ArrivalTrace:
    return ArrivalTrace([0.0, 1.0, 1.5, 3.5, 4.0])


class TestTraceArrivals:
    def test_replay_is_deterministic_and_ignores_the_rng(self, trace):
        first = TraceArrivals(trace).sample_interarrival_times(np.random.default_rng(1), 4)
        second = TraceArrivals(trace).sample_interarrival_times(np.random.default_rng(999), 4)
        assert np.array_equal(first, second)
        assert np.allclose(first, [1.0, 0.5, 2.0, 0.5])

    def test_rate_is_interval_based(self, trace):
        assert TraceArrivals(trace).rate == pytest.approx(1.0)

    def test_cycling_wraps_to_the_first_gap(self, trace):
        replay = TraceArrivals(trace)
        samples = replay.sample_interarrival_times(np.random.default_rng(0), 6)
        assert np.allclose(samples, [1.0, 0.5, 2.0, 0.5, 1.0, 0.5])
        assert replay.position == 6

    def test_loop_false_raises_on_exhaustion(self, trace):
        replay = TraceArrivals(trace, loop=False)
        replay.sample_interarrival_times(np.random.default_rng(0), 4)
        with pytest.raises(TraceError):
            replay.sample_interarrival_times(np.random.default_rng(0), 1)

    def test_reset_rewinds(self, trace):
        replay = TraceArrivals(trace)
        first = replay.sample_interarrival_times(np.random.default_rng(0), 3)
        replay.reset()
        assert replay.position == 0
        assert np.array_equal(first, replay.sample_interarrival_times(np.random.default_rng(0), 3))

    def test_rescaled_replay_targets_the_requested_rate(self, trace):
        replay = TraceArrivals(trace, rate=4.0)
        assert replay.rate == pytest.approx(4.0)
        gaps = replay.sample_interarrival_times(np.random.default_rng(0), 4)
        assert 1.0 / gaps.mean() == pytest.approx(4.0)
        # Shape preserved: same relative gaps as the raw trace.
        raw = trace.interarrival_times()
        assert np.allclose(gaps / gaps.sum(), raw / raw.sum())

    def test_not_a_renewal_process(self, trace):
        assert not TraceArrivals(trace).is_renewal()

    def test_validation(self, trace):
        with pytest.raises(TraceError):
            TraceArrivals(ArrivalTrace([1.0]))
        with pytest.raises(TraceError):
            TraceArrivals(ArrivalTrace([1.0, 1.0]))
        with pytest.raises(TraceError):
            TraceArrivals(trace, rate=-1.0)
        with pytest.raises(TraceError):
            TraceArrivals(trace).sample_interarrival_times(np.random.default_rng(0), -1)


class TestSynthesizeTrace:
    def test_deterministic_in_the_seed(self):
        process = PoissonArrivals(3.0)
        assert synthesize_trace(process, 100, seed=42) == synthesize_trace(process, 100, seed=42)
        assert synthesize_trace(process, 100, seed=42) != synthesize_trace(process, 100, seed=43)

    def test_records_provenance(self):
        trace = synthesize_trace(PoissonArrivals(3.0), 10, seed=1, meta={"note": "demo"})
        assert trace.meta["seed"] == "1"
        assert trace.meta["source"].startswith("synthesized:PoissonArrivals")
        assert trace.meta["note"] == "demo"

    def test_job_sizes_from_a_service_distribution(self):
        trace = synthesize_trace(
            PoissonArrivals(3.0), 50, seed=2, service_distribution=ErlangService(2, mean=0.5)
        )
        assert trace.has_sizes
        assert trace.job_sizes.shape == (50,)
        assert np.all(trace.job_sizes > 0)

    def test_round_trip_through_replay(self):
        # Re-recording a replayed trace reproduces the interarrival sequence.
        original = synthesize_trace(PoissonArrivals(2.0), 200, seed=3)
        re_recorded = synthesize_trace(TraceArrivals(original), 199, seed=0)
        assert np.allclose(
            re_recorded.interarrival_times(), original.interarrival_times()[1:]
        )

    def test_validation(self):
        with pytest.raises(TraceError):
            synthesize_trace(PoissonArrivals(1.0), 0)
        with pytest.raises(TraceError):
            synthesize_trace(PoissonArrivals(1.0), 10, start_time=-1.0)
