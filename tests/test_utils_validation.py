"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_integer,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValidationError):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive("x", -1.0, strict=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_positive("x", "three")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive("x", True)

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="arrival_rate"):
            check_positive("arrival_rate", -2)


class TestCheckProbability:
    def test_accepts_interior(self):
        assert check_probability("p", 0.4) == 0.4

    def test_boundaries_controlled_by_flags(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ValidationError):
            check_probability("p", 0.0, allow_zero=False)
        with pytest.raises(ValidationError):
            check_probability("p", 1.0, allow_one=False)

    def test_rejects_outside_unit_interval(self):
        with pytest.raises(ValidationError):
            check_probability("p", 1.2)
        with pytest.raises(ValidationError):
            check_probability("p", -0.1)


class TestCheckInRange:
    def test_accepts_inside(self):
        assert check_in_range("u", 0.5, 0.0, 1.0) == 0.5

    def test_accepts_endpoints(self):
        assert check_in_range("u", 0.0, 0.0, 1.0) == 0.0
        assert check_in_range("u", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("u", 2.0, 0.0, 1.0)


class TestCheckInteger:
    def test_accepts_plain_int(self):
        assert check_integer("n", 5) == 5

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_integer("n", 5.0)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_integer("n", True)

    def test_bounds_enforced(self):
        assert check_integer("n", 3, minimum=1, maximum=5) == 3
        with pytest.raises(ValidationError):
            check_integer("n", 0, minimum=1)
        with pytest.raises(ValidationError):
            check_integer("n", 9, maximum=5)
