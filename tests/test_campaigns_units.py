"""Unit tests for the campaign building blocks.

Streaming accumulators against the batch statistics, the durable task
queue's transition/replay/reclaim machinery, and the torn-line hardening of
the JSONL layer.
"""

import json
import math
import warnings

import pytest

from repro.campaigns.accumulators import PointAccumulator, StreamingMoments
from repro.campaigns.queue import QueueError, TaskQueue
from repro.ensemble.results import iter_jsonl, read_jsonl, repair_jsonl
from repro.ensemble.stats import summarize


# --------------------------------------------------------------------- #
# Streaming moments vs the batch path
# --------------------------------------------------------------------- #
class TestStreamingMoments:
    def test_matches_batch_statistics_to_1e12(self):
        # Simulation-scale values (delays are O(1)..O(100)): streaming and
        # batch must agree far below any tolerance an assertion would use.
        samples = [2.0 + math.sin(i) * 0.3 + i * 0.01 for i in range(257)]
        moments = StreamingMoments()
        for value in samples:
            moments.add(value)
        batch = summarize(samples, confidence=0.99)
        assert moments.count == len(samples)
        assert moments.mean == pytest.approx(batch.mean, rel=1e-12)
        assert moments.variance == pytest.approx(batch.variance, rel=1e-12)
        assert moments.std == pytest.approx(batch.std, rel=1e-12)
        assert moments.half_width(0.99) == pytest.approx(batch.half_width, rel=1e-12)
        assert moments.minimum == min(samples)
        assert moments.maximum == max(samples)

    def test_no_catastrophic_cancellation(self):
        # Large offset + small spread is where a naive sum-of-squares
        # accumulator loses most of its digits; Welford keeps them close to
        # the (accurate) two-pass batch formula even here.
        samples = [1e6 + math.sin(i) * 1e-3 + i * 0.1 for i in range(257)]
        moments = StreamingMoments()
        for value in samples:
            moments.add(value)
        batch = summarize(samples)
        assert moments.variance == pytest.approx(batch.variance, rel=1e-9)
        naive = (
            math.fsum(x * x for x in samples) - len(samples) * batch.mean**2
        ) / (len(samples) - 1)
        # Welford is no worse than the naive accumulator on this sample.
        assert abs(moments.variance - batch.variance) <= abs(naive - batch.variance) + 1e-12

    def test_degenerate_counts(self):
        moments = StreamingMoments()
        assert math.isnan(moments.variance)
        assert math.isnan(moments.standard_error)
        moments.add(4.0)
        assert moments.mean == 4.0
        assert math.isnan(moments.variance)  # ddof=1 needs two observations
        assert math.isnan(moments.half_width(0.95))
        assert not moments.precision_reached(0.5)

    def test_precision_rule_matches_batch(self):
        samples = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02]
        moments = StreamingMoments()
        for value in samples:
            moments.add(value)
        batch = summarize(samples, confidence=0.95)
        for target in (0.5, 0.05, 0.01, 0.001):
            assert moments.precision_reached(target, 0.95) == batch.precision_reached(target)

    def test_constant_memory_slots(self):
        moments = StreamingMoments()
        for i in range(50_000):
            moments.add(float(i))
        # __slots__ means no __dict__ — nothing can grow with the sample count.
        assert not hasattr(moments, "__dict__")
        assert moments.count == 50_000


class TestPointAccumulator:
    RECORDS = [
        {"replication": i, "seed": 100 + i, "mean_delay": 2.0 + 0.01 * i, "utilization": 0.9,
         "wall_seconds": 0.5, "kernel": "python"}
        for i in range(8)
    ]

    def test_out_of_order_fold_is_order_independent(self):
        forward = PointAccumulator()
        for record in self.RECORDS:
            assert forward.add(record["replication"], record)
        shuffled = PointAccumulator()
        order = [5, 0, 3, 1, 7, 2, 4, 6]
        for index in order:
            shuffled.add(index, self.RECORDS[index])
        assert shuffled.count == forward.count == len(self.RECORDS)
        assert shuffled.buffered == 0
        # Bitwise equality, not approx: the fold order is pinned.
        assert shuffled.summary() == forward.summary()

    def test_duplicates_rejected(self):
        accumulator = PointAccumulator()
        assert accumulator.add(0, self.RECORDS[0])
        assert not accumulator.add(0, self.RECORDS[0])  # already folded
        assert accumulator.add(2, self.RECORDS[2])      # buffered
        assert not accumulator.add(2, self.RECORDS[2])  # duplicate in buffer
        assert accumulator.count == 1 and accumulator.buffered == 1
        accumulator.add(1, self.RECORDS[1])
        assert accumulator.count == 3 and accumulator.buffered == 0

    def test_non_metric_keys_excluded(self):
        accumulator = PointAccumulator()
        accumulator.add(0, {"replication": 0, "seed": 1, "mean_delay": 2.0,
                            "wall_seconds": 1.0, "events_per_second": 1e6,
                            "kernel": "python", "converged": True})
        names = accumulator.metric_names()
        assert "mean_delay" in names
        assert "wall_seconds" not in names          # timing noise
        assert "events_per_second" not in names     # timing noise
        assert "seed" not in names                  # bookkeeping
        assert "converged" not in names             # bool is not a metric

    def test_streaming_matches_batch_on_metric(self):
        accumulator = PointAccumulator(confidence=0.95)
        for record in self.RECORDS:
            accumulator.add(record["replication"], record)
        batch = summarize([r["mean_delay"] for r in self.RECORDS], confidence=0.95)
        mean, half_width = accumulator.mean_and_half_width("mean_delay")
        assert mean == pytest.approx(batch.mean, rel=1e-12)
        assert half_width == pytest.approx(batch.half_width, rel=1e-12)


# --------------------------------------------------------------------- #
# Durable task queue
# --------------------------------------------------------------------- #
class TestTaskQueue:
    def test_lease_complete_roundtrip_and_replay(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with TaskQueue(journal) as queue:
            assert queue.enqueue(["p:0", "p:1", "p:2"]) == 3
            assert queue.enqueue(["p:0"]) == 0  # idempotent
            assert queue.lease("w0", 60.0) == "p:0"
            queue.complete("p:0")
            assert queue.lease("w0", 60.0) == "p:1"
            assert queue.counts() == {
                "pending": 1, "leased": 1, "done": 1, "quarantined": 0, "total": 3,
            }
        # Replay: the lease on p:1 is stale (its process is gone) and is
        # reclaimed to the FRONT of the queue.
        with TaskQueue(journal) as queue:
            assert queue.counts() == {
                "pending": 2, "leased": 0, "done": 1, "quarantined": 0, "total": 3,
            }
            assert queue.lease("w1", 60.0) == "p:1"

    def test_release_goes_to_front(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a", "b", "c"])
            assert queue.lease("w0", 60.0) == "a"
            queue.release("a")
            assert queue.lease("w1", 60.0) == "a"  # work stealing: reclaimed first

    def test_reclaim_expired_and_dead(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a", "b", "c"])
            queue.lease("w0", lease_seconds=10.0, now=1000.0)
            queue.lease("w1", lease_seconds=100.0, now=1000.0)
            queue.lease("w2", lease_seconds=10_000.0, now=1000.0)
            # w0's lease expired; w2 is dead regardless of its deadline.
            reclaimed = queue.reclaim(now=1011.0, dead_workers=["w2"])
            assert set(reclaimed) == {"a", "c"}
            assert queue.leased_by("w1") == ["b"]
            # A heartbeat extends the deadline and saves the lease (w1's
            # un-heartbeated lease from above expires by now and goes too).
            queue.enqueue(["d"])
            queue.lease("w3", lease_seconds=10.0, now=2000.0)
            queue.heartbeat("w3", lease_seconds=10.0, now=2009.0)
            assert queue.reclaim(now=2015.0) == ["b"]
            # w3 leased "c": reclaimed tasks sit at the front of the queue,
            # ahead of the freshly enqueued "d" (work stealing).
            assert queue.leased_by("w3") == ["c"]

    def test_invalid_transitions_raise(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a"])
            with pytest.raises(QueueError):
                queue.complete("ghost")
            with pytest.raises(QueueError):
                queue.release("a")  # never leased
            queue.lease("w0", 60.0)
            queue.complete("a")
            queue.complete("a")  # idempotent completion is fine

    def test_torn_trailing_journal_line_is_repaired(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with TaskQueue(journal) as queue:
            queue.enqueue(["a", "b"])
            queue.lease("w0", 60.0)
            queue.complete("a")
        # Simulate a crash mid-append: half a "done" event for b.
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "done", "ta')
        with TaskQueue(journal) as queue:
            assert queue.is_done("a")
            assert not queue.is_done("b")
            assert queue.lease("w1", 60.0) == "b"  # still runnable

    def test_read_only_queue_never_writes(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with TaskQueue(journal) as queue:
            queue.enqueue(["a", "b"])
            queue.lease("w0", 60.0)
        before = journal.read_bytes()
        snapshot = TaskQueue(journal, reclaim_stale=False, read_only=True)
        assert snapshot.counts()["leased"] == 1  # stale lease NOT reclaimed
        with pytest.raises(QueueError):
            snapshot.enqueue(["c"])
        assert journal.read_bytes() == before

    def test_memory_is_ids_only(self, tmp_path):
        # The queue journals ids, never payloads: a thousand tasks cost a
        # thousand small strings, and the journal has no spec material in it.
        journal = tmp_path / "journal.jsonl"
        with TaskQueue(journal) as queue:
            queue.enqueue(f"deadbeefcafef00d:{i}" for i in range(1000))
        text = journal.read_text(encoding="utf-8")
        assert "num_servers" not in text and "spec" not in text
        assert len(text.splitlines()) == 1000


# --------------------------------------------------------------------- #
# Torn-line hardening of the JSONL layer (satellite)
# --------------------------------------------------------------------- #
class TestTornJsonl:
    def _write(self, path, lines, tail=""):
        with path.open("w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
            handle.write(tail)

    def test_reader_skips_and_warns_on_torn_tail(self, tmp_path):
        path = tmp_path / "records.jsonl"
        self._write(path, [{"a": 1}, {"a": 2}], tail='{"a": 3, "tru')
        with pytest.warns(RuntimeWarning, match="truncated trailing"):
            records = read_jsonl(path)
        assert records == [{"a": 1}, {"a": 2}]

    def test_reader_raises_on_midfile_corruption(self, tmp_path):
        path = tmp_path / "records.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            handle.write('{"a": 1}\n{"bro\n{"a": 2}\n')
        with pytest.raises(ValueError, match="mid-file"):
            list(iter_jsonl(path))

    def test_clean_file_reads_without_warning(self, tmp_path):
        path = tmp_path / "records.jsonl"
        self._write(path, [{"a": 1}, {"a": 2}])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_jsonl(path)) == 2

    def test_repair_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "records.jsonl"
        self._write(path, [{"a": 1}], tail='{"a": 2, "tr')
        removed = repair_jsonl(path)
        assert removed == len('{"a": 2, "tr')
        assert read_jsonl(path) == [{"a": 1}]
        assert repair_jsonl(path) == 0  # clean now
        assert repair_jsonl(tmp_path / "absent.jsonl") == 0

    def test_repair_refuses_midfile_corruption(self, tmp_path):
        path = tmp_path / "records.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            handle.write('{"a": 1}\n{"bro\n{"a": 2}\n')
        with pytest.raises(ValueError, match="mid-file"):
            repair_jsonl(path)


class TestLeaseClockEdges:
    """Exact-boundary semantics of lease expiry, heartbeats and reclaim.

    The lease contract is ``deadline < now`` — a lease is stale strictly
    *after* its TTL, never at the instant of it.  These edges decide whether
    a slow-but-alive worker gets robbed of a task it is about to finish.
    """

    def test_lease_at_exact_ttl_boundary_survives(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a"])
            queue.lease("w0", 10.0, now=1000.0)  # deadline = 1010.0
            assert queue.reclaim(now=1010.0) == []  # exactly at TTL: alive
            assert queue.reclaim(now=1010.0 + 1e-6) == ["a"]  # past it: stale

    def test_heartbeat_at_expiry_instant_saves_the_lease(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a"])
            queue.lease("w0", 10.0, now=1000.0)
            # The heartbeat lands at the very moment the lease would lapse:
            # it must win, re-stamping the deadline from *its* clock.
            queue.heartbeat("w0", 10.0, now=1010.0)
            assert queue.reclaim(now=1015.0) == []
            assert queue.lease_of("a") == ("w0", 1020.0)
            assert queue.reclaim(now=1020.0 + 1e-6) == ["a"]

    def test_heartbeat_extends_every_lease_of_the_worker(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a", "b", "c"])
            queue.lease("w0", 10.0, now=1000.0)
            queue.lease("w0", 10.0, now=1005.0)
            queue.lease("w1", 10.0, now=1000.0)
            queue.heartbeat("w0", 10.0, now=1009.0)
            # Both of w0's leases now expire at 1019; w1's still at 1010.
            assert queue.reclaim(now=1012.0) == ["c"]
            assert sorted(queue.leased_by("w0")) == ["a", "b"]

    def test_reclaim_then_late_completion_folds_exactly_once(self, tmp_path):
        """The canonical split-brain race: w0's lease expires mid-task, the
        task is re-leased to w1, and *then* w0's completion arrives.  Done
        must win exactly once — on the queue, in the journal, and in the
        accumulator fold."""
        journal = tmp_path / "j.jsonl"
        with TaskQueue(journal) as queue:
            queue.enqueue(["a", "b"])
            queue.lease("w0", 10.0, now=1000.0)
            assert queue.reclaim(now=1011.0) == ["a"]  # w0 presumed dead
            assert queue.lease("w1", 10.0, now=1011.0) == "a"  # re-leased

            queue.complete("a")  # w0 was alive after all: late completion
            queue.complete("a")  # ... and w1 finishes the same task later
            assert queue.is_done("a")
            assert queue.counts()["done"] == 1

            # Exactly one durable "done" event, despite two completions.
            events = [
                json.loads(line)
                for line in journal.read_text(encoding="utf-8").splitlines()
            ]
            assert sum(1 for e in events if e.get("event") == "done") == 1

        # The replayed queue agrees with the live one.
        with TaskQueue(journal) as queue:
            assert queue.is_done("a") and queue.counts()["done"] == 1
            assert queue.lease("w2", 10.0) == "b"  # only the unfinished task

        # And the accumulator folds the record once no matter how many
        # times the duplicated completion hands it the same replication.
        accumulator = PointAccumulator()
        assert accumulator.add(0, {"mean_delay": 2.0}) is True
        assert accumulator.add(0, {"mean_delay": 2.0}) is False
        assert accumulator.count == 1
        assert accumulator.statistics("mean_delay").count == 1

    def test_expired_lease_is_relieved_at_front_of_queue(self, tmp_path):
        with TaskQueue(tmp_path / "j.jsonl") as queue:
            queue.enqueue(["a", "b", "c"])
            assert queue.lease("w0", 10.0, now=1000.0) == "a"
            queue.reclaim(now=2000.0)
            # The reclaimed task outranks everything still pending: it was
            # enqueued before them and its point is the furthest behind.
            assert queue.lease("w1", 10.0, now=2000.0) == "a"
            assert queue.lease("w1", 10.0, now=2000.0) == "b"
