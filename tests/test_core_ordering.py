"""Tests for the stochastic-ordering (Section III) machinery."""

import numpy as np
import pytest

from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.model import SQDModel
from repro.core.ordering import (
    cost_function_iteration,
    default_cost_function,
    original_transition_map,
    precedence_pairs_within,
    total_jobs_cost_function,
    uniformized_step_probabilities,
    verify_bound_dominance,
    verify_monotonicity_on_elementary_pairs,
)
from repro.core.state import precedes
from repro.core.state_space import enumerate_restricted_states


@pytest.fixture
def model():
    return SQDModel(num_servers=3, d=2, utilization=0.7)


def large_state_set(threshold, max_jobs):
    return enumerate_restricted_states(3, threshold, max_jobs)


class TestUniformization:
    def test_step_probabilities_sum_to_one(self, model):
        transitions = original_transition_map(model)((2, 1, 0))
        rate = model.total_arrival_rate + 3 * model.service_rate
        probabilities = uniformized_step_probabilities(transitions, rate, (2, 1, 0))
        assert sum(probabilities.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in probabilities.values())

    def test_insufficient_rate_rejected(self, model):
        transitions = original_transition_map(model)((2, 1, 0))
        with pytest.raises(ValueError):
            uniformized_step_probabilities(transitions, 0.1, (2, 1, 0))


class TestCostIteration:
    def test_values_start_at_zero_and_grow(self, model):
        states = large_state_set(threshold=6, max_jobs=8)
        rate = model.total_arrival_rate + 3 * model.service_rate
        values = cost_function_iteration(states, original_transition_map(model), default_cost_function, 10, rate)
        empty = values[(0, 0, 0)]
        assert empty[0] == 0.0
        assert np.all(np.diff(empty) >= -1e-12)

    def test_costlier_cost_function_gives_larger_values(self, model):
        states = large_state_set(threshold=6, max_jobs=6)
        rate = model.total_arrival_rate + 3 * model.service_rate
        waiting = cost_function_iteration(states, original_transition_map(model), default_cost_function, 8, rate)
        totals = cost_function_iteration(states, original_transition_map(model), total_jobs_cost_function, 8, rate)
        for state in waiting:
            assert np.all(totals[state] >= waiting[state] - 1e-12)


class TestMonotonicity:
    def test_eq7_holds_for_original_chain(self, model):
        # v_n(m) <= v_n(m') for elementary precedence pairs — the key lemma of
        # Section III, checked numerically on a truncated state set.  The
        # comparison is limited to states with enough headroom (6 jobs, 8
        # iterations, 14-job truncation) that truncation cannot bias it.
        states = large_state_set(threshold=14, max_jobs=14)
        assert verify_monotonicity_on_elementary_pairs(
            model,
            states,
            original_transition_map(model),
            num_iterations=8,
            max_total_jobs_for_comparison=6,
        )

    def test_eq7_holds_for_total_jobs_cost(self, model):
        # Eq. (7) is a statement about the *original* chain's value function;
        # it holds for any cost that is monotone along the precedence order,
        # in particular for the total-jobs cost as well as the waiting-jobs
        # cost used for the delay bounds.
        states = large_state_set(threshold=14, max_jobs=14)
        assert verify_monotonicity_on_elementary_pairs(
            model,
            states,
            original_transition_map(model),
            num_iterations=8,
            cost_function=total_jobs_cost_function,
            max_total_jobs_for_comparison=6,
        )


class TestBoundDominance:
    def test_cost_iterates_are_sandwiched_by_bound_models(self, model):
        # The heart of Section III: the lower bound chain's expected cost never
        # exceeds the original chain's, which never exceeds the upper bound
        # chain's, iteration by iteration and state by state.  The original
        # chain is enumerated without the imbalance restriction (its state
        # space is all ordered states), and the comparison is restricted to
        # states far enough below the job-count truncation to be exact.
        threshold = 2
        iterations = 8
        max_jobs = 16
        compare_up_to = max_jobs - iterations
        original_states = enumerate_restricted_states(3, max_jobs, max_jobs)
        bound_states = enumerate_restricted_states(3, threshold, max_jobs)
        rate = model.total_arrival_rate + 3 * model.service_rate

        original_values = cost_function_iteration(
            original_states, original_transition_map(model), default_cost_function, iterations, rate
        )
        lower_values = cost_function_iteration(
            bound_states, LowerBoundModel(model, threshold).transition_map, default_cost_function, iterations, rate
        )
        upper_values = cost_function_iteration(
            bound_states, UpperBoundModel(model, threshold).transition_map, default_cost_function, iterations, rate
        )

        assert verify_bound_dominance(
            original_values, upper_values, direction="upper", max_total_jobs_for_comparison=compare_up_to
        )
        assert verify_bound_dominance(
            original_values, lower_values, direction="lower", max_total_jobs_for_comparison=compare_up_to
        )

    def test_direction_argument_validated(self):
        with pytest.raises(ValueError):
            verify_bound_dominance({}, {}, direction="middle")


class TestPrecedencePairs:
    def test_pairs_are_valid(self):
        states = [(1, 1, 1), (2, 1, 0), (2, 2, 2), (3, 0, 0)]
        pairs = precedence_pairs_within(states)
        assert ((1, 1, 1), (2, 1, 0)) in pairs
        for first, second in pairs:
            assert precedes(first, second)
            assert first != second
