"""Tests for the repro-lb command-line interface."""

import json

import pytest

from repro.cli import main


class TestAnalyzeCommand:
    def test_prints_bounds_table(self, capsys):
        exit_code = main(["analyze", "-N", "3", "-d", "2", "-u", "0.7", "-T", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "lower bound" in output
        assert "upper bound" in output
        assert "asymptotic" in output

    def test_reports_unstable_upper_bound(self, capsys):
        main(["analyze", "-N", "3", "-d", "2", "-u", "0.9", "-T", "1"])
        assert "unstable" in capsys.readouterr().out

    def test_with_simulation_and_exact(self, capsys):
        exit_code = main(
            ["analyze", "-N", "3", "-d", "2", "-u", "0.5", "-T", "2", "--simulate", "--events", "30000", "--exact"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "simulation" in output
        assert "exact" in output

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["analyze", "-N", "3"])


class TestFigureCommands:
    def test_figure9_small_run(self, capsys):
        exit_code = main(
            ["figure9", "-u", "0.75", "--choices", "2", "--servers", "5", "10", "--events", "10000"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 9" in output and "d=2 err%" in output

    def test_figure10_panel_without_simulation(self, capsys):
        exit_code = main(["figure10", "--panel", "a", "--no-simulation"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 10" in output and "N=3" in output

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure10", "--panel", "z"])


class TestSweepCommand:
    def test_sweep_with_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        exit_code = main(
            [
                "sweep",
                "--servers", "3",
                "--choices", "2",
                "--utilizations", "0.5", "0.8",
                "--thresholds", "2",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "sweep" in output.lower()
        assert csv_path.exists()
        assert len(json.loads(json_path.read_text())) == 2

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestSeedFlags:
    def test_analyze_seed_is_reproducible(self, capsys):
        args = ["analyze", "-N", "3", "-d", "2", "-u", "0.5", "-T", "2", "--simulate",
                "--events", "20000", "--seed", "99"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second

    def test_sweep_accepts_seed(self, capsys):
        exit_code = main(
            ["sweep", "--servers", "3", "--choices", "2", "--utilizations", "0.5",
             "--thresholds", "2", "--simulate", "--events", "20000", "--seed", "7"]
        )
        assert exit_code == 0
        assert "sweep" in capsys.readouterr().out.lower()


class TestFleetCommand:
    def test_stationary_run_reports_comparison(self, capsys):
        exit_code = main(
            ["fleet", "-N", "1000", "-d", "2", "-u", "0.9", "--events", "100000", "--seed", "5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "fleet simulation" in output
        assert "mean-field" in output
        assert "asymptotic" in output

    def test_seed_is_reproducible(self, capsys):
        args = ["fleet", "-N", "500", "-u", "0.8", "--events", "50000", "--seed", "3"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        # Everything except the trailing wall-clock diagnostics line is a
        # deterministic function of the seed.
        def simulated_lines(text):
            return [line for line in text.splitlines() if not line.startswith("wall-clock")]

        assert simulated_lines(first) == simulated_lines(second)
        assert any(line.startswith("wall-clock") for line in first.splitlines())

    def test_scenario_run(self, capsys):
        exit_code = main(
            ["fleet", "-N", "500", "--scenario", "flash-crowd", "--seed", "4"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "flash-crowd" in output
        assert "spike" in output
        assert "overall mean delay" in output

    def test_utilization_required_without_scenario(self):
        with pytest.raises(SystemExit):
            main(["fleet", "-N", "100"])

    def test_scenario_rejects_stationary_flags(self):
        # --utilization/--events/--cold-start would be silently ignored
        with pytest.raises(SystemExit, match="--utilization"):
            main(["fleet", "-N", "100", "--scenario", "constant", "-u", "0.99"])
        with pytest.raises(SystemExit, match="--events"):
            main(["fleet", "-N", "100", "--scenario", "constant", "--events", "1000"])
        with pytest.raises(SystemExit, match="--cold-start"):
            main(["fleet", "-N", "100", "--scenario", "constant", "--cold-start"])

    def test_jsq_policy(self, capsys):
        exit_code = main(
            ["fleet", "-N", "200", "-u", "0.7", "--policy", "jsq", "--events", "50000"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "jsq" in output


class TestEnsembleCommand:
    def test_reports_mean_delay_with_confidence_interval(self, capsys):
        exit_code = main(
            ["ensemble", "-N", "300", "-d", "2", "-u", "0.9",
             "--replications", "4", "--events", "20000", "--seed", "5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "mean delay" in output
        assert "±" in output and "95% CI" in output and "4 replications" in output
        assert "mean-field limit" in output

    def test_seed_is_reproducible(self, capsys):
        args = ["ensemble", "-N", "200", "-u", "0.8", "--replications", "2",
                "--events", "10000", "--seed", "9"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        def simulated_lines(text):
            return [line for line in text.splitlines() if not line.startswith("wall-clock")]

        assert simulated_lines(first) == simulated_lines(second)

    def test_scenario_ensemble(self, capsys):
        exit_code = main(
            ["ensemble", "-N", "200", "--scenario", "constant",
             "--replications", "2", "--seed", "6"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario=constant" in output and "x 2 replications" in output

    def test_jsonl_export(self, capsys, tmp_path):
        import json as json_module

        path = tmp_path / "runs.jsonl"
        exit_code = main(
            ["ensemble", "-N", "100", "-u", "0.7", "--replications", "3",
             "--events", "5000", "--seed", "2", "--jsonl", str(path)]
        )
        assert exit_code == 0
        assert "wrote 3 replication records" in capsys.readouterr().out
        records = [json_module.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 3
        assert records[0]["parameters"]["num_servers"] == 100

    def test_single_replication_reports_missing_ci_not_a_verdict(self, capsys):
        exit_code = main(
            ["ensemble", "-N", "100", "-u", "0.8", "--replications", "1",
             "--events", "5000", "--seed", "1"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "no CI with a single replication" in output
        assert "outside" not in output  # a nan interval is not a verdict

    def test_target_precision_adds_replications(self, capsys):
        exit_code = main(
            ["ensemble", "-N", "100", "-u", "0.7", "--replications", "2",
             "--events", "5000", "--seed", "3",
             "--target-precision", "0.0000001", "--max-replications", "4"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "4 replications" in output

    def test_utilization_required_without_scenario(self):
        with pytest.raises(SystemExit):
            main(["ensemble", "-N", "100"])

    def test_scenario_rejects_stationary_flags(self):
        with pytest.raises(SystemExit, match="--utilization"):
            main(["ensemble", "-N", "100", "--scenario", "constant", "-u", "0.9"])
        with pytest.raises(SystemExit, match="--events"):
            main(["ensemble", "-N", "100", "--scenario", "constant", "--events", "1000"])

    def test_figure_commands_accept_replications(self, capsys):
        exit_code = main(
            ["figure9", "-u", "0.75", "--choices", "2", "--servers", "10",
             "--events", "10000", "--replications", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "d=2 ±err%" in output
        exit_code = main(
            ["figure10", "--panel", "a", "--events", "10000", "--replications", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "sim ±CI" in output


class TestRunCommand:
    def _write_spec(self, tmp_path, **overrides):
        from repro import ExperimentSpec

        kwargs = dict(num_servers=50, utilization=0.8, num_events=5_000, seed=11)
        kwargs.update(overrides)
        spec = ExperimentSpec.create(**kwargs)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(indent=2))
        return path

    def test_runs_a_spec_file_with_auto_backend(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        exit_code = main(["run", "--spec", str(path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "fleet" in output and "mean_delay" in output
        assert "wall-clock" in output

    def test_explicit_backend_and_replications(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        exit_code = main(
            ["run", "--spec", str(path), "--backend", "ctmc", "--replications", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ctmc" in output and "95% CI" in output

    def test_json_export_shares_the_result_schema(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        out = tmp_path / "result.json"
        exit_code = main(["run", "--spec", str(path), "--json", str(out)])
        assert exit_code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["backend"] == "fleet"
        assert payload["spec"]["system"]["num_servers"] == 50
        assert payload["mean_delay"] > 1.0

    def test_missing_spec_file_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["run", "--spec", "/nonexistent/spec.json"])

    def test_incapable_backend_is_a_clean_error(self, tmp_path):
        path = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="cannot run this spec"):
            main(["run", "--spec", str(path), "--backend", "exact"])

    def test_malformed_spec_is_a_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"system": {"num_servers": -3}}')
        with pytest.raises(SystemExit, match="num_servers"):
            main(["run", "--spec", str(path)])


class TestBackendsCommand:
    def test_lists_all_six_backends(self, capsys):
        exit_code = main(["backends"])
        output = capsys.readouterr().out
        assert exit_code == 0
        for name in ("qbd_bounds", "exact", "ctmc", "cluster", "fleet", "meanfield"):
            assert name in output
        assert "answer" in output and "policies" in output


class TestJsonExports:
    def test_analyze_json_export(self, capsys, tmp_path):
        out = tmp_path / "analysis.json"
        exit_code = main(
            ["analyze", "-N", "3", "-d", "2", "-u", "0.7", "-T", "2", "--json", str(out)]
        )
        assert exit_code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["command"] == "analyze"
        assert payload["results"]["lower_bound"] > 1.0
        assert payload["results"]["N"] == 3
        assert "provenance" in payload

    def test_fleet_json_export(self, capsys, tmp_path):
        out = tmp_path / "fleet.json"
        exit_code = main(
            ["fleet", "-N", "200", "-u", "0.8", "--events", "20000",
             "--seed", "5", "--json", str(out)]
        )
        assert exit_code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["command"] == "fleet"
        assert payload["results"]["mean_delay"] > 1.0
        assert payload["results"]["meanfield_delay"] > 1.0

    def test_fleet_scenario_json_export(self, capsys, tmp_path):
        out = tmp_path / "scenario.json"
        exit_code = main(
            ["fleet", "-N", "100", "--scenario", "constant", "--seed", "4",
             "--json", str(out)]
        )
        assert exit_code == 0
        payload = json.loads(out.read_text())
        assert payload["parameters"]["scenario"] == "constant"
        assert len(payload["results"]["phases"]) >= 1
