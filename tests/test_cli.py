"""Tests for the repro-lb command-line interface."""

import json

import pytest

from repro.cli import main


class TestAnalyzeCommand:
    def test_prints_bounds_table(self, capsys):
        exit_code = main(["analyze", "-N", "3", "-d", "2", "-u", "0.7", "-T", "2"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "lower bound" in output
        assert "upper bound" in output
        assert "asymptotic" in output

    def test_reports_unstable_upper_bound(self, capsys):
        main(["analyze", "-N", "3", "-d", "2", "-u", "0.9", "-T", "1"])
        assert "unstable" in capsys.readouterr().out

    def test_with_simulation_and_exact(self, capsys):
        exit_code = main(
            ["analyze", "-N", "3", "-d", "2", "-u", "0.5", "-T", "2", "--simulate", "--events", "30000", "--exact"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "simulation" in output
        assert "exact" in output

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["analyze", "-N", "3"])


class TestFigureCommands:
    def test_figure9_small_run(self, capsys):
        exit_code = main(
            ["figure9", "-u", "0.75", "--choices", "2", "--servers", "5", "10", "--events", "10000"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 9" in output and "d=2 err%" in output

    def test_figure10_panel_without_simulation(self, capsys):
        exit_code = main(["figure10", "--panel", "a", "--no-simulation"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Figure 10" in output and "N=3" in output

    def test_unknown_panel_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure10", "--panel", "z"])


class TestSweepCommand:
    def test_sweep_with_exports(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        exit_code = main(
            [
                "sweep",
                "--servers", "3",
                "--choices", "2",
                "--utilizations", "0.5", "0.8",
                "--thresholds", "2",
                "--csv", str(csv_path),
                "--json", str(json_path),
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "sweep" in output.lower()
        assert csv_path.exists()
        assert len(json.loads(json_path.read_text())) == 2

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
