"""Tests for the dependency-light replication statistics."""

import math

import pytest

from repro.ensemble.stats import (
    ReplicationStatistics,
    student_t_cdf,
    student_t_quantile,
    summarize,
)
from repro.utils.validation import ValidationError


class TestStudentT:
    # Reference values from standard t tables.
    @pytest.mark.parametrize(
        "confidence, df, expected",
        [
            (0.95, 1, 12.7062),
            (0.95, 2, 4.3027),
            (0.95, 7, 2.3646),
            (0.95, 30, 2.0423),
            (0.99, 10, 3.1693),
            (0.90, 5, 2.0150),
        ],
    )
    def test_quantile_matches_tables(self, confidence, df, expected):
        assert student_t_quantile(confidence, df) == pytest.approx(expected, abs=2e-3)

    def test_quantile_approaches_normal_for_large_df(self):
        assert student_t_quantile(0.95, 10_000) == pytest.approx(1.96, abs=5e-3)

    def test_cdf_symmetry_and_midpoint(self):
        assert student_t_cdf(0.0, 5) == pytest.approx(0.5)
        assert student_t_cdf(1.3, 5) + student_t_cdf(-1.3, 5) == pytest.approx(1.0, abs=1e-12)

    def test_cdf_is_monotone(self):
        values = [student_t_cdf(t, 4) for t in (-3.0, -1.0, 0.0, 1.0, 3.0)]
        assert values == sorted(values)

    def test_quantile_inverts_cdf(self):
        t_star = student_t_quantile(0.95, 9)
        assert student_t_cdf(t_star, 9) == pytest.approx(0.975, abs=1e-9)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            student_t_quantile(1.0, 5)
        with pytest.raises(ValidationError):
            student_t_quantile(0.0, 5)
        with pytest.raises(ValidationError):
            student_t_quantile(0.95, 0)


class TestReplicationStatistics:
    def test_mean_variance_and_interval(self):
        stats = ReplicationStatistics.from_samples([2.0, 4.0, 6.0, 8.0])
        assert stats.n == 4
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(20.0 / 3.0)
        assert stats.standard_error == pytest.approx(math.sqrt(20.0 / 3.0) / 2.0)
        expected_half = student_t_quantile(0.95, 3) * stats.standard_error
        assert stats.half_width == pytest.approx(expected_half)
        low, high = stats.confidence_interval()
        assert low == pytest.approx(5.0 - expected_half)
        assert high == pytest.approx(5.0 + expected_half)

    def test_single_sample_has_no_interval(self):
        stats = summarize([3.5])
        assert stats.mean == 3.5
        assert math.isnan(stats.variance)
        assert math.isnan(stats.half_width)
        assert "no CI" in str(stats)

    def test_precision_stopping_rule(self):
        tight = summarize([10.0, 10.01, 9.99, 10.0])
        loose = summarize([10.0, 20.0, 5.0, 15.0])
        assert tight.precision_reached(0.01)
        assert not loose.precision_reached(0.01)
        # One sample: no variance estimate, never "reached".
        assert not summarize([10.0]).precision_reached(0.5)

    def test_relative_half_width(self):
        stats = summarize([2.0, 2.2, 1.8, 2.0])
        assert stats.relative_half_width == pytest.approx(stats.half_width / 2.0)

    def test_str_reports_ci(self):
        text = str(summarize([1.0, 2.0, 3.0]))
        assert "±" in text and "95%" in text and "3 replications" in text

    def test_validation(self):
        with pytest.raises(ValidationError):
            ReplicationStatistics(samples=())
        with pytest.raises(ValidationError):
            ReplicationStatistics(samples=(1.0, 2.0), confidence=1.5)
        with pytest.raises(ValidationError):
            summarize([1.0, 2.0]).precision_reached(-0.1)

    def test_custom_confidence_level(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        wide = ReplicationStatistics.from_samples(samples, confidence=0.99)
        narrow = ReplicationStatistics.from_samples(samples, confidence=0.90)
        assert wide.half_width > narrow.half_width
