"""Tests for the parallel multi-replication ensemble runner."""

import math

import pytest

from repro.ensemble.runner import (
    SIMULATION_KINDS,
    EnsembleConfig,
    run_ensemble,
)
from repro.utils.seeding import spawn_seeds
from repro.utils.validation import ValidationError

FLEET_PARAMS = {"num_servers": 100, "utilization": 0.8, "num_events": 10_000}


class TestSeedDerivation:
    def test_spawn_seeds_deterministic_and_sliceable(self):
        full = spawn_seeds(42, 10)
        assert spawn_seeds(42, 10) == full
        # Extending an ensemble reproduces exactly the tail of the sequence.
        assert spawn_seeds(42, 4, start=6) == full[6:]

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(7, 50)
        assert len(set(seeds)) == 50

    def test_spawn_seeds_validation(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)
        with pytest.raises(ValueError):
            spawn_seeds(1, 1, start=-2)


class TestRunEnsemble:
    def test_replications_use_distinct_seeds(self):
        result = run_ensemble("fleet", FLEET_PARAMS, replications=4, seed=1)
        seeds = [record["seed"] for record in result.records]
        delays = result.samples("mean_delay")
        assert len(set(seeds)) == 4
        assert len(set(delays)) == 4  # different streams, different realizations
        assert [record["replication"] for record in result.records] == [0, 1, 2, 3]

    def test_bitwise_deterministic_across_worker_counts(self):
        serial = run_ensemble("fleet", FLEET_PARAMS, replications=4, workers=1, seed=5)
        parallel = run_ensemble("fleet", FLEET_PARAMS, replications=4, workers=3, seed=5)
        assert serial.simulation_records() == parallel.simulation_records()

    def test_statistics_and_delay_shortcut(self):
        result = run_ensemble("fleet", FLEET_PARAMS, replications=3, seed=2)
        stats = result.delay
        assert stats.n == 3
        assert stats.mean == pytest.approx(sum(result.samples("mean_delay")) / 3)
        assert math.isfinite(stats.half_width)

    def test_unknown_metric_rejected(self):
        result = run_ensemble("fleet", FLEET_PARAMS, replications=2, seed=2)
        with pytest.raises(ValidationError, match="unknown metric"):
            result.samples("nonexistent")

    def test_gillespie_kind(self):
        result = run_ensemble(
            "gillespie",
            {"num_servers": 10, "d": 2, "utilization": 0.7, "num_events": 20_000},
            replications=2,
            seed=3,
        )
        assert result.replications == 2
        assert all(record["mean_delay"] > 1.0 for record in result.records)

    def test_cluster_kind(self):
        result = run_ensemble(
            "cluster",
            {"num_servers": 5, "d": 2, "utilization": 0.7, "num_jobs": 5_000},
            replications=2,
            seed=4,
        )
        assert result.replications == 2
        assert all(record["mean_delay"] > 1.0 for record in result.records)

    def test_scenario_kind(self):
        result = run_ensemble(
            "scenario",
            {
                "scenario": "constant",
                "scenario_parameters": {"duration": 10.0, "warmup_time": 2.0},
                "num_servers": 100,
                "d": 2,
            },
            replications=2,
            seed=5,
        )
        assert result.replications == 2
        assert all(record["mean_delay"] > 0.0 for record in result.records)

    def test_as_table_summarizes_metrics(self):
        result = run_ensemble("fleet", FLEET_PARAMS, replications=3, seed=6)
        table = result.as_table()
        assert "mean_delay" in table and "±95% CI" in table
        # wall-clock noise is excluded from the deterministic table
        assert "wall_seconds" not in table and "events_per_second" not in table


class TestAdaptiveStopping:
    def test_stops_at_target_precision(self):
        result = run_ensemble(
            "gillespie",
            {"num_servers": 10, "d": 2, "utilization": 0.5, "num_events": 30_000},
            replications=2,
            seed=7,
            target_relative_half_width=0.2,
            max_replications=32,
        )
        assert 2 <= result.replications <= 32
        if result.replications < 32:
            assert result.delay.precision_reached(0.2)

    def test_respects_max_replications(self):
        result = run_ensemble(
            "gillespie",
            {"num_servers": 10, "d": 2, "utilization": 0.9, "num_events": 2_000},
            replications=2,
            seed=8,
            target_relative_half_width=1e-9,  # unreachable
            max_replications=6,
            batch_size=2,
        )
        assert result.replications == 6

    def test_adaptive_extension_reuses_prefix_seeds(self):
        fixed = run_ensemble("fleet", FLEET_PARAMS, replications=2, seed=9)
        adaptive = run_ensemble(
            "fleet",
            FLEET_PARAMS,
            replications=2,
            seed=9,
            target_relative_half_width=1e-9,
            max_replications=6,
            batch_size=2,
        )
        assert adaptive.replications == 6
        # The first two replications are bitwise those of the fixed run.
        assert adaptive.simulation_records()[:2] == fixed.simulation_records()


class TestEnsembleConfig:
    def test_kinds_registry(self):
        assert set(SIMULATION_KINDS) == {"fleet", "gillespie", "cluster", "scenario"}

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            EnsembleConfig(kind="quantum")

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValidationError, match="confidence"):
            EnsembleConfig(kind="fleet", parameters=FLEET_PARAMS, confidence=0.0)

    def test_max_replications_must_cover_initial_in_adaptive_mode(self):
        with pytest.raises(ValidationError, match="max_replications"):
            EnsembleConfig(
                kind="fleet",
                parameters=FLEET_PARAMS,
                replications=10,
                max_replications=5,
                target_relative_half_width=0.05,
            )

    def test_fixed_count_ignores_max_replications_cap(self):
        # Without a precision target the cap is irrelevant: asking for more
        # replications than the (adaptive-mode) default cap must be legal.
        config = EnsembleConfig(kind="fleet", parameters=FLEET_PARAMS, replications=100)
        assert config.replications == 100

    def test_invalid_target_rejected(self):
        with pytest.raises(ValidationError, match="target_relative_half_width"):
            EnsembleConfig(
                kind="fleet", parameters=FLEET_PARAMS, target_relative_half_width=-0.1
            )
