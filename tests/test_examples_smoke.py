"""Smoke-run every example script with reduced event counts.

The examples are the package's front door; since they migrated onto the
``repro.run`` API they must never rot silently.  Each script honours the
``REPRO_EXAMPLES_SCALE`` environment variable (a multiplier on its default
event/job counts), so the whole gallery runs in seconds here — and in the
CI ``examples`` job, which executes the same command matrix.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))

SMOKE_ENV = {
    "PYTHONPATH": str(REPO_ROOT / "src"),
    "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
    "REPRO_EXAMPLES_SCALE": "0.02",
}


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=SMOKE_ENV,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed\nstdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert "Reading:" in completed.stdout or "delay" in completed.stdout.lower()


@pytest.mark.parametrize(
    "script",
    [path for path in EXAMPLES if path.name != "bound_accuracy_study.py"],
    ids=lambda path: path.name,
)
def test_example_honours_the_scale_knob(script):
    # The contract the CI smoke job relies on: the knob is read at module
    # scope (bound_accuracy_study has no stochastic horizon to scale).
    assert "REPRO_EXAMPLES_SCALE" in script.read_text(encoding="utf-8"), script.name
