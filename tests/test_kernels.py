"""The kernel layer contract: one law, many loops.

Three things make a kernel admissible (ISSUE 4):

1. **statistical parity** — seeded ``python`` and ``uniformized`` runs of
   the same configuration agree within ensemble confidence intervals (the
   kernels share the occupancy CTMC's law, not its sample paths);
2. **bitwise determinism** — each kernel is a deterministic function of the
   seed, across repeated runs and across ensemble worker counts;
3. **capability honesty** — an incapable (kernel, policy, configuration)
   combination raises :class:`~repro.api.spec.SpecError`, never crashes or
   silently substitutes another kernel.
"""

import math

import pytest

from repro import ExperimentSpec, SpecError, run
from repro.ensemble.runner import run_ensemble
from repro.fleet.engine import FleetSimulation, run_scenario, simulate_fleet
from repro.fleet.scenarios import get_scenario
from repro.kernels import (
    available_kernels,
    get_kernel_class,
    kernel_why_unsupported,
    resolve_kernel,
    select_kernel,
)

PARITY_SPEC = dict(num_servers=1000, d=2, utilization=0.9)


class TestRegistry:
    def test_builtin_kernels_are_registered(self):
        assert available_kernels() == ["python", "uniformized"]

    def test_unknown_kernel_is_a_spec_error(self):
        with pytest.raises(SpecError, match="unknown kernel"):
            get_kernel_class("turbo")

    def test_auto_prefers_uniformized_where_capable(self):
        assert select_kernel("sqd", 2, False) == "uniformized"
        assert select_kernel("jsq", 2, False) == "uniformized"
        assert select_kernel("random", 1, False) == "uniformized"
        assert select_kernel("sqd", 5, True) == "uniformized"

    def test_auto_falls_back_to_python_for_deep_distinct_polling(self):
        assert select_kernel("sqd", 3, False) == "python"
        assert select_kernel("sqd", 50, False) == "python"

    def test_why_unsupported_names_the_reason(self):
        reason = kernel_why_unsupported("uniformized", "sqd", 3, False)
        assert reason is not None and "d <= 2" in reason
        assert kernel_why_unsupported("python", "sqd", 50, False) is None
        assert kernel_why_unsupported("auto", "sqd", 50, False) is None

    def test_resolve_rejects_incapable_combination(self):
        with pytest.raises(SpecError, match="cannot run policy"):
            resolve_kernel("uniformized", "sqd", 3, False)


class TestCapabilityErrors:
    def test_fleet_simulation_rejects_incapable_kernel(self):
        with pytest.raises(SpecError):
            FleetSimulation(num_servers=100, d=3, utilization=0.8, kernel="uniformized")

    def test_simulate_fleet_rejects_unknown_kernel(self):
        with pytest.raises(SpecError, match="unknown kernel"):
            simulate_fleet(num_servers=50, utilization=0.8, num_events=1000, kernel="warp")

    def test_api_surfaces_kernel_capability_as_spec_error(self):
        spec = ExperimentSpec.create(
            num_servers=100, d=3, utilization=0.8, num_events=2000, kernel="uniformized"
        )
        with pytest.raises(SpecError, match="uniformized"):
            run(spec, backend="fleet")

    def test_auto_kernel_runs_deep_distinct_polling_on_python(self):
        result = simulate_fleet(
            num_servers=100, d=3, utilization=0.8, num_events=5000, seed=1
        )
        assert result.kernel == "python"

    def test_grid_config_rejects_incapable_kernel_eagerly(self):
        from repro.ensemble.grid import GridConfig

        with pytest.raises(SpecError, match="d=3"):
            GridConfig(choices=(2, 3), kernel="uniformized")
        with pytest.raises(SpecError, match="unknown kernel"):
            GridConfig(kernel="unifromized")
        GridConfig(choices=(2, 3), kernel="auto")  # auto always resolves


class TestDeterminism:
    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_repeated_seeded_runs_are_bitwise_identical(self, kernel):
        results = [
            simulate_fleet(
                num_servers=400, d=2, utilization=0.9, num_events=30_000,
                seed=97, kernel=kernel,
            )
            for _ in range(2)
        ]
        first, second = results
        assert first.kernel == kernel
        assert first.mean_sojourn_time == second.mean_sojourn_time
        assert first.mean_jobs_in_system == second.mean_jobs_in_system
        assert first.simulated_time == second.simulated_time
        assert first.arrivals == second.arrivals
        assert first.departures == second.departures
        assert list(first.occupancy_fractions) == list(second.occupancy_fractions)

    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_ensemble_records_identical_across_worker_counts(self, kernel):
        spec = ExperimentSpec.create(
            num_servers=200, d=2, utilization=0.85, num_events=10_000,
            seed=5, kernel=kernel,
        )
        serial = run_ensemble(spec=spec, backend="fleet", replications=3, workers=1, seed=5)
        parallel = run_ensemble(spec=spec, backend="fleet", replications=3, workers=2, seed=5)
        assert serial.simulation_records() == parallel.simulation_records()
        assert all(record["kernel"] == kernel for record in serial.records)

    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_different_seeds_differ(self, kernel):
        a = simulate_fleet(num_servers=300, utilization=0.9, num_events=20_000, seed=1, kernel=kernel)
        b = simulate_fleet(num_servers=300, utilization=0.9, num_events=20_000, seed=2, kernel=kernel)
        assert a.mean_sojourn_time != b.mean_sojourn_time


class TestParity:
    """ISSUE 4 acceptance: seeded kernel agreement at (N=1000, d=2, rho=0.9)."""

    @pytest.fixture(scope="class")
    def estimates(self):
        results = {}
        for kernel in ("python", "uniformized"):
            spec = ExperimentSpec.create(
                num_events=60_000, seed=20160627, kernel=kernel, **PARITY_SPEC
            )
            results[kernel] = run(spec, backend="fleet", replications=5)
        return results

    def test_kernels_agree_within_confidence_intervals(self, estimates):
        py, uni = estimates["python"], estimates["uniformized"]
        assert math.isfinite(py.half_width) and math.isfinite(uni.half_width)
        gap = abs(py.mean_delay - uni.mean_delay)
        allowance = 1.5 * (py.half_width + uni.half_width)
        assert gap <= allowance, (
            f"python {py.mean_delay:.4f}±{py.half_width:.4f} vs "
            f"uniformized {uni.mean_delay:.4f}±{uni.half_width:.4f}: "
            f"gap {gap:.4f} > allowance {allowance:.4f}"
        )

    def test_kernel_recorded_in_extras_and_records(self, estimates):
        for kernel, result in estimates.items():
            assert result.extras["kernel"] == kernel
            assert all(record["kernel"] == kernel for record in result.records)

    def test_uniformized_estimate_inside_the_qbd_bracket(self):
        spec = ExperimentSpec.create(
            num_servers=50, d=2, utilization=0.85, num_events=60_000,
            seed=20160627, threshold=2, kernel="uniformized",
        )
        estimate = run(spec, backend="fleet", replications=4)
        bracket = run(spec, backend="qbd_bounds")
        lower = bracket.extras["lower_delay"]
        upper = bracket.extras["upper_delay"]
        assert lower <= estimate.mean_delay <= upper

    @pytest.mark.parametrize(
        "policy,kwargs",
        [
            ("jsq", {}),
            ("random", {}),
            ("sqd", {"with_replacement": True, "d": 3}),
        ],
    )
    def test_other_policies_agree_loosely(self, policy, kwargs):
        shared = dict(num_servers=500, utilization=0.85, num_events=60_000,
                      seed=7, policy=policy, **kwargs)
        py = simulate_fleet(kernel="python", **shared)
        uni = simulate_fleet(kernel="uniformized", **shared)
        assert uni.mean_delay == pytest.approx(py.mean_delay, rel=0.10)


class TestScenariosAndWindows:
    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_scenario_playback_runs_and_records_kernel(self, kernel):
        result = run_scenario(
            get_scenario("flash-crowd"), num_servers=300, seed=11, kernel=kernel
        )
        assert result.kernel == kernel
        assert result.total_events > 0
        assert math.isfinite(result.overall_mean_delay)

    def test_scenario_delays_agree_loosely_across_kernels(self):
        delays = {
            kernel: run_scenario(
                get_scenario("flash-crowd"), num_servers=300, seed=11, kernel=kernel
            ).overall_mean_delay
            for kernel in ("python", "uniformized")
        }
        assert delays["uniformized"] == pytest.approx(delays["python"], rel=0.15)

    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_until_time_lands_exactly_on_the_clock(self, kernel):
        simulation = FleetSimulation(num_servers=200, utilization=0.8, seed=3, kernel=kernel)
        simulation.advance(until_time=5.0)
        assert simulation.now == 5.0
        simulation.advance(until_time=7.5)
        assert simulation.now == 7.5

    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_max_events_is_exact(self, kernel):
        simulation = FleetSimulation(num_servers=200, utilization=0.8, seed=3, kernel=kernel)
        executed = simulation.advance(max_events=12_345)
        assert executed == 12_345
        assert simulation.events_executed == 12_345

    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_dead_state_jumps_to_until_time(self, kernel):
        simulation = FleetSimulation(num_servers=50, utilization=0.0, seed=3, kernel=kernel)
        executed = simulation.advance(until_time=4.0)
        assert executed == 0
        assert simulation.now == 4.0

    @pytest.mark.parametrize("kernel", ["python", "uniformized"])
    def test_statistics_windows_reset_cleanly(self, kernel):
        simulation = FleetSimulation(num_servers=200, utilization=0.9, seed=9, kernel=kernel)
        simulation.advance(max_events=5_000)
        simulation.reset_statistics()
        simulation.advance(max_events=20_000)
        result = simulation.statistics()
        assert result.num_events == 20_000
        assert result.kernel == kernel
        assert result.mean_servers == pytest.approx(200.0)
        fractions = list(result.occupancy_fractions)
        assert fractions[0] == pytest.approx(1.0)
        assert all(f >= -1e-12 for f in fractions)
