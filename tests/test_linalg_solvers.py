"""Tests for repro.linalg.solvers."""

import numpy as np
import pytest

from repro.linalg.solvers import (
    StationarySolveError,
    solve_constrained_left_nullspace,
    solve_left_nullspace,
    stationary_from_generator,
    stationary_from_transition_matrix,
)


def two_state_generator(a: float, b: float) -> np.ndarray:
    return np.array([[-a, a], [b, -b]])


class TestSolveLeftNullspace:
    def test_two_state_generator(self):
        Q = two_state_generator(2.0, 3.0)
        x = solve_left_nullspace(Q)
        assert np.allclose(x @ Q, 0.0, atol=1e-10)
        assert np.linalg.norm(x) > 0

    def test_requires_square(self):
        with pytest.raises(ValueError):
            solve_left_nullspace(np.ones((2, 3)))


class TestConstrainedNullspace:
    def test_normalization_with_weights(self):
        Q = two_state_generator(1.0, 1.0)
        weights = np.array([2.0, 2.0])
        x = solve_constrained_left_nullspace(Q, weights)
        assert np.isclose(x @ weights, 1.0)
        assert np.allclose(x @ Q, 0.0, atol=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_constrained_left_nullspace(np.eye(2), np.ones(3))


class TestStationaryFromGenerator:
    def test_two_state_birth_death(self):
        Q = two_state_generator(2.0, 3.0)
        pi = stationary_from_generator(Q)
        assert np.allclose(pi, [3 / 5, 2 / 5])

    def test_mm1_truncated_generator_is_geometric(self):
        lam, mu, size = 0.6, 1.0, 30
        Q = np.zeros((size, size))
        for i in range(size - 1):
            Q[i, i + 1] = lam
        for i in range(1, size):
            Q[i, i - 1] = mu
        np.fill_diagonal(Q, -Q.sum(axis=1))
        pi = stationary_from_generator(Q)
        rho = lam / mu
        expected = np.array([rho ** k for k in range(size)])
        expected /= expected.sum()
        assert np.allclose(pi, expected, atol=1e-8)

    def test_rejects_nonzero_row_sums(self):
        Q = np.array([[-1.0, 0.5], [1.0, -1.0]])
        with pytest.raises(ValueError):
            stationary_from_generator(Q)

    def test_rejects_negative_off_diagonal(self):
        Q = np.array([[1.0, -1.0], [1.0, -1.0]])
        with pytest.raises(ValueError):
            stationary_from_generator(Q)

    def test_distribution_sums_to_one_and_is_nonnegative(self):
        rng = np.random.default_rng(3)
        n = 8
        rates = rng.random((n, n))
        np.fill_diagonal(rates, 0.0)
        Q = rates - np.diag(rates.sum(axis=1))
        pi = stationary_from_generator(Q)
        assert np.isclose(pi.sum(), 1.0)
        assert np.all(pi >= 0)
        assert np.allclose(pi @ Q, 0.0, atol=1e-9)


class TestStationaryFromTransitionMatrix:
    def test_simple_chain(self):
        P = np.array([[0.5, 0.5], [0.25, 0.75]])
        pi = stationary_from_transition_matrix(P)
        assert np.allclose(pi, [1 / 3, 2 / 3])

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            stationary_from_transition_matrix(np.array([[0.5, 0.6], [0.5, 0.5]]))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            stationary_from_transition_matrix(np.array([[1.1, -0.1], [0.5, 0.5]]))

    def test_doubly_stochastic_is_uniform(self):
        P = np.array([[0.2, 0.3, 0.5], [0.5, 0.2, 0.3], [0.3, 0.5, 0.2]])
        pi = stationary_from_transition_matrix(P)
        assert np.allclose(pi, np.full(3, 1 / 3))
