"""Tests for the sweep-grid engine and the JSONL result store."""

import json

import pytest

from repro.ensemble.grid import GridConfig, run_grid
from repro.ensemble.results import ResultStore, git_describe, provenance, read_jsonl
from repro.ensemble.runner import run_ensemble
from repro.utils.validation import ValidationError


class TestGrid:
    def test_cartesian_expansion_skips_d_above_n(self):
        config = GridConfig(server_counts=(1, 10), choices=(2,), utilizations=(0.5, 0.9))
        points = config.points()
        # N=1 < d=2 is skipped; N=10 pairs with both utilizations.
        assert len(points) == 2
        assert all(point["labels"]["N"] == 10 for point in points)

    def test_grid_runs_all_points(self):
        config = GridConfig(
            server_counts=(20, 50),
            choices=(2,),
            utilizations=(0.7,),
            num_events=5_000,
            replications=2,
            seed=11,
        )
        result = run_grid(config)
        assert len(result.points) == 2
        assert result.total_replications == 4
        table = result.as_table()
        assert "mean_delay" in table and "replications" in table

    def test_grid_deterministic_across_worker_counts(self):
        config = dict(
            server_counts=(20, 40), utilizations=(0.8,), num_events=5_000, replications=2, seed=12
        )
        serial = run_grid(GridConfig(workers=1, **config))
        parallel = run_grid(GridConfig(workers=3, **config))
        assert [p.ensemble.simulation_records() for p in serial.points] == [
            p.ensemble.simulation_records() for p in parallel.points
        ]

    def test_point_reproducible_in_isolation(self):
        """A grid point's seed reproduces it exactly through run_ensemble."""
        config = GridConfig(
            server_counts=(30,), utilizations=(0.8,), num_events=5_000, replications=3, seed=13
        )
        grid = run_grid(config)
        point = grid.points[0]
        standalone = run_ensemble(
            "fleet",
            point.ensemble.config.parameters,
            replications=3,
            seed=point.ensemble.config.seed,
        )
        assert standalone.simulation_records() == point.ensemble.simulation_records()

    def test_extending_an_axis_keeps_existing_points_bitwise_stable(self):
        """Point seeds are content-addressed, not positional: adding a value
        to a swept axis must not reseed the points that already existed."""
        base = dict(server_counts=(20, 40), num_events=4_000, replications=2, seed=15)
        small = run_grid(GridConfig(utilizations=(0.8,), **base))
        extended = run_grid(GridConfig(utilizations=(0.8, 0.9), **base))
        stable = {
            tuple(sorted(point.labels.items())): point.ensemble.simulation_records()
            for point in extended.points
        }
        for point in small.points:
            key = tuple(sorted(point.labels.items()))
            assert stable[key] == point.ensemble.simulation_records()

    def test_scenario_grid(self):
        config = GridConfig(
            server_counts=(50,),
            scenarios=("constant",),
            replications=2,
            seed=14,
        )
        result = run_grid(config)
        assert len(result.points) == 1
        assert result.points[0].labels["scenario"] == "constant"
        assert result.points[0].summary_row()["mean_delay"] > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            GridConfig(replications=0)
        with pytest.raises(ValidationError):
            GridConfig(confidence=2.0)


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "runs.jsonl")
        store.append({"a": 1, "b": 2.5})
        store.append({"a": 2, "b": 3.5})
        records = store.load()
        assert len(store) == 2
        assert records[0]["a"] == 1 and records[1]["b"] == 3.5
        assert list(iter(store))[1]["a"] == 2

    def test_missing_file_loads_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent.jsonl").load() == []

    def test_append_ensemble_persists_every_replication(self, tmp_path):
        result = run_ensemble(
            "fleet",
            {"num_servers": 50, "utilization": 0.7, "num_events": 5_000},
            replications=3,
            seed=21,
        )
        store = ResultStore(tmp_path / "ens.jsonl")
        written = store.append_ensemble(result, labels={"experiment": "unit-test"})
        records = store.load()
        assert written == 3 and len(records) == 3
        first = records[0]
        # Self-contained: config, seeds, metrics and provenance on every line.
        assert first["kind"] == "fleet"
        assert first["parameters"]["num_servers"] == 50
        assert first["ensemble_seed"] == 21
        assert first["seed"] == result.records[0]["seed"]
        assert first["labels"] == {"experiment": "unit-test"}
        assert {"package_version", "git", "python", "timestamp"} <= set(first["provenance"])
        assert first["mean_delay"] == pytest.approx(result.records[0]["mean_delay"])

    def test_jsonl_is_one_object_per_line(self, tmp_path):
        path = tmp_path / "lines.jsonl"
        store = ResultStore(path)
        store.append({"x": 1})
        store.append({"x": 2})
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"x": 1}\n\n{"x": 2}\n')
        assert [record["x"] for record in read_jsonl(path)] == [1, 2]


class TestProvenance:
    def test_provenance_keys(self):
        info = provenance()
        assert set(info) == {"package_version", "git", "python", "timestamp"}
        assert info["package_version"]

    def test_git_describe_of_this_repo(self):
        # The test tree is a git checkout, so a describe string should exist;
        # outside one the function must degrade to None, not raise.
        description = git_describe(__file__)
        assert description is None or isinstance(description, str)

    def test_git_describe_outside_repo(self, tmp_path):
        assert git_describe(tmp_path) is None
