"""Tests for repro.utils.combinatorics."""

import math

import pytest

from repro.utils.combinatorics import (
    binomial,
    bounded_partitions,
    compositions,
    descending_tuples,
    multiset_permutation_count,
    num_bounded_descending_tuples,
)


class TestBinomial:
    def test_matches_math_comb_in_range(self):
        for n in range(0, 12):
            for k in range(0, n + 1):
                assert binomial(n, k) == math.comb(n, k)

    def test_out_of_range_arguments_return_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(-1, 0) == 0
        assert binomial(4, -2) == 0

    def test_paper_identity_sum_of_binomials(self):
        # sum_{i=d}^{N} C(i-1, d-1) = C(N, d) — the arrival rates sum to lambda*N.
        for n in range(1, 10):
            for d in range(1, n + 1):
                assert sum(binomial(i - 1, d - 1) for i in range(d, n + 1)) == binomial(n, d)

    def test_group_rate_telescoping_identity(self):
        # C(b, d) - C(a-1, d) = sum_{k=a}^{b} C(k-1, d-1) — the tie-group arrival rate.
        for n in range(2, 8):
            for d in range(1, n + 1):
                for a in range(1, n + 1):
                    for b in range(a, n + 1):
                        expected = sum(binomial(k - 1, d - 1) for k in range(a, b + 1))
                        assert binomial(b, d) - binomial(a - 1, d) == expected


class TestMultisetPermutationCount:
    def test_all_distinct(self):
        assert multiset_permutation_count([1, 1, 1]) == 6

    def test_with_repeats(self):
        assert multiset_permutation_count([2, 1]) == 3

    def test_single_group(self):
        assert multiset_permutation_count([4]) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            multiset_permutation_count([2, -1])


class TestDescendingTuples:
    def test_small_enumeration(self):
        assert list(descending_tuples(2, 1)) == [(1, 1), (1, 0), (0, 0)]

    def test_length_zero(self):
        assert list(descending_tuples(0, 5)) == [()]

    def test_counts_match_formula(self):
        for length in range(0, 5):
            for max_value in range(0, 5):
                produced = list(descending_tuples(length, max_value))
                assert len(produced) == num_bounded_descending_tuples(length, max_value)
                assert len(set(produced)) == len(produced)

    def test_all_tuples_are_sorted_and_bounded(self):
        for candidate in descending_tuples(4, 3):
            assert all(candidate[i] >= candidate[i + 1] for i in range(3))
            assert all(0 <= value <= 3 for value in candidate)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            list(descending_tuples(-1, 2))

    def test_min_value_respected(self):
        produced = list(descending_tuples(2, 3, min_value=2))
        assert all(min(t) >= 2 for t in produced)
        assert (3, 2) in produced and (2, 2) in produced


class TestBoundedPartitions:
    def test_exact_total_filter(self):
        result = bounded_partitions(3, 2, total=3)
        assert set(result) == {(2, 1, 0), (1, 1, 1)}

    def test_max_total_filter(self):
        result = bounded_partitions(2, 2, max_total=1)
        assert set(result) == {(0, 0), (1, 0)}

    def test_no_filters_counts(self):
        assert len(bounded_partitions(3, 2)) == num_bounded_descending_tuples(3, 2)


class TestCompositions:
    def test_total_two_two_parts(self):
        assert set(compositions(2, 2)) == {(0, 2), (1, 1), (2, 0)}

    def test_single_part(self):
        assert list(compositions(5, 1)) == [(5,)]

    def test_count_is_stars_and_bars(self):
        assert len(list(compositions(4, 3))) == math.comb(4 + 3 - 1, 3 - 1)

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError):
            list(compositions(3, 0))


class TestBlockSizeFormula:
    def test_block_size_matches_paper(self):
        # The repeating QBD block has C(N + T - 1, T) states.
        assert num_bounded_descending_tuples(3 - 1, 2) == math.comb(3 + 2 - 1, 2)
        assert num_bounded_descending_tuples(12 - 1, 3) == math.comb(12 + 3 - 1, 3)
