"""Tests for the generic CTMC/DTMC containers."""

import numpy as np
import pytest

from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import DiscreteTimeMarkovChain


def two_state_ctmc(a=2.0, b=3.0) -> ContinuousTimeMarkovChain:
    return ContinuousTimeMarkovChain(["up", "down"], {("up", "down"): a, ("down", "up"): b})


class TestCTMCConstruction:
    def test_states_and_rates_accessible(self):
        chain = two_state_ctmc()
        assert chain.states == ["up", "down"]
        assert chain.num_states == 2
        assert chain.rate("up", "down") == 2.0
        assert chain.rate("down", "down") == 0.0
        assert chain.exit_rate("up") == 2.0

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a", "a"], {})

    def test_unknown_state_in_rates_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a"], {("a", "b"): 1.0})

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain(["a", "b"], {("a", "b"): -1.0})

    def test_self_loops_are_dropped(self):
        chain = ContinuousTimeMarkovChain(["a", "b"], {("a", "a"): 5.0, ("a", "b"): 1.0, ("b", "a"): 1.0})
        assert chain.rate("a", "a") == 0.0

    def test_parallel_rates_accumulate(self):
        rates = {("a", "b"): 1.0}
        chain = ContinuousTimeMarkovChain(["a", "b"], rates)
        assert chain.rate("a", "b") == 1.0


class TestCTMCAnalysis:
    def test_generator_rows_sum_to_zero(self):
        chain = two_state_ctmc()
        Q = chain.generator_matrix()
        assert np.allclose(Q.sum(axis=1), 0.0)
        assert chain.is_conservative()

    def test_stationary_distribution_birth_death(self):
        chain = two_state_ctmc(2.0, 3.0)
        pi = chain.stationary_distribution()
        assert pi["up"] == pytest.approx(3 / 5)
        assert pi["down"] == pytest.approx(2 / 5)

    def test_expected_reward(self):
        chain = two_state_ctmc(1.0, 1.0)
        reward = chain.expected_reward(lambda s: 1.0 if s == "up" else 0.0)
        assert reward == pytest.approx(0.5)

    def test_uniformization_preserves_stationary_distribution(self):
        chain = two_state_ctmc(2.0, 5.0)
        dtmc = chain.uniformize()
        pi_ctmc = chain.stationary_distribution()
        pi_dtmc = dtmc.stationary_distribution()
        for state in chain.states:
            assert pi_ctmc[state] == pytest.approx(pi_dtmc[state], abs=1e-9)

    def test_uniformization_rate_must_cover_exit_rates(self):
        chain = two_state_ctmc(2.0, 5.0)
        with pytest.raises(ValueError):
            chain.uniformize(uniformization_rate=1.0)

    def test_from_transition_function_explores_reachable_states(self):
        # Truncated M/M/1 with capacity 5.
        def transitions(state):
            if state < 5:
                yield state + 1, 0.5
            if state > 0:
                yield state - 1, 1.0

        chain = ContinuousTimeMarkovChain.from_transition_function([0], transitions)
        assert chain.num_states == 6
        pi = chain.stationary_distribution()
        expected = np.array([0.5 ** k for k in range(6)])
        expected /= expected.sum()
        for k in range(6):
            assert pi[k] == pytest.approx(expected[k], abs=1e-10)

    def test_exploration_guard_triggers(self):
        def transitions(state):
            yield state + 1, 1.0

        with pytest.raises(RuntimeError):
            ContinuousTimeMarkovChain.from_transition_function([0], transitions, max_states=10)


class TestDTMC:
    def test_valid_construction_and_queries(self):
        P = np.array([[0.5, 0.5], [0.25, 0.75]])
        chain = DiscreteTimeMarkovChain(["a", "b"], P)
        assert chain.probability("a", "b") == 0.5
        assert chain.num_states == 2

    def test_invalid_rows_rejected(self):
        with pytest.raises(ValueError):
            DiscreteTimeMarkovChain(["a", "b"], np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_stationary_distribution(self):
        P = np.array([[0.5, 0.5], [0.25, 0.75]])
        chain = DiscreteTimeMarkovChain(["a", "b"], P)
        pi = chain.stationary_distribution()
        assert pi["a"] == pytest.approx(1 / 3)
        assert pi["b"] == pytest.approx(2 / 3)

    def test_step_distribution_moves_towards_stationary(self):
        P = np.array([[0.5, 0.5], [0.25, 0.75]])
        chain = DiscreteTimeMarkovChain(["a", "b"], P)
        stepped = chain.step_distribution({"a": 1.0}, steps=50)
        assert stepped["a"] == pytest.approx(1 / 3, abs=1e-6)

    def test_negative_steps_rejected(self):
        P = np.eye(2)
        chain = DiscreteTimeMarkovChain(["a", "b"], P)
        with pytest.raises(ValueError):
            chain.step_distribution({"a": 1.0}, steps=-1)
