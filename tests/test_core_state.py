"""Tests for ordered states and the precedence order."""

import pytest

from repro.core.state import (
    busy_servers,
    canonical_state,
    decrement_position,
    elementary_successors,
    imbalance,
    increment_position,
    is_ordered,
    is_valid_state,
    partial_sums,
    precedence_decomposition,
    precedes,
    shift_state,
    strictly_precedes,
    tie_groups,
    total_jobs,
    waiting_jobs,
)


class TestCanonicalState:
    def test_sorts_descending(self):
        assert canonical_state([1, 3, 2]) == (3, 2, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            canonical_state([1, -1])

    def test_idempotent(self):
        state = canonical_state([5, 5, 0])
        assert canonical_state(state) == state


class TestBasicQueries:
    def test_totals_and_waiting(self):
        state = (3, 1, 0)
        assert total_jobs(state) == 4
        assert waiting_jobs(state) == 2
        assert busy_servers(state) == 2
        assert imbalance(state) == 3

    def test_partial_sums(self):
        assert partial_sums((3, 2, 1)) == (3, 5, 6)

    def test_is_ordered(self):
        assert is_ordered((3, 3, 1))
        assert not is_ordered((1, 2))
        assert not is_ordered((1, -1))

    def test_tie_groups(self):
        assert tie_groups((3, 2, 2, 0)) == [(0, 0, 3), (1, 2, 2), (3, 3, 0)]
        assert tie_groups((2, 2, 2)) == [(0, 2, 2)]
        assert tie_groups((4,)) == [(0, 0, 4)]

    def test_increment_and_decrement_preserve_order(self):
        state = (2, 2, 1)
        assert increment_position(state, 0) == (3, 2, 1)
        assert decrement_position(state, 2) == (2, 2, 0)
        assert increment_position((1, 1, 1), 2) == (2, 1, 1)  # canonicalized

    def test_decrement_empty_position_rejected(self):
        with pytest.raises(ValueError):
            decrement_position((1, 0), 1)

    def test_shift_state(self):
        assert shift_state((2, 1, 0), 1) == (3, 2, 1)
        with pytest.raises(ValueError):
            shift_state((1, 0), -1)

    def test_is_valid_state(self):
        assert is_valid_state((3, 2, 1), 3)
        assert not is_valid_state((3, 2, 1), 4)
        assert not is_valid_state((1, 2, 3), 3)
        assert is_valid_state((3, 2, 1), 3, threshold=2)
        assert not is_valid_state((3, 2, 0), 3, threshold=2)


class TestPrecedenceOrder:
    def test_fewer_jobs_in_long_queues_precedes(self):
        # (m, m') in P means m is at least as preferable as m'.
        assert precedes((1, 1, 0), (2, 1, 0))
        assert precedes((2, 2, 2), (3, 3, 0))
        assert not precedes((3, 0, 0), (2, 2, 2))  # longest queue has more jobs

    def test_balanced_state_precedes_unbalanced_with_same_total(self):
        assert precedes((2, 2, 2), (3, 2, 1))
        assert precedes((3, 2, 1), (4, 1, 1))
        assert precedes((2, 2, 2), (6, 0, 0))

    def test_reflexive_and_antisymmetric(self):
        assert precedes((2, 1), (2, 1))
        assert not strictly_precedes((2, 1), (2, 1))
        assert strictly_precedes((1, 1), (2, 1))
        assert not (strictly_precedes((2, 1), (3, 0)) and strictly_precedes((3, 0), (2, 1)))

    def test_transitivity_on_a_chain(self):
        a, b, c = (1, 1, 1), (2, 1, 1), (2, 2, 1)
        assert precedes(a, b) and precedes(b, c) and precedes(a, c)

    def test_incomparable_pair(self):
        # (2,0) vs (1,1): partial sums (2,2) vs (1,2) — (1,1) precedes (2,0),
        # but neither dominates the other the opposite way.
        assert precedes((1, 1), (2, 0))
        assert not precedes((2, 0), (1, 1))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            precedes((1, 1), (1, 1, 1))


class TestElementaryPairsAndDecomposition:
    def test_elementary_successors_of_distinct_state(self):
        successors = elementary_successors((3, 2, 1))
        assert (3, 2, 2) in successors          # m + e_N
        assert (4, 1, 1) in successors          # m + e_1 - e_2
        assert (3, 3, 0) in successors          # m + e_2 - e_3
        assert all(precedes((3, 2, 1), s) for s in successors)

    def test_elementary_successors_skip_invalid_moves(self):
        successors = elementary_successors((2, 2, 0))
        # m + e_2 - e_3 = (2, 3, -1) is invalid and must be skipped.
        assert all(min(s) >= 0 and is_ordered(s) for s in successors)

    def test_decomposition_coefficients_nonnegative_iff_precedence(self):
        m, m_prime = (2, 1, 0), (3, 2, 1)
        coefficients = precedence_decomposition(m, m_prime)
        assert all(c >= 0 for c in coefficients)
        assert precedes(m, m_prime)

        m, m_prime = (3, 0, 0), (2, 2, 1)
        coefficients = precedence_decomposition(m, m_prime)
        assert any(c < 0 for c in coefficients)
        assert not precedes(m, m_prime)

    def test_decomposition_reconstructs_target(self):
        # Eq. (6): m' = m + s_N e_N + sum_j s_j (e_j - e_{j+1}).
        m, m_prime = (2, 1, 1), (3, 3, 1)
        s = precedence_decomposition(m, m_prime)
        n = len(m)
        reconstructed = list(m)
        reconstructed[n - 1] += s[n - 1]
        for j in range(n - 1):
            reconstructed[j] += s[j]
            reconstructed[j + 1] -= s[j]
        assert tuple(reconstructed) == m_prime
