"""Tests for the high-level analyze_sqd API."""

import pytest

from repro.core.analysis import analyze_sqd
from repro.core.qbd_solver import SolutionMethod
from repro.utils.validation import ValidationError


class TestAnalyzeSqd:
    def test_default_analysis_contains_bounds_and_asymptotic(self):
        analysis = analyze_sqd(num_servers=3, d=2, utilization=0.7, threshold=2)
        assert analysis.lower_delay > 1.0
        assert analysis.upper_delay is not None
        assert analysis.lower_delay < analysis.upper_delay
        assert analysis.asymptotic_delay > 1.0
        assert analysis.simulation is None
        assert analysis.exact is None

    def test_lower_bound_methods_agree(self):
        scalar = analyze_sqd(3, 2, 0.8, threshold=2, lower_bound_method=SolutionMethod.SCALAR_GEOMETRIC)
        matrix = analyze_sqd(3, 2, 0.8, threshold=2, lower_bound_method="matrix-geometric")
        assert scalar.lower_delay == pytest.approx(matrix.lower_delay, rel=1e-9)

    def test_optional_simulation_and_exact(self):
        analysis = analyze_sqd(
            num_servers=3,
            d=2,
            utilization=0.6,
            threshold=2,
            run_simulation=True,
            simulation_events=60_000,
            simulation_seed=3,
            compute_exact=True,
            exact_buffer=20,
        )
        assert analysis.simulated_delay is not None
        assert analysis.exact_delay is not None
        # Sandwich: lower <= exact <= upper; simulation agrees with exact.
        assert analysis.lower_delay <= analysis.exact_delay + 1e-9
        assert analysis.exact_delay <= analysis.upper_delay + 1e-9
        assert analysis.simulated_delay == pytest.approx(analysis.exact_delay, rel=0.1)

    def test_unstable_upper_bound_reported_not_raised(self):
        analysis = analyze_sqd(num_servers=3, d=2, utilization=0.9, threshold=1)
        assert analysis.upper_bound is None
        assert analysis.upper_bound_unstable
        assert analysis.lower_delay > 1.0

    def test_upper_bound_can_be_skipped(self):
        analysis = analyze_sqd(3, 2, 0.7, threshold=2, compute_upper_bound=False)
        assert analysis.upper_bound is None
        assert not analysis.upper_bound_unstable

    def test_summary_row_fields(self):
        analysis = analyze_sqd(3, 2, 0.7, threshold=2)
        row = analysis.summary_row()
        assert row["N"] == 3 and row["d"] == 2 and row["T"] == 2
        assert row["lower_bound"] == pytest.approx(analysis.lower_delay)
        assert row["simulation"] is None

    def test_unstable_model_rejected(self):
        with pytest.raises(ValidationError):
            analyze_sqd(3, 2, 1.0, threshold=2)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(Exception):
            analyze_sqd(3, 2, 0.5, threshold=0)
