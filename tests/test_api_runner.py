"""Tests for repro.run and the unified RunResult."""

import json
import math

import pytest

from repro import ExperimentSpec, RunResult, SpecError, run


FAST = dict(num_servers=50, utilization=0.8, num_events=5_000, seed=11)


class TestRun:
    def test_single_run_has_no_interval(self):
        result = run(ExperimentSpec.create(**FAST))
        assert result.backend == "fleet"
        assert result.replications == 1
        assert math.isnan(result.half_width)
        assert result.mean_delay > 1.0

    def test_replicated_run_reports_interval(self):
        result = run(ExperimentSpec.create(**FAST), replications=4)
        assert result.replications == 4
        assert math.isfinite(result.half_width)
        low, high = result.confidence_interval()
        assert low < result.mean_delay < high
        assert len(result.records) == 4

    def test_accepts_json_and_mapping_specs(self):
        spec = ExperimentSpec.create(**FAST)
        from_object = run(spec)
        from_json = run(spec.to_json())
        from_dict = run(spec.to_dict())
        assert from_object.mean_delay == from_json.mean_delay == from_dict.mean_delay

    def test_deterministic_backends_collapse_replications(self):
        result = run(
            ExperimentSpec.create(num_servers=6, utilization=0.7, threshold=2),
            backend="qbd_bounds",
            replications=8,
        )
        assert result.replications == 1
        assert result.answer == "bounds"
        assert result.extras["upper_delay"] >= result.mean_delay

    def test_explicit_backend_overrides_auto(self):
        result = run(ExperimentSpec.create(**FAST), backend="meanfield")
        assert result.backend == "meanfield"
        assert result.answer == "limit"

    def test_incapable_backend_raises_spec_error(self):
        with pytest.raises(SpecError, match="cannot run this spec"):
            run(ExperimentSpec.create(**FAST), backend="exact")

    def test_seed_override_changes_the_draw_and_is_recorded(self):
        spec = ExperimentSpec.create(**FAST)
        a = run(spec)
        b = run(spec, seed=999)
        c = run(spec)
        assert a.mean_delay == c.mean_delay  # spec seed is the default
        assert a.mean_delay != b.mean_delay
        # The override lands in the result's spec, so the exported spec
        # reproduces exactly what ran.
        assert b.spec.seed == 999
        assert run(b.spec).mean_delay == b.mean_delay

    def test_run_is_deterministic_across_worker_counts(self):
        spec = ExperimentSpec.create(**FAST)
        serial = run(spec, replications=4, workers=1)
        parallel = run(spec, replications=4, workers=3)
        assert serial.mean_delay == parallel.mean_delay
        assert serial.half_width == parallel.half_width

    def test_adaptive_precision_mode(self):
        result = run(
            ExperimentSpec.create(**FAST),
            replications=2,
            target_relative_half_width=0.5,
            max_replications=8,
        )
        assert 2 <= result.replications <= 8

    def test_invalid_replications_rejected(self):
        with pytest.raises(SpecError, match="replications"):
            run(ExperimentSpec.create(**FAST), replications=0)

    def test_garbage_spec_rejected(self):
        with pytest.raises(SpecError, match="spec must be"):
            run(42)


class TestRunResult:
    def test_json_round_trips_through_shared_dialect(self):
        result = run(ExperimentSpec.create(**FAST), replications=2)
        payload = json.loads(result.to_json())
        assert payload["backend"] == "fleet"
        assert payload["replications"] == 2
        assert payload["spec"]["system"]["num_servers"] == 50
        assert {"package_version", "git", "python", "timestamp"} <= set(payload["provenance"])

    def test_nan_and_inf_serialize_as_strings(self):
        bracket = run(
            ExperimentSpec.create(num_servers=3, utilization=0.9, threshold=1),
            backend="qbd_bounds",
        )
        payload = json.loads(bracket.to_json())
        # This configuration's upper bound is unstable -> inf, and a single
        # run has no CI -> nan; both must survive strict JSON parsing.
        assert payload["extras"]["upper_delay"] == "inf"
        assert payload["half_width"] == "nan"

    def test_write_json(self, tmp_path):
        result = run(ExperimentSpec.create(**FAST))
        path = result.write_json(tmp_path / "out" / "result.json")
        assert path.exists()
        assert json.loads(path.read_text())["backend"] == "fleet"

    def test_str_and_table(self):
        result = run(ExperimentSpec.create(**FAST), replications=3)
        assert "3 replications" in str(result)
        table = result.as_table()
        assert "mean_delay" in table and "fleet" in table
