"""Tests for the experiment harnesses (Figures 9, 10 and the ablations)."""

import math

import pytest

from repro.experiments.ablations import (
    run_improved_vs_matrix_geometric,
    run_power_of_d_gap,
    run_threshold_sweep,
)
from repro.experiments.figure9 import Figure9Config, figure9a_config, figure9b_config, run_figure9
from repro.experiments.figure10 import Figure10Config, panel_config, run_figure10


class TestFigure9Harness:
    def test_small_sweep_produces_all_series(self):
        config = Figure9Config(
            utilization=0.75,
            choices=(2, 5),
            server_counts=(5, 10, 20),
            num_events=20_000,
        )
        result = run_figure9(config)
        assert set(result.relative_errors) == {2, 5}
        assert len(result.relative_errors[2]) == 3
        # d=5 skips N < 5 — here none are skipped.
        assert len(result.relative_errors[5]) == 3
        assert all(error >= 0 for errors in result.relative_errors.values() for error in errors)

    def test_server_counts_below_d_are_skipped(self):
        config = Figure9Config(utilization=0.75, choices=(10,), server_counts=(5, 10, 15), num_events=10_000)
        result = run_figure9(config)
        assert result.server_counts_for(10) == [10, 15]
        assert len(result.relative_errors[10]) == 2

    def test_error_is_large_for_small_n_high_load(self):
        # The paper's headline observation: at rho=0.95 and small N the
        # asymptotic approximation is off by tens of percent.
        config = Figure9Config(utilization=0.95, choices=(2,), server_counts=(5, 150), num_events=150_000)
        result = run_figure9(config)
        error_small_n = result.relative_errors[2][0]
        error_large_n = result.relative_errors[2][1]
        assert error_small_n > 10.0
        assert error_large_n < error_small_n

    def test_named_configs(self):
        assert figure9a_config().utilization == 0.75
        assert figure9b_config().utilization == 0.95

    def test_table_rendering(self):
        config = Figure9Config(utilization=0.75, choices=(2,), server_counts=(5, 10), num_events=10_000)
        text = run_figure9(config).as_table()
        assert "Figure 9" in text and "d=2 err%" in text


class TestFigure10Harness:
    def test_small_panel_runs_and_sandwiches(self):
        config = Figure10Config(
            num_servers=3,
            threshold=2,
            utilizations=(0.3, 0.6, 0.8),
            simulation_events=80_000,
        )
        result = run_figure10(config)
        assert len(result.lower_bound) == 3
        assert result.sandwich_holds(slack=0.05)
        # Lower bound and asymptotic increase with utilization.
        assert result.lower_bound == sorted(result.lower_bound)
        assert result.asymptotic == sorted(result.asymptotic)

    def test_upper_bound_reports_inf_when_unstable(self):
        config = Figure10Config(
            num_servers=3,
            threshold=1,
            utilizations=(0.9,),
            run_simulation=False,
        )
        result = run_figure10(config)
        assert math.isinf(result.upper_bound[0])

    def test_simulation_can_be_disabled(self):
        config = Figure10Config(num_servers=3, threshold=2, utilizations=(0.5,), run_simulation=False)
        result = run_figure10(config)
        assert math.isnan(result.simulation[0])

    def test_panel_configs_match_paper(self):
        assert (panel_config("a").num_servers, panel_config("a").threshold) == (3, 2)
        assert (panel_config("b").num_servers, panel_config("b").threshold) == (3, 3)
        assert (panel_config("c").num_servers, panel_config("c").threshold) == (6, 3)
        assert (panel_config("d").num_servers, panel_config("d").threshold) == (12, 3)
        with pytest.raises(ValueError):
            panel_config("e")

    def test_table_rendering(self):
        config = Figure10Config(num_servers=3, threshold=2, utilizations=(0.5,), run_simulation=False)
        text = run_figure10(config).as_table()
        assert "Figure 10" in text and "utilization" in text


class TestAblations:
    def test_threshold_sweep_monotone_upper_bounds(self):
        result = run_threshold_sweep(
            num_servers=3, d=2, utilization=0.7, thresholds=(2, 3), simulation_events=50_000
        )
        assert result.block_sizes == [6, 10]
        finite_uppers = [u for u in result.upper_bounds if math.isfinite(u)]
        assert finite_uppers == sorted(finite_uppers, reverse=True)
        assert all(lower <= result.simulation * 1.05 for lower in result.lower_bounds)
        assert "Ablation A1" in result.as_table()

    def test_improved_vs_matrix_geometric_agree(self):
        result = run_improved_vs_matrix_geometric(num_servers=3, d=2, threshold=2, utilizations=(0.5, 0.8))
        assert result.max_absolute_difference < 1e-8
        assert "Theorem 3" in result.as_table()

    def test_power_of_d_gap_orders_policies(self):
        result = run_power_of_d_gap(
            num_servers=6, utilization=0.85, choices=(1, 2), threshold=2, simulation_events=80_000
        )
        assert result.simulations[0] > result.simulations[1]
        assert result.lower_bounds[0] > result.lower_bounds[1]
        assert "power-of-d" in result.as_table()
