"""Ablation benchmarks: threshold tradeoff, Theorem 3 vs Theorem 1, power of d.

These regenerate the quantitative side of the design discussions in
Sections V-VI of the paper (accuracy/complexity tradeoff of the upper bound,
the cheap improved lower bound, and the finite-N power-of-d effect).

Run with::

    pytest benchmarks/test_bench_ablations.py --benchmark-only
"""

from __future__ import annotations

import math

from conftest import env_int

from repro.experiments.ablations import (
    run_improved_vs_matrix_geometric,
    run_power_of_d_gap,
    run_threshold_sweep,
)

EVENTS = env_int("REPRO_BENCH_EVENTS", 120_000)


def test_upper_bound_threshold_sweep(benchmark, report):
    """A1: bound tightness and block size as the threshold T grows (N=3, SQ(2), rho=0.8)."""
    result = benchmark.pedantic(
        run_threshold_sweep,
        kwargs=dict(num_servers=3, d=2, utilization=0.8, thresholds=(1, 2, 3, 4, 5), simulation_events=EVENTS),
        rounds=1,
        iterations=1,
    )
    report("ablation_threshold_sweep", result.as_table())
    finite_uppers = [u for u in result.upper_bounds if math.isfinite(u)]
    assert finite_uppers == sorted(finite_uppers, reverse=True)
    assert result.block_sizes == sorted(result.block_sizes)
    assert all(lower <= result.simulation * 1.05 for lower in result.lower_bounds)


def test_improved_vs_matrix_geometric(benchmark, report):
    """A2: Theorem 3 (scalar tail) against Theorem 1 (matrix-geometric tail)."""
    result = benchmark.pedantic(
        run_improved_vs_matrix_geometric,
        kwargs=dict(num_servers=6, d=2, threshold=3, utilizations=(0.3, 0.5, 0.7, 0.9)),
        rounds=1,
        iterations=1,
    )
    report("ablation_improved_vs_matrix", result.as_table())
    assert result.max_absolute_difference < 1e-6


def test_power_of_d_gap(benchmark, report):
    """A3: the finite-N power-of-d effect (N=10, rho=0.9)."""
    result = benchmark.pedantic(
        run_power_of_d_gap,
        kwargs=dict(num_servers=10, utilization=0.9, choices=(1, 2, 3), threshold=2, simulation_events=EVENTS),
        rounds=1,
        iterations=1,
    )
    report("ablation_power_of_d", result.as_table())
    assert result.simulations[0] > result.simulations[1] > result.simulations[2]
    # The d=1 -> d=2 step captures the bulk of the improvement (power of two).
    gain_two = result.simulations[0] - result.simulations[1]
    gain_three = result.simulations[1] - result.simulations[2]
    assert gain_two > gain_three
