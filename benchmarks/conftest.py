"""Shared fixtures for the benchmark harnesses.

Each benchmark regenerates one of the paper's figures/tables (see DESIGN.md's
per-experiment index), prints the reproduced series to the terminal and also
writes it to ``benchmarks/results/`` so EXPERIMENTS.md can reference the
numbers.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, capsys):
    """Return a callable that both prints a table and persists it to a file."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture
def report_json(results_dir):
    """Persist a machine-readable benchmark record as ``BENCH_<name>.json``.

    Every record carries the git SHA and a timestamp next to the measured
    numbers, so the performance trajectory is trackable across PRs (the CI
    ``bench-smoke`` job uploads these files as artifacts).
    """
    from repro.ensemble.results import git_describe

    def _report(name: str, payload: dict) -> Path:
        record = {
            "benchmark": name,
            "git": git_describe(),
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        record.update(payload)
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path

    return _report


def env_int(name: str, default: int) -> int:
    """Read an integer tuning knob from the environment (e.g. REPRO_BENCH_EVENTS)."""
    value = os.environ.get(name)
    return int(value) if value else default


def smoke_mode() -> bool:
    """True in the CI ``bench-smoke`` job: keep the tables and JSON output,
    but relax the absolute speedup assertions that only hold on quiet,
    full-size hardware (smoke still fails if ``uniformized`` is slower than
    ``python``)."""
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))
