"""Shared fixtures for the benchmark harnesses.

Each benchmark regenerates one of the paper's figures/tables (see DESIGN.md's
per-experiment index), prints the reproduced series to the terminal and also
writes it to ``benchmarks/results/`` so EXPERIMENTS.md can reference the
numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir, capsys):
    """Return a callable that both prints a table and persists it to a file."""

    def _report(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


def env_int(name: str, default: int) -> int:
    """Read an integer tuning knob from the environment (e.g. REPRO_BENCH_EVENTS)."""
    value = os.environ.get(name)
    return int(value) if value else default
