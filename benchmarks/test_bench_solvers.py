"""Micro-benchmarks of the analytical machinery itself.

Not a figure from the paper, but the quantitative backing for its complexity
remarks: the QBD block size grows as C(N+T-1, T), the logarithmic-reduction
G computation dominates the matrix-geometric solve, and the Theorem 3 scalar
solve avoids it entirely.

Run with::

    pytest benchmarks/test_bench_solvers.py --benchmark-only
"""

from __future__ import annotations

from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.core.qbd_solver import SolutionMethod, solve_bound_model
from repro.simulation.gillespie import simulate_sqd_ctmc


def test_lower_bound_matrix_geometric_n6_t3(benchmark):
    """Theorem 1 solve for N=6, T=3 (block size 56)."""
    model = SQDModel(num_servers=6, d=2, utilization=0.9)
    blocks = LowerBoundModel(model, 3).qbd_blocks()
    solution = benchmark(lambda: solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC))
    assert solution.mean_delay > 1.0


def test_lower_bound_improved_n6_t3(benchmark):
    """Theorem 3 solve for N=6, T=3 — same answer, no R matrix."""
    model = SQDModel(num_servers=6, d=2, utilization=0.9)
    blocks = LowerBoundModel(model, 3).qbd_blocks()
    solution = benchmark(lambda: solve_improved_lower_bound(model, 3, blocks=blocks))
    assert solution.mean_delay > 1.0


def test_block_assembly_n12_t3(benchmark):
    """Generator-block assembly for the paper's largest configuration (N=12, T=3, block size 364)."""
    model = SQDModel(num_servers=12, d=2, utilization=0.9)
    blocks = benchmark.pedantic(lambda: LowerBoundModel(model, 3).qbd_blocks(), rounds=1, iterations=1)
    assert blocks.block_size == 364


def test_upper_bound_solve_n3_t3(benchmark):
    """Upper bound (Theorem 1) solve for N=3, T=3."""
    model = SQDModel(num_servers=3, d=2, utilization=0.8)
    blocks = UpperBoundModel(model, 3).qbd_blocks()
    solution = benchmark(lambda: solve_bound_model(blocks))
    assert solution.mean_delay > 1.0


def test_ctmc_simulation_throughput(benchmark):
    """CTMC simulator throughput at the Figure 9 scale (N=100, d=2)."""
    result = benchmark.pedantic(
        lambda: simulate_sqd_ctmc(num_servers=100, d=2, utilization=0.95, num_events=50_000, seed=1),
        rounds=1,
        iterations=1,
    )
    assert result.mean_delay > 1.0
