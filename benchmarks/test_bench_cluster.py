"""Benchmark harness for the job-level cluster DES: the micro-opt ledger.

ISSUE 4's satellite micro-optimizations of :mod:`repro.simulation.cluster`
and its event scheduler —

* random-variate blocks converted to plain lists once per refill (no numpy
  scalar extraction + ``float()`` per job),
* bound methods and attribute chains hoisted out of the arrival/departure
  handlers,
* heap entries as plain ``(time, sequence, event)`` tuples instead of a
  dataclass with a Python-level ``__lt__`` (the heap sift comparisons are
  the single hottest non-policy line of the simulator)

— measured on this machine at 42.9k -> 51.5k jobs/s (+20%) with bitwise
identical seeded output (``mean_delay = 2.662707`` before and after; the
tier-1 suite pins the law).  This harness regenerates the measurement so
the number stays current in ``benchmarks/results/cluster_throughput.txt``.

Run with::

    pytest benchmarks/test_bench_cluster.py --benchmark-only
"""

from __future__ import annotations

import time

from conftest import env_int

from repro.policies import PowerOfD
from repro.simulation.cluster import ClusterSimulation
from repro.simulation.workloads import poisson_exponential_workload
from repro.utils.tables import format_table

JOBS = env_int("REPRO_BENCH_CLUSTER_JOBS", 60_000)
NUM_SERVERS = 100
UTILIZATION = 0.9
REPEATS = 3


def _run_once():
    workload = poisson_exponential_workload(
        num_servers=NUM_SERVERS, utilization=UTILIZATION
    )
    simulation = ClusterSimulation(
        workload, PowerOfD(2), seed=42, warmup_jobs=JOBS // 10
    )
    started = time.perf_counter()
    result = simulation.run(JOBS)
    return time.perf_counter() - started, result


def test_cluster_throughput(benchmark, report):
    """Job-level DES throughput; the seeded delay pins the law."""

    def run_all():
        return [_run_once() for _ in range(REPEATS)]

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    best_wall = min(wall for wall, _ in runs)
    result = runs[0][1]

    rows = [
        [NUM_SERVERS, UTILIZATION, JOBS, f"{JOBS / best_wall:,.0f}", result.mean_sojourn_time]
    ]
    table = format_table(
        ["N", "rho", "jobs", "jobs/s (best of 3)", "mean delay (seed 42)"],
        rows,
        title=(
            "cluster DES throughput, SQ(2) — micro-opt ledger: 42.9k jobs/s "
            "before ISSUE 4 (list-buffered variates, hoisted handlers, tuple heap)"
        ),
    )
    report("cluster_throughput", table)

    # All runs are the same seeded simulation: identical laws, and the
    # throughput must not have regressed catastrophically (loose 2x guard
    # against accidental re-introduction of per-event allocation).
    delays = {r.mean_sojourn_time for _, r in runs}
    assert len(delays) == 1
    assert JOBS / best_wall > 10_000, f"cluster DES at {JOBS / best_wall:,.0f} jobs/s"
