"""Benchmark harness for the fault-injection hooks: disabled means free.

The resilience hooks (`repro.faults.maybe_fire`) ride on every journal
append, record append and worker message of a campaign.  Their contract is
*zero-cost when disabled*: one module-global load and an ``is None`` test.
This harness drives the exact campaign workload ``BENCH_campaign.json``
measures (same grid, same events, same seed), min-of-N, with the hooks in
their production (disarmed) state, and asserts the measured tasks/s is
within 2 % of that baseline.  An armed-but-never-matching plan is timed
too, as the reported (unasserted) cost of leaving chaos armed.

Run with::

    pytest benchmarks/test_bench_faults.py --benchmark-only

(Alphabetical collection runs ``test_bench_ensemble.py`` first, so in a
full benchmark session the ``BENCH_campaign.json`` baseline is fresh from
the same machine and the same workload sizes.)
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import env_int, smoke_mode

from repro.campaigns import run_campaign
from repro.ensemble.grid import GridConfig
from repro.faults import FaultPlan, FaultSpec, clear, install
from repro.utils.tables import format_table

CAMPAIGN_EVENTS = env_int("REPRO_BENCH_CAMPAIGN_EVENTS", 20_000)
CAMPAIGN_REPLICATIONS = env_int("REPRO_BENCH_CAMPAIGN_REPLICATIONS", 3)
ROUNDS = env_int("REPRO_BENCH_FAULTS_ROUNDS", 5)
SEED = 20160627
MAX_OVERHEAD = 0.02

BASELINE_PATH = Path(__file__).parent / "results" / "BENCH_campaign.json"


def make_grid():
    # Byte-for-byte the BENCH_campaign workload, so tasks/s is comparable.
    return GridConfig(
        server_counts=(50, 100),
        choices=(2,),
        utilizations=(0.8, 0.9),
        num_events=CAMPAIGN_EVENTS,
        replications=CAMPAIGN_REPLICATIONS,
        seed=SEED,
        workers=1,
    )


def _time_campaign(directory: Path) -> float:
    started = time.perf_counter()
    result = run_campaign(grid=make_grid(), directory=directory)
    elapsed = time.perf_counter() - started
    assert result.complete and result.status == "complete"
    return elapsed


def test_disabled_hooks_cost_nothing(benchmark, report, report_json, tmp_path):
    """Campaign tasks/s with disarmed hooks must match the baseline < 2%."""
    total_tasks = 4 * CAMPAIGN_REPLICATIONS

    def run_all():
        clear()
        _time_campaign(tmp_path / "warmup")  # pay one-time import/alloc costs
        disarmed, armed = [], []
        for round_index in range(ROUNDS):
            clear()  # the production state: no plan, hooks short-circuit
            disarmed.append(_time_campaign(tmp_path / f"disarmed{round_index}"))
            # Armed with a plan that can never match: the full select() path
            # runs on every hook without any fault actually firing.
            install(FaultPlan(seed=1, faults=[
                FaultSpec(site="journal.append", kind="io_error",
                          match="never-matches-any-task", times=None)
            ]))
            try:
                armed.append(_time_campaign(tmp_path / f"armed{round_index}"))
            finally:
                clear()
        return min(disarmed), min(armed)

    disarmed_seconds, armed_seconds = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    disarmed_rate = total_tasks / disarmed_seconds
    armed_rate = total_tasks / armed_seconds

    baseline_rate = None
    overhead = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
        same_workload = baseline.get("workload", {}) == {
            "grid_points": 4,
            "replications_per_point": CAMPAIGN_REPLICATIONS,
            "events_per_replication": CAMPAIGN_EVENTS,
        }
        if same_workload:
            baseline_rate = baseline["tasks_per_second"]
            overhead = baseline_rate / disarmed_rate - 1.0

    rows = [
        ["hooks disarmed", f"{disarmed_seconds:.3f}", f"{disarmed_rate:.1f}"],
        ["armed, never firing", f"{armed_seconds:.3f}", f"{armed_rate:.1f}"],
        [
            "BENCH_campaign baseline",
            "-",
            f"{baseline_rate:.1f}" if baseline_rate else "(absent)",
        ],
    ]
    report(
        "faults_overhead",
        format_table(
            ["campaign", "min seconds", "tasks/s"],
            rows,
            title=(
                f"fault-hook overhead: 4 points x {CAMPAIGN_REPLICATIONS} "
                f"replications x {CAMPAIGN_EVENTS} events, min of {ROUNDS}"
            ),
        ),
    )
    report_json(
        "faults",
        {
            "workload": {
                "grid_points": 4,
                "replications_per_point": CAMPAIGN_REPLICATIONS,
                "events_per_replication": CAMPAIGN_EVENTS,
            },
            "rounds": ROUNDS,
            "status": "ok",
            "disarmed_tasks_per_second": disarmed_rate,
            "armed_nonfiring_tasks_per_second": armed_rate,
            "baseline_tasks_per_second": baseline_rate,
            "overhead_vs_baseline": overhead,
            "max_overhead_asserted": MAX_OVERHEAD,
        },
    )

    if overhead is not None and not smoke_mode():
        assert overhead < MAX_OVERHEAD, (
            f"disabled fault hooks cost {overhead:.1%} of campaign throughput "
            f"(baseline {baseline_rate:.1f} tasks/s, measured {disarmed_rate:.1f})"
        )
