"""Benchmark harness for Figure 9: asymptotic-delay relative error vs simulation.

Regenerates both panels of the paper's Figure 9 (relative error of Eq. (16)
against finite-N simulation for d in {2, 5, 10, 25, 50}).  The number of
simulated events per point defaults to a laptop-friendly value and can be
raised towards the paper's 10^8 jobs with ``REPRO_BENCH_EVENTS``.

Run with::

    pytest benchmarks/test_bench_figure9.py --benchmark-only
"""

from __future__ import annotations

from conftest import env_int

from repro.experiments.figure9 import Figure9Config, run_figure9

EVENTS = env_int("REPRO_BENCH_EVENTS", 120_000)
SERVER_COUNTS = (10, 25, 50, 100, 175, 250)
CHOICES = (2, 5, 10, 25, 50)


def _run_panel(utilization: float):
    config = Figure9Config(
        utilization=utilization,
        choices=CHOICES,
        server_counts=SERVER_COUNTS,
        num_events=EVENTS,
    )
    return run_figure9(config)


def test_figure9a(benchmark, report):
    """Figure 9(a): rho = 0.75."""
    result = benchmark.pedantic(_run_panel, args=(0.75,), rounds=1, iterations=1)
    report("figure9a", result.as_table())
    # Qualitative shape check: the error curves are non-trivial and decay with N.
    for d in CHOICES:
        errors = result.relative_errors[d]
        assert len(errors) == len(result.server_counts_for(d))
        assert max(errors) < 60.0  # moderate utilization: errors stay modest


def test_figure9b(benchmark, report):
    """Figure 9(b): rho = 0.95 — the regime where the asymptotics mislead."""
    result = benchmark.pedantic(_run_panel, args=(0.95,), rounds=1, iterations=1)
    report("figure9b", result.as_table())
    errors_d2 = dict(zip(result.server_counts_for(2), result.relative_errors[2]))
    # The paper reports errors of tens of percent for small N at rho=0.95 and
    # a clear decay towards large N.
    assert errors_d2[10] > 10.0
    assert errors_d2[250] < errors_d2[10]
