"""Benchmark harness for the ensemble runner: parallel replication speedup.

Replications are embarrassingly parallel — K independent simulations share no
state — so the fan-out should scale near-linearly in worker count until the
machine runs out of cores.  This harness times the same 8-replication fleet
ensemble at increasing worker counts, reports the speedup table, and asserts
a loose lower bound (>= 3x at 4 workers) *only when the machine actually has
the cores*; on smaller runners it still verifies the parallel path returns
bitwise-identical simulation records, which is the ensemble determinism
contract.

Run with::

    pytest benchmarks/test_bench_ensemble.py --benchmark-only
"""

from __future__ import annotations

import os
import time

from conftest import env_int, smoke_mode

from repro.api import ExperimentSpec
from repro.ensemble.runner import run_ensemble
from repro.utils.tables import format_table

EVENTS = env_int("REPRO_BENCH_ENSEMBLE_EVENTS", 400_000)
REPLICATIONS = env_int("REPRO_BENCH_ENSEMBLE_REPLICATIONS", 8)
SEED = 20160627
SPEC = ExperimentSpec.create(
    num_servers=1_000, d=2, utilization=0.9, num_events=EVENTS, seed=SEED
)


def _time_ensemble(workers: int):
    started = time.perf_counter()
    result = run_ensemble(
        spec=SPEC, backend="fleet", replications=REPLICATIONS, workers=workers, seed=SEED
    )
    return time.perf_counter() - started, result


def _available_cores() -> int:
    """Cores this process may actually use — os.cpu_count() overcounts in
    cgroup-limited containers (it reports the host's cores)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_ensemble_speedup_in_workers(benchmark, report, report_json):
    """Wall-clock must drop near-linearly in workers (where cores exist)."""
    cores = _available_cores()
    worker_counts = sorted({1, 2, 4} & set(range(1, cores + 1))) or [1]
    if cores >= 4 and 4 not in worker_counts:
        worker_counts.append(4)

    def run_all():
        return [(_time_ensemble(workers), workers) for workers in worker_counts]

    timings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    serial_seconds = timings[0][0][0]
    rows = []
    json_rows = []
    for (seconds, result), workers in timings:
        rows.append(
            [
                workers,
                f"{seconds:.2f}",
                f"{serial_seconds / seconds:.2f}x",
                f"{result.delay.mean:.4f} ± {result.delay.half_width:.4f}",
            ]
        )
        json_rows.append(
            {
                "workers": workers,
                "wall_seconds": seconds,
                "speedup": serial_seconds / seconds,
                "mean_delay": result.delay.mean,
                "delay_half_width": result.delay.half_width,
                "kernel": result.records[0].get("kernel"),
            }
        )
    table = format_table(
        ["workers", "seconds", "speedup", "mean delay ± 95% CI"],
        rows,
        title=(
            f"ensemble runner speedup: {REPLICATIONS} replications x {EVENTS} events, "
            f"N={SPEC.system.num_servers}, rho={SPEC.system.utilization} "
            f"({cores} cores available)"
        ),
    )
    if cores < 4:
        # An honest marker beats a one-row table that looks like a
        # regression: the speedup claim is untestable without the cores.
        table += (
            f"\nSKIPPED: parallel speedup not measurable on this machine "
            f"({cores} core{'s' if cores != 1 else ''} available, need >= 4 "
            f"for the full table; determinism across worker counts was still verified)"
        )
    report("ensemble_speedup", table)

    report_json(
        "ensemble",
        {
            "workload": {
                "num_servers": SPEC.system.num_servers,
                "utilization": SPEC.system.utilization,
                "events_per_replication": EVENTS,
                "replications": REPLICATIONS,
            },
            "cores_available": cores,
            "speedup_measurable": cores >= 4,
            # An explicit status beats inferring it from the result rows:
            # "skipped" means the speedup claim was untestable on this box
            # (too few cores), not that the benchmark failed or regressed.
            "status": "ok" if cores >= 4 else "skipped",
            "results": json_rows,
        },
    )

    # Determinism across worker counts is asserted unconditionally.
    records = [result.simulation_records() for (_, result), _ in timings]
    assert all(chunk == records[0] for chunk in records[1:])

    # The speedup bound only holds where the hardware exists: ISSUE 2's
    # acceptance criterion (>= 3x at 4 workers) is asserted loosely and only
    # on machines with >= 4 cores, so single-core CI boxes don't fail on
    # physics they cannot change.  Smoke mode skips the absolute bounds
    # entirely — its reduced workload is dominated by pool start-up, which
    # measures process spawning, not the runner.
    if smoke_mode():
        return
    if cores >= 4:
        four_worker_seconds = next(
            seconds for (seconds, _), workers in timings if workers == 4
        )
        assert serial_seconds / four_worker_seconds >= 3.0, (
            f"expected >= 3x speedup at 4 workers, got "
            f"{serial_seconds / four_worker_seconds:.2f}x"
        )
    elif cores >= 2:
        two_worker_seconds = next(
            seconds for (seconds, _), workers in timings if workers == 2
        )
        assert serial_seconds / two_worker_seconds >= 1.3, (
            f"expected >= 1.3x speedup at 2 workers, got "
            f"{serial_seconds / two_worker_seconds:.2f}x"
        )


CAMPAIGN_EVENTS = env_int("REPRO_BENCH_CAMPAIGN_EVENTS", 20_000)
CAMPAIGN_REPLICATIONS = env_int("REPRO_BENCH_CAMPAIGN_REPLICATIONS", 3)


def test_campaign_throughput_and_resume_overhead(benchmark, report, report_json, tmp_path):
    """Campaign orchestration must cost little next to the simulations.

    Times the same small sweep three ways — uninterrupted, interrupted
    halfway + resumed, and a resume of an already-finished directory — and
    reports points/s plus the resume overhead ratio.  The durability
    machinery (journal appends, lease bookkeeping, accumulator folds) rides
    on every task, so interrupted+resumed over uninterrupted directly
    measures what a checkpoint costs.
    """
    from repro.campaigns import campaign_fingerprint, resume_campaign, run_campaign
    from repro.ensemble.grid import GridConfig

    def make_grid():
        return GridConfig(
            server_counts=(50, 100),
            choices=(2,),
            utilizations=(0.8, 0.9),
            num_events=CAMPAIGN_EVENTS,
            replications=CAMPAIGN_REPLICATIONS,
            seed=SEED,
            workers=1,
        )

    total_tasks = 4 * CAMPAIGN_REPLICATIONS  # 4 grid points

    def run_all():
        started = time.perf_counter()
        clean = run_campaign(grid=make_grid(), directory=tmp_path / "clean")
        clean_seconds = time.perf_counter() - started

        started = time.perf_counter()
        run_campaign(
            grid=make_grid(), directory=tmp_path / "twin", max_tasks=total_tasks // 2
        )
        resumed = resume_campaign(tmp_path / "twin")
        resumed_seconds = time.perf_counter() - started

        started = time.perf_counter()
        noop = resume_campaign(tmp_path / "clean")
        noop_seconds = time.perf_counter() - started
        return clean, clean_seconds, resumed, resumed_seconds, noop, noop_seconds

    clean, clean_seconds, resumed, resumed_seconds, noop, noop_seconds = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )

    assert clean.complete and resumed.complete
    assert noop.executed_tasks == 0  # resuming a finished campaign runs nothing
    assert campaign_fingerprint(tmp_path / "clean") == campaign_fingerprint(
        tmp_path / "twin"
    )

    tasks_per_second = clean.executed_tasks / clean_seconds
    overhead = resumed_seconds / clean_seconds
    rows = [
        ["uninterrupted", f"{clean_seconds:.2f}", f"{tasks_per_second:.1f}", "1.00x"],
        [
            "interrupted+resumed",
            f"{resumed_seconds:.2f}",
            f"{clean.executed_tasks / resumed_seconds:.1f}",
            f"{overhead:.2f}x",
        ],
        ["resume of finished", f"{noop_seconds:.2f}", "-", "-"],
    ]
    report(
        "campaign_throughput",
        format_table(
            ["campaign", "seconds", "tasks/s", "vs clean"],
            rows,
            title=(
                f"campaign orchestration: 4 points x {CAMPAIGN_REPLICATIONS} "
                f"replications x {CAMPAIGN_EVENTS} events, serial workers"
            ),
        ),
    )
    report_json(
        "campaign",
        {
            "workload": {
                "grid_points": 4,
                "replications_per_point": CAMPAIGN_REPLICATIONS,
                "events_per_replication": CAMPAIGN_EVENTS,
            },
            "status": "ok",
            "tasks_per_second": tasks_per_second,
            "clean_wall_seconds": clean_seconds,
            "interrupted_plus_resumed_wall_seconds": resumed_seconds,
            "resume_overhead_ratio": overhead,
            "noop_resume_seconds": noop_seconds,
        },
    )

    if smoke_mode():
        return
    # Interrupt-and-resume re-pays scheduler startup (journal replay, record
    # refold) once; it must never approach the cost of a second campaign.
    assert overhead < 1.75, (
        f"interrupted+resumed took {overhead:.2f}x the uninterrupted campaign"
    )
