"""Benchmark harness for the occupancy fleet engine: kernels head to head.

Two claims are asserted per kernel (see ISSUE 4 and ``docs/performance.md``):

* **flat in N** — one event costs O(queue depth) regardless of pool size,
  so events/s must stay within a small constant factor across three decades
  of ``N``;
* **uniformized speedup** — the numpy chunk kernel must deliver at least
  3x the events/s of the scalar ``python`` reference at ``N = 10^5``
  (relaxed to "not slower" under ``REPRO_BENCH_SMOKE=1``, the CI smoke
  job's reduced workload on shared runners).

Each kernel's mean delay must also land on the mean-field prediction and on
the other kernel's estimate — throughput that changes the answer is a bug,
not a speedup.

Results are written both as a text table (``fleet_throughput.txt``) and as
a machine-readable ``BENCH_fleet.json`` with git SHA, so the performance
trajectory is trackable across PRs.

Run with::

    pytest benchmarks/test_bench_fleet.py --benchmark-only
"""

from __future__ import annotations

from conftest import env_int, smoke_mode

from repro.core.asymptotic import relative_error_percent
from repro.fleet.engine import simulate_fleet
from repro.fleet.meanfield import meanfield_delay
from repro.utils.tables import format_table

EVENTS = env_int("REPRO_BENCH_FLEET_EVENTS", 300_000)
SERVER_COUNTS = (100, 1_000, 10_000, 100_000)
SPEEDUP_AT = 100_000
UTILIZATION = 0.9
D = 2
KERNELS = ("python", "uniformized")


def _run_sweep():
    results = {kernel: [] for kernel in KERNELS}
    for kernel in KERNELS:
        for num_servers in SERVER_COUNTS:
            results[kernel].append(
                simulate_fleet(
                    num_servers=num_servers,
                    d=D,
                    utilization=UTILIZATION,
                    num_events=EVENTS,
                    seed=20160627 + num_servers,
                    kernel=kernel,
                )
            )
    return results


def test_fleet_throughput_flat_in_n_and_uniformized_speedup(benchmark, report, report_json):
    """Events/s flat from N=10^2 to 10^5; uniformized >= 3x python at 10^5."""
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    prediction = meanfield_delay(UTILIZATION, D)
    rows = []
    json_rows = []
    for kernel in KERNELS:
        for result in results[kernel]:
            rows.append(
                [
                    kernel,
                    result.num_servers,
                    f"{result.events_per_second:,.0f}",
                    result.mean_delay,
                    relative_error_percent(result.mean_delay, prediction),
                ]
            )
            json_rows.append(
                {
                    "kernel": kernel,
                    "num_servers": result.num_servers,
                    "events_per_second": result.events_per_second,
                    "wall_seconds": result.wall_seconds,
                    "num_events": result.num_events,
                    "mean_delay": result.mean_delay,
                }
            )
    table = format_table(
        ["kernel", "N", "events/s", "fleet delay", "err% vs mean-field"],
        rows,
        title=(
            f"fleet engine throughput by kernel, SQ({D}) at rho={UTILIZATION}, "
            f"{EVENTS} events/point (mean-field delay {prediction:.4f})"
        ),
    )
    report("fleet_throughput", table)

    speedups = {
        n: uni.events_per_second / py.events_per_second
        for n, py, uni in zip(SERVER_COUNTS, results["python"], results["uniformized"])
    }
    report_json(
        "fleet",
        {
            "workload": {
                "d": D,
                "utilization": UTILIZATION,
                "events_per_point": EVENTS,
                "policy": "sqd",
            },
            "results": json_rows,
            "speedup_uniformized_vs_python": {str(n): s for n, s in speedups.items()},
            "smoke_mode": smoke_mode(),
        },
    )

    for kernel in KERNELS:
        throughputs = [result.events_per_second for result in results[kernel]]
        assert min(throughputs) > 0
        # Flat in N: across three decades the spread must stay within a small
        # constant factor.  O(N) scaling would show a ~1000x ratio, so the
        # bound is loose enough to absorb timer noise on shared CI runners.
        assert max(throughputs) / min(throughputs) < 5.0, (kernel, throughputs)
        # The large-N run sits on the mean-field prediction.
        assert relative_error_percent(results[kernel][-1].mean_delay, prediction) < 5.0

    # Kernels answer the same question: per-N delays within a few percent
    # (each is a ~300k-event estimate of the same stationary mean).
    for py, uni in zip(results["python"], results["uniformized"]):
        assert abs(uni.mean_delay - py.mean_delay) / py.mean_delay < 0.03, (
            py.num_servers, py.mean_delay, uni.mean_delay,
        )

    # ISSUE 4 acceptance: >= 3x events/s at N=10^5 (>= 1x in CI smoke mode).
    floor = 1.0 if smoke_mode() else 3.0
    assert speedups[SPEEDUP_AT] >= floor, (
        f"uniformized kernel {speedups[SPEEDUP_AT]:.2f}x python at N={SPEEDUP_AT}, "
        f"needed >= {floor}x"
    )
