"""Benchmark harness for the occupancy fleet engine: O(1) event cost in N.

The per-job simulator costs O(log N) per event (heap) plus O(N) policy scans
and the per-server Gillespie CTMC costs O(N) per departure search, so both
degrade as the pool grows.  The occupancy engine's whole claim is that one
event costs O(queue depth) regardless of N — this harness sweeps N over
three decades at fixed event count and asserts the throughput stays flat,
then reports the delay accuracy against the mean-field prediction.

Run with::

    pytest benchmarks/test_bench_fleet.py --benchmark-only
"""

from __future__ import annotations

from conftest import env_int

from repro.core.asymptotic import relative_error_percent
from repro.fleet.engine import simulate_fleet
from repro.fleet.meanfield import meanfield_delay
from repro.utils.tables import format_table

EVENTS = env_int("REPRO_BENCH_FLEET_EVENTS", 300_000)
SERVER_COUNTS = (100, 1_000, 10_000, 100_000)
UTILIZATION = 0.9
D = 2


def _run_sweep():
    results = []
    for num_servers in SERVER_COUNTS:
        result = simulate_fleet(
            num_servers=num_servers,
            d=D,
            utilization=UTILIZATION,
            num_events=EVENTS,
            seed=20160627 + num_servers,
        )
        results.append(result)
    return results


def test_fleet_throughput_flat_in_n(benchmark, report):
    """Events/sec must stay roughly constant from N=10^2 to N=10^5."""
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    prediction = meanfield_delay(UTILIZATION, D)
    rows = []
    for result in results:
        rows.append(
            [
                result.num_servers,
                f"{result.events_per_second:,.0f}",
                result.mean_delay,
                relative_error_percent(result.mean_delay, prediction),
            ]
        )
    table = format_table(
        ["N", "events/s", "fleet delay", "err% vs mean-field"],
        rows,
        title=(
            f"fleet engine throughput, SQ({D}) at rho={UTILIZATION}, "
            f"{EVENTS} events/point (mean-field delay {prediction:.4f})"
        ),
    )
    report("fleet_throughput", table)

    throughputs = [result.events_per_second for result in results]
    assert min(throughputs) > 0
    # Flat in N: across three decades the spread must stay within a small
    # constant factor.  O(N) scaling would show a ~1000x ratio, so the bound
    # is loose enough to absorb timer noise on shared CI runners.
    assert max(throughputs) / min(throughputs) < 5.0, throughputs
    # The large-N run sits on the mean-field prediction.
    assert relative_error_percent(results[-1].mean_delay, prediction) < 5.0
