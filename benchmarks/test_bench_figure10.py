"""Benchmark harness for Figure 10: average delay vs utilization for SQ(2).

Regenerates the four panels of the paper's Figure 10 — upper bound,
simulation, lower bound and asymptotic approximation over a utilization sweep
for (N, T) in {(3,2), (3,3), (6,3), (12,3)}.

Run with::

    pytest benchmarks/test_bench_figure10.py --benchmark-only
"""

from __future__ import annotations

import math

from conftest import env_int

from repro.experiments.figure10 import Figure10Config, run_figure10

# The delay at high utilization converges slowly; 500k events per point keeps
# the Monte-Carlo error of the simulation curve within a few percent (the
# paper uses 10^8 jobs per point — raise REPRO_BENCH_EVENTS to match).
EVENTS = env_int("REPRO_BENCH_EVENTS", 500_000)
UTILIZATIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def _run_panel(num_servers: int, threshold: int):
    config = Figure10Config(
        num_servers=num_servers,
        threshold=threshold,
        utilizations=UTILIZATIONS,
        simulation_events=EVENTS,
    )
    return run_figure10(config)


def _check_panel(result) -> None:
    # The defining qualitative relations of Figure 10:
    #  * lower bound <= simulation <= upper bound (where the latter is finite),
    #    up to the Monte-Carlo error of the simulation curve,
    #  * all curves start near 1 at low utilization and increase,
    #  * the asymptotic curve underestimates the simulated delay at high load.
    assert result.sandwich_holds(slack=0.08)
    assert result.lower_bound[0] < 1.2
    assert result.lower_bound == sorted(result.lower_bound)
    assert result.simulation[-1] > result.asymptotic[-1]


def test_figure10a(benchmark, report):
    """Panel (a): N = 3, T = 2."""
    result = benchmark.pedantic(_run_panel, args=(3, 2), rounds=1, iterations=1)
    report("figure10a", result.as_table())
    _check_panel(result)


def test_figure10b(benchmark, report):
    """Panel (b): N = 3, T = 3 — the upper bound tightens relative to T = 2."""
    result = benchmark.pedantic(_run_panel, args=(3, 3), rounds=1, iterations=1)
    report("figure10b", result.as_table())
    _check_panel(result)


def test_figure10c(benchmark, report):
    """Panel (c): N = 6, T = 3."""
    result = benchmark.pedantic(_run_panel, args=(6, 3), rounds=1, iterations=1)
    report("figure10c", result.as_table())
    _check_panel(result)


def test_figure10d(benchmark, report):
    """Panel (d): N = 12, T = 3."""
    result = benchmark.pedantic(_run_panel, args=(12, 3), rounds=1, iterations=1)
    report("figure10d", result.as_table())
    _check_panel(result)


def test_figure10_upper_bound_tightens_with_threshold(benchmark, report):
    """Panels (a) vs (b): the T=3 upper bound is tighter than the T=2 one."""

    def _compare():
        shared = dict(utilizations=(0.5, 0.6, 0.7), simulation_events=0, run_simulation=False)
        t2 = run_figure10(Figure10Config(num_servers=3, threshold=2, **shared))
        t3 = run_figure10(Figure10Config(num_servers=3, threshold=3, **shared))
        return t2, t3

    t2, t3 = benchmark.pedantic(_compare, rounds=1, iterations=1)
    lines = ["T=2 vs T=3 upper bounds (N=3, SQ(2)):", "util   upper(T=2)   upper(T=3)"]
    for u, a, b in zip(t2.utilizations, t2.upper_bound, t3.upper_bound):
        lines.append(f"{u:<6} {a:<12.4f} {b:<12.4f}")
        if math.isfinite(a) and math.isfinite(b):
            assert b <= a + 1e-9
    report("figure10_threshold_comparison", "\n".join(lines))
