#!/usr/bin/env python3
"""Quickstart: one experiment spec, every engine the library has.

Reproduces, for one configuration, what the paper's Figure 10 shows across a
whole utilization sweep: the asymptotic (N -> infinity) approximation can be
noticeably off for a small cluster, while the lower/upper bounds of the paper
sandwich the true (simulated / exactly solved) delay.

The experiment is described once, as an :class:`repro.ExperimentSpec`, and
then handed to four different backends through :func:`repro.run` — the
"one spec, many engines" API.

Run with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.01``) to shrink the simulated event
counts for smoke runs.
"""

import os

from repro import ExperimentSpec, run

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))


def main() -> None:
    spec = ExperimentSpec.create(
        num_servers=3,
        d=2,
        utilization=0.85,
        num_events=max(2_000, int(300_000 * SCALE)),
        seed=12345,
        threshold=3,     # imbalance threshold T of the QBD bound models
        buffer_size=30,  # per-server head-room of the exact truncation
    )

    print(f"Experiment: SQ({spec.system.d}) cluster, {spec.describe()}")
    print(f"Bound models use imbalance threshold T={spec.option('threshold')}\n")

    bracket = run(spec, backend="qbd_bounds")
    exact = run(spec, backend="exact")       # auto would pick this too (N=3)
    simulated = run(spec, backend="ctmc", replications=4)
    limit = run(spec, backend="meanfield")

    print(f"  asymptotic / mean-field (Eq. 16)  : {limit.mean_delay:8.4f}")
    print(f"  lower bound (Theorem 3)           : {bracket.extras['lower_delay']:8.4f}")
    print(f"  exact (truncated chain)           : {exact.mean_delay:8.4f}")
    print(f"  simulation (CTMC, {simulated.replications} replications) : "
          f"{simulated.mean_delay:8.4f} ± {simulated.half_width:.4f}")
    upper = bracket.extras["upper_delay"]
    if upper != float("inf"):
        print(f"  upper bound (Theorem 1)           : {upper:8.4f}")
    else:
        print("  upper bound (Theorem 1)           : model unstable at this utilization/threshold")

    print("\nReading:")
    print("  * The lower bound tracks the exact delay closely (the paper calls it")
    print("    'remarkably accurate').")
    print("  * The asymptotic formula underestimates the delay of this 3-server")
    print("    cluster — exactly the finite-regime gap the paper addresses.")
    print("  * `run(spec)` with backend='auto' would pick the exact solver here;")
    print("    the same spec scales to N=10^6 by switching to backend='fleet'.")


if __name__ == "__main__":
    main()
