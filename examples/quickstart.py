#!/usr/bin/env python3
"""Quickstart: finite-regime delay bounds for a small SQ(2) cluster.

Reproduces, for one configuration, what the paper's Figure 10 shows across a
whole utilization sweep: the asymptotic (N -> infinity) approximation can be
noticeably off for a small cluster, while the lower/upper bounds of the paper
sandwich the true (simulated / exactly solved) delay.

Run with::

    python examples/quickstart.py
"""

from repro import analyze_sqd


def main() -> None:
    num_servers = 3
    d = 2
    utilization = 0.85
    threshold = 3

    print(f"SQ({d}) cluster with N={num_servers} servers at utilization rho={utilization}")
    print(f"Bound models use imbalance threshold T={threshold}\n")

    analysis = analyze_sqd(
        num_servers=num_servers,
        d=d,
        utilization=utilization,
        threshold=threshold,
        run_simulation=True,
        simulation_events=300_000,
        compute_exact=True,
        exact_buffer=30,
    )

    print(f"  asymptotic approximation (Eq. 16) : {analysis.asymptotic_delay:8.4f}")
    print(f"  lower bound (Theorem 3)           : {analysis.lower_delay:8.4f}")
    print(f"  exact (truncated chain)           : {analysis.exact_delay:8.4f}")
    print(f"  simulation (CTMC, Little's law)   : {analysis.simulated_delay:8.4f}")
    if analysis.upper_delay is not None:
        print(f"  upper bound (Theorem 1)           : {analysis.upper_delay:8.4f}")
    else:
        print("  upper bound (Theorem 1)           : model unstable at this utilization/threshold")

    print("\nReading:")
    print("  * The lower bound tracks the exact delay closely (the paper calls it")
    print("    'remarkably accurate').")
    print("  * The asymptotic formula underestimates the delay of this 3-server")
    print("    cluster — exactly the finite-regime gap the paper addresses.")


if __name__ == "__main__":
    main()
