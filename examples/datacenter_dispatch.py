#!/usr/bin/env python3
"""Dimensioning a small dispatcher tier: how many choices d are enough?

Scenario (the paper's motivating setting): a data-center front end dispatches
requests to a modest pool of workers.  Polling more workers per request (a
larger ``d``) lowers the response time but costs one round of feedback
messages per polled worker.  This example sweeps ``d`` for a finite pool and
shows the delay/feedback tradeoff, using the job-level discrete-event
simulator (so non-exponential service could be plugged in) together with the
finite-regime lower bound.

Run with::

    python examples/datacenter_dispatch.py
"""

from repro import SQDModel, solve_improved_lower_bound
from repro.core.asymptotic import asymptotic_delay
from repro.policies import PowerOfD
from repro.simulation import ClusterSimulation
from repro.simulation.workloads import poisson_exponential_workload
from repro.utils.tables import format_table


def main() -> None:
    num_servers = 8
    utilization = 0.9
    threshold = 2
    num_jobs = 60_000
    warmup_jobs = 6_000

    print(f"Worker pool: N={num_servers}, per-worker load rho={utilization}\n")

    rows = []
    for d in (1, 2, 3, 4, 8):
        workload = poisson_exponential_workload(num_servers, utilization)
        simulation = ClusterSimulation(
            workload,
            PowerOfD(d),
            seed=101 + d,
            warmup_jobs=warmup_jobs,
        ).run(num_jobs)

        model = SQDModel(num_servers=num_servers, d=d, utilization=utilization)
        lower = solve_improved_lower_bound(model, threshold).mean_delay

        summary = simulation.sojourn_summary
        rows.append(
            [
                d,
                d,  # feedback messages per request
                lower,
                simulation.mean_sojourn_time,
                f"+/-{summary.half_width:.3f}",
                asymptotic_delay(utilization, d),
            ]
        )

    print(
        format_table(
            ["d", "msgs/job", "lower bound", "simulated delay", "95% CI", "asymptotic"],
            rows,
            title="Delay vs feedback cost for SQ(d) dispatching",
        )
    )

    print("\nReading:")
    print("  * Going from d=1 to d=2 removes most of the delay (the power of two")
    print("    choices) at the cost of only two queue-length probes per request.")
    print("  * Returns diminish quickly beyond d=3: polling the whole pool (JSQ,")
    print("    d=N) buys little extra at four times the feedback cost.")
    print("  * The asymptotic column underestimates the delay for this small pool;")
    print("    the finite-regime lower bound is the safer planning number.")


if __name__ == "__main__":
    main()
