#!/usr/bin/env python3
"""Dimensioning a small dispatcher tier: how many choices d are enough?

Scenario (the paper's motivating setting): a data-center front end dispatches
requests to a modest pool of workers.  Polling more workers per request (a
larger ``d``) lowers the response time but costs one round of feedback
messages per polled worker.  This example sweeps ``d`` for a finite pool and
shows the delay/feedback tradeoff, using the job-level ``cluster`` backend
(so non-exponential service could be plugged into the same spec) together
with the finite-regime lower bound — all through :func:`repro.run`.

Run with::

    python examples/datacenter_dispatch.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.01``) to shrink the simulated job
counts for smoke runs.
"""

import os

from repro import ExperimentSpec, asymptotic_delay, run
from repro.utils.tables import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))


def main() -> None:
    num_servers = 8
    utilization = 0.9
    num_jobs = max(2_000, int(60_000 * SCALE))

    print(f"Worker pool: N={num_servers}, per-worker load rho={utilization}\n")

    rows = []
    for d in (1, 2, 3, 4, 8):
        spec = ExperimentSpec.create(
            num_servers=num_servers,
            d=d,
            utilization=utilization,
            num_jobs=num_jobs,
            seed=101 + d,
            threshold=2,
        )
        simulation = run(spec, backend="cluster", replications=3)
        lower = run(spec, backend="qbd_bounds").extras["lower_delay"]
        rows.append(
            [
                d,
                d,  # feedback messages per request
                lower,
                simulation.mean_delay,
                f"+/-{simulation.half_width:.3f}",
                asymptotic_delay(utilization, d),
            ]
        )

    print(
        format_table(
            ["d", "msgs/job", "lower bound", "simulated delay", "95% CI", "asymptotic"],
            rows,
            title="Delay vs feedback cost for SQ(d) dispatching",
        )
    )

    print("\nReading:")
    print("  * Going from d=1 to d=2 removes most of the delay (the power of two")
    print("    choices) at the cost of only two queue-length probes per request.")
    print("  * Returns diminish quickly beyond d=3: polling the whole pool (JSQ,")
    print("    d=N) buys little extra at four times the feedback cost.")
    print("  * The asymptotic column underestimates the delay for this small pool;")
    print("    the finite-regime lower bound is the safer planning number.")


if __name__ == "__main__":
    main()
