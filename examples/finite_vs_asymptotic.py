#!/usr/bin/env python3
"""How misleading is the asymptotic power-of-d formula in a finite cluster?

This is a reduced version of the paper's Figure 9 study: for a high
utilization it sweeps the number of servers and reports the relative error of
Mitzenmacher's asymptotic delay against a finite-N simulation, for two values
of ``d``.  It also prints the finite-regime lower bound, which — unlike the
asymptotic formula — moves with ``N``.

Each point is one :class:`repro.ExperimentSpec` run on two backends: the
``ctmc`` simulator for the estimate and ``qbd_bounds`` for the lower bound.

Run with::

    python examples/finite_vs_asymptotic.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.01``) to shrink the simulated event
counts for smoke runs.
"""

import os

from repro import ExperimentSpec, asymptotic_delay, relative_error_percent, run
from repro.utils.tables import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))


def main() -> None:
    utilization = 0.95
    threshold = 2
    num_events = max(2_000, int(300_000 * SCALE))
    # The QBD bound blocks have C(N+T-1, T) states; beyond this pool size
    # the solve takes minutes, so the bound column switches to "-" (the
    # simulators keep going — that division of labour is the API's point).
    bounds_max_servers = 25

    print(f"Per-server utilization rho = {utilization}\n")

    for d in (2, 5):
        asymptotic = asymptotic_delay(utilization, d)
        rows = []
        for num_servers in (max(3, d), 10, 25, 50, 100):
            if num_servers < d:
                continue
            spec = ExperimentSpec.create(
                num_servers=num_servers,
                d=d,
                utilization=utilization,
                num_events=num_events,
                seed=400 + num_servers,
                threshold=threshold,
            )
            simulation = run(spec, backend="ctmc")
            if num_servers <= bounds_max_servers:
                lower = f"{run(spec, backend='qbd_bounds').extras['lower_delay']:.4f}"
            else:
                lower = "-"
            rows.append(
                [
                    num_servers,
                    simulation.mean_delay,
                    lower,
                    asymptotic,
                    relative_error_percent(asymptotic, simulation.mean_delay),
                ]
            )
        print(
            format_table(
                ["N", "simulated delay", "lower bound", "asymptotic", "asymptotic error %"],
                rows,
                title=f"SQ({d}) at rho={utilization}",
            )
        )
        print()

    print("Reading:")
    print("  * The asymptotic delay is constant in N, but the true delay is visibly")
    print("    larger for small clusters, especially at this high utilization — the")
    print("    error can exceed tens of percent (compare the paper's Figure 9(b)).")
    print("  * The lower bound follows the finite-N behaviour instead of ignoring it.")


if __name__ == "__main__":
    main()
