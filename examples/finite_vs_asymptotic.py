#!/usr/bin/env python3
"""How misleading is the asymptotic power-of-d formula in a finite cluster?

This is a reduced version of the paper's Figure 9 study: for a high
utilization it sweeps the number of servers and reports the relative error of
Mitzenmacher's asymptotic delay against a finite-N simulation, for two values
of ``d``.  It also prints the finite-regime lower bound, which — unlike the
asymptotic formula — moves with ``N``.

Run with::

    python examples/finite_vs_asymptotic.py
"""

from repro import SQDModel, asymptotic_delay, relative_error_percent, solve_improved_lower_bound
from repro.simulation import simulate_sqd_ctmc
from repro.utils.tables import format_table


def main() -> None:
    utilization = 0.95
    threshold = 2
    num_events = 300_000

    print(f"Per-server utilization rho = {utilization}\n")

    for d in (2, 5):
        asymptotic = asymptotic_delay(utilization, d)
        rows = []
        for num_servers in (max(3, d), 10, 25, 50, 100):
            if num_servers < d:
                continue
            simulation = simulate_sqd_ctmc(
                num_servers=num_servers,
                d=d,
                utilization=utilization,
                num_events=num_events,
                seed=400 + num_servers,
            )
            model = SQDModel(num_servers=num_servers, d=d, utilization=utilization)
            lower = solve_improved_lower_bound(model, threshold).mean_delay
            rows.append(
                [
                    num_servers,
                    simulation.mean_delay,
                    lower,
                    asymptotic,
                    relative_error_percent(asymptotic, simulation.mean_delay),
                ]
            )
        print(
            format_table(
                ["N", "simulated delay", "lower bound", "asymptotic", "asymptotic error %"],
                rows,
                title=f"SQ({d}) at rho={utilization}",
            )
        )
        print()

    print("Reading:")
    print("  * The asymptotic delay is constant in N, but the true delay is visibly")
    print("    larger for small clusters, especially at this high utilization — the")
    print("    error can exceed tens of percent (compare the paper's Figure 9(b)).")
    print("  * The lower bound follows the finite-N behaviour instead of ignoring it.")


if __name__ == "__main__":
    main()
