#!/usr/bin/env python3
"""Raw trace -> fitted spec -> bound bracket vs. replayed simulation.

The full loop of ``repro.traces`` (docs/traces.md) on a synthetic capture:

1. synthesize a bursty arrival trace from a known MMPP2 and save it to disk
   (stand-in for a measured capture);
2. summarize its burstiness (rate, SCV, lag autocorrelation, IDC);
3. fit an MMPP2 and a hyperexponential renewal model to the measurement;
4. bracket the equal-load *Poisson* system with the paper's QBD bounds;
5. run the fitted model through the cluster backend as a replicated
   ensemble, replay the raw trace through the same backend, and check the
   replayed delay against the fitted model's confidence interval.

Run with::

    python examples/trace_replay.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.02``) to shrink the trace and the
simulated job counts for smoke runs.
"""

import os
import tempfile
from pathlib import Path

from repro import ExperimentSpec, run
from repro.markov.arrival_processes import MarkovianArrivalProcess
from repro.traces import fit_arrival, fit_hyperexponential, summarize_trace, synthesize_trace
from repro.utils.tables import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))

NUM_SERVERS = 20
D = 2
UTILIZATION = 0.85
NUM_ARRIVALS = max(4_000, int(60_000 * SCALE))
NUM_JOBS = max(1_500, int(25_000 * SCALE))
REPLICATIONS = 4


def main() -> None:
    # 1. A "measured" capture: bursty MMPP2 traffic at rho = 0.85 on N = 20.
    truth = MarkovianArrivalProcess.mmpp2(
        rate_high=3.0, rate_low=0.4, switch_to_low=0.05, switch_to_high=0.04
    ).rescaled(UTILIZATION * NUM_SERVERS)
    trace = synthesize_trace(truth, NUM_ARRIVALS, seed=20160627, meta={"capture": "demo"})

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "capture.npz"
        trace.save(trace_path)

        # 2. Burstiness summary: what the fits are matched against.
        summary = summarize_trace(trace)
        print(summary.as_table(title=f"capture.npz: {trace.num_arrivals} arrivals"))
        print()

        # 3. Fit: the auto family (MMPP2 for this trace) vs the renewal fit
        #    that ignores correlation.
        fitted = fit_arrival(summary)
        renewal = fit_hyperexponential(summary)
        print(fitted.as_table())
        print()

        # 4. The paper's QBD bracket for the *Poisson* system at equal load —
        #    what a Poisson-only toolbox would predict for this cluster.
        bracket = run(
            ExperimentSpec.create(
                num_servers=NUM_SERVERS, d=D, utilization=summary.rate / NUM_SERVERS
            ),
            backend="qbd_bounds",
        )

        # 5. Fitted model vs raw replay, through the same cluster backend.
        spec = fitted.experiment_spec(
            num_servers=NUM_SERVERS, d=D, num_jobs=NUM_JOBS, seed=414
        )
        model_run = run(spec, backend="cluster", replications=REPLICATIONS)
        renewal_run = run(
            renewal.experiment_spec(
                num_servers=NUM_SERVERS, d=D, num_jobs=NUM_JOBS, seed=414
            ),
            backend="cluster",
            replications=REPLICATIONS,
        )
        replay_spec = ExperimentSpec.create(
            num_servers=NUM_SERVERS,
            d=D,
            utilization=spec.system.utilization,
            arrival="trace",
            arrival_params={"path": str(trace_path)},
            num_jobs=NUM_JOBS,
            seed=414,
        )
        replay_run = run(replay_spec, backend="cluster")

    low, high = model_run.confidence_interval()
    verdict = "inside" if low <= replay_run.mean_delay <= high else "OUTSIDE"
    rows = [
        ["Poisson lower bound (Thm 3)", bracket.extras["lower_delay"]],
        ["Poisson upper bound (Thm 1)", bracket.extras["upper_delay"]],
        ["hyperexponential fit (renewal)", renewal_run.mean_delay],
        [f"fitted MMPP2 ({REPLICATIONS} replications)", model_run.mean_delay],
        ["replayed raw trace", replay_run.mean_delay],
    ]
    print(
        format_table(
            ["estimate", "mean delay"],
            rows,
            title=f"SQ({D}) with N={NUM_SERVERS}, rho={spec.system.utilization:.3f}: "
            "model vs measurement",
        )
    )
    print(
        f"replayed delay {replay_run.mean_delay:.4f} is {verdict} the fitted model's "
        f"{model_run.confidence:.0%} CI [{low:.4f}, {high:.4f}]"
    )

    print("\nReading:")
    print("  * The burstiness summary is the whole story: SCV > 1 with positive")
    print("    lag correlation means Poisson (and even renewal) models understate")
    print("    the delay — the Poisson bracket sits far below both bursty runs.")
    print("  * The fitted MMPP2 reproduces the replayed measurement through the")
    print("    same simulator: measurement and model agree within the CI, which")
    print("    is the cross-validation the tier-1 suite pins down.")


if __name__ == "__main__":
    main()
