#!/usr/bin/env python3
"""Beyond Poisson: Theorem 2's sigma root and the MAP/PH/1 extension.

The paper's conclusions name two extensions of its matrix-geometric
methodology: general renewal arrivals in the improved lower bound
(Theorem 2's ``sigma`` root instead of ``rho``) and MAP arrivals / PH service
for the underlying queueing building blocks.  This example exercises both:

1. it compares the improved lower bound of an SQ(2) cluster under Poisson,
   Erlang (smooth) and hyperexponential (bursty) renewal arrivals of the same
   rate, together with job-level simulations of the true systems, and
2. it solves a MAP/PH/1 queue with bursty (MMPP) input and Erlang service,
   showing how burstiness inflates the delay at identical utilization.

Run with::

    python examples/nonpoisson_arrivals.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.01``) to shrink the simulated job
counts for smoke runs.
"""

import os

from repro import ExperimentSpec, run
from repro.core.improved_lower import geometric_tail_decay, solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.markov.arrival_processes import (
    MarkovianArrivalProcess,
    PoissonArrivals,
    RenewalArrivals,
    solve_sigma,
)
from repro.markov.map_ph_queue import solve_map_ph_1
from repro.markov.service_distributions import (
    ErlangService,
    HyperexponentialService,
)
from repro.utils.tables import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))


def sqd_under_renewal_arrivals() -> None:
    num_servers = 4
    utilization = 0.85
    threshold = 3
    total_rate = utilization * num_servers
    num_jobs = max(2_000, int(60_000 * SCALE))
    model = SQDModel(num_servers=num_servers, d=2, utilization=utilization)

    # Each variant pairs the low-level arrival process (for Theorem 2's sigma
    # root) with the spec spelling the cluster backend simulates through
    # `repro.run` — the same arrival law, two views.
    arrival_variants = [
        ("Poisson", PoissonArrivals(total_rate), "poisson", {}),
        (
            "Erlang-4 renewal (smooth)",
            RenewalArrivals(ErlangService(stages=4, mean=1.0 / total_rate)),
            "erlang",
            {"stages": 4},
        ),
        (
            "Hyperexponential renewal (bursty, SCV=4)",
            RenewalArrivals(HyperexponentialService.balanced_two_phase(mean=1.0 / total_rate, scv=4.0)),
            "hyperexponential",
            {"scv": 4.0},
        ),
    ]

    poisson_bound = solve_improved_lower_bound(model, threshold)
    rows = []
    for name, arrivals, arrival_name, arrival_params in arrival_variants:
        sigma = solve_sigma(arrivals, service_rate=num_servers)
        decay = geometric_tail_decay(model, arrivals)
        simulated = run(
            ExperimentSpec.create(
                num_servers=num_servers,
                d=2,
                utilization=utilization,
                arrival=arrival_name,
                arrival_params=arrival_params,
                num_jobs=num_jobs,
                warmup_jobs=num_jobs // 12,
                seed=77,
            ),
            backend="cluster",
        )
        rows.append([name, sigma, decay, simulated.mean_delay])

    print(
        format_table(
            ["arrival process", "sigma (Thm 2)", "tail decay sigma^N", "simulated delay"],
            rows,
            title=(
                f"SQ(2), N={num_servers}, rho={utilization}: renewal arrivals beyond Poisson "
                f"(Poisson lower bound = {poisson_bound.mean_delay:.3f})"
            ),
        )
    )
    print()


def map_ph_building_block() -> None:
    utilization = 0.8
    service = ErlangService(stages=2, mean=1.0)
    smooth = PoissonArrivals(utilization / service.mean)
    bursty = MarkovianArrivalProcess.mmpp2(
        rate_high=1.9 * smooth.rate,
        rate_low=0.1 * smooth.rate,
        switch_to_low=0.02,
        switch_to_high=0.02,
    )
    rows = []
    for name, arrivals in [("Poisson", smooth), ("MMPP-2 (bursty)", bursty)]:
        solution = solve_map_ph_1(arrivals, service)
        rows.append([name, solution.utilization, solution.mean_waiting_time, solution.mean_sojourn_time])
    print(
        format_table(
            ["arrival process", "utilization", "mean waiting time", "mean delay"],
            rows,
            title="MAP/PH/1 building block (Erlang-2 service): burstiness at equal load",
        )
    )


def main() -> None:
    sqd_under_renewal_arrivals()
    map_ph_building_block()
    print("\nReading:")
    print("  * Smoother (Erlang) arrivals shrink sigma below rho and with it the")
    print("    geometric tail of the lower bound; bursty arrivals do the opposite —")
    print("    Theorem 2 quantifies exactly how much.")
    print("  * The MAP/PH/1 solver reuses the same logarithmic-reduction machinery")
    print("    as the SQ(d) bounds, demonstrating the extension path the paper's")
    print("    conclusions describe.")


if __name__ == "__main__":
    main()
