#!/usr/bin/env python3
"""Beyond Poisson, the fit-then-analyze way: Theorem 2 and the MAP extension.

The paper's conclusions name two extensions of its matrix-geometric
methodology: general renewal arrivals in the improved lower bound
(Theorem 2's ``sigma`` root instead of ``rho``) and MAP arrivals / PH
service for the underlying queueing building blocks.  Since the traces
subsystem landed, the idiomatic route to both starts from a *measurement*:

1. synthesize traces from Poisson, Erlang (smooth) and hyperexponential
   (bursty) streams of the same rate — stand-ins for captures — then fit
   each with ``repro.traces.fit_arrival`` and analyze the *fitted* process:
   Theorem 2's sigma root, the ``sigma^N`` tail decay, and a job-level
   simulation of the fitted spec through ``repro.run``;
2. solve a MAP/PH/1 queue with bursty (MMPP) input and Erlang service,
   now with the MAP's analytic burstiness statistics (interarrival SCV,
   lag-1 autocorrelation, IDC limit) alongside the delay it inflates.

Run with::

    python examples/nonpoisson_arrivals.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.01``) to shrink the trace lengths
and simulated job counts for smoke runs.
"""

import os

from repro import run
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.markov.arrival_processes import (
    MarkovianArrivalProcess,
    PoissonArrivals,
    RenewalArrivals,
    solve_sigma,
)
from repro.markov.map_ph_queue import solve_map_ph_1
from repro.markov.service_distributions import (
    ErlangService,
    HyperexponentialService,
)
from repro.traces import fit_arrival, summarize_trace, synthesize_trace
from repro.utils.tables import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))


def sqd_under_fitted_arrivals() -> None:
    num_servers = 4
    utilization = 0.85
    threshold = 3
    total_rate = utilization * num_servers
    num_arrivals = max(3_000, int(50_000 * SCALE))
    num_jobs = max(2_000, int(60_000 * SCALE))
    model = SQDModel(num_servers=num_servers, d=2, utilization=utilization)

    # The streams a capture might have come from; each is synthesized into a
    # trace, fitted back, and the *fitted* model is analyzed and simulated.
    generators = [
        ("Poisson", PoissonArrivals(total_rate)),
        ("Erlang-4 renewal (smooth)", RenewalArrivals(ErlangService(stages=4, mean=1.0 / total_rate))),
        (
            "Hyperexponential renewal (bursty, SCV=4)",
            RenewalArrivals(HyperexponentialService.balanced_two_phase(mean=1.0 / total_rate, scv=4.0)),
        ),
    ]

    poisson_bound = solve_improved_lower_bound(model, threshold)
    rows = []
    for name, generator in generators:
        trace = synthesize_trace(generator, num_arrivals, seed=77)
        fit = fit_arrival(summarize_trace(trace))
        # Theorem 2 on the fitted process: the GI/M/1-type root at the
        # cluster's aggregate service rate, and the tail decay it implies.
        sigma = solve_sigma(fit.process, service_rate=float(num_servers))
        decay = sigma ** num_servers
        simulated = run(
            fit.experiment_spec(
                num_servers=num_servers,
                d=2,
                num_jobs=num_jobs,
                warmup_jobs=num_jobs // 12,
                seed=77,
            ),
            backend="cluster",
        )
        rows.append([f"{name} -> {fit.family}", sigma, decay, simulated.mean_delay])

    print(
        format_table(
            ["capture -> fitted family", "sigma (Thm 2)", "tail decay sigma^N", "simulated delay"],
            rows,
            title=(
                f"SQ(2), N={num_servers}, rho={utilization}: fit-then-analyze beyond Poisson "
                f"(Poisson lower bound = {poisson_bound.mean_delay:.3f})"
            ),
        )
    )
    print()


def map_ph_building_block() -> None:
    utilization = 0.8
    service = ErlangService(stages=2, mean=1.0)
    smooth = PoissonArrivals(utilization / service.mean)
    bursty = MarkovianArrivalProcess.mmpp2(
        rate_high=1.9 * smooth.rate,
        rate_low=0.1 * smooth.rate,
        switch_to_low=0.02,
        switch_to_high=0.02,
    )
    rows = []
    for name, arrivals in [("Poisson", smooth), ("MMPP-2 (bursty)", bursty)]:
        solution = solve_map_ph_1(arrivals, service)
        if isinstance(arrivals, MarkovianArrivalProcess):
            scv = arrivals.interarrival_scv
            lag1 = arrivals.lag_autocorrelation(1)
            idc = arrivals.asymptotic_idc()
        else:
            scv, lag1, idc = 1.0, 0.0, 1.0
        rows.append([name, solution.utilization, scv, lag1, idc, solution.mean_sojourn_time])
    print(
        format_table(
            ["arrival process", "utilization", "SCV", "lag-1", "IDC", "mean delay"],
            rows,
            title="MAP/PH/1 building block (Erlang-2 service): burstiness at equal load",
        )
    )


def main() -> None:
    sqd_under_fitted_arrivals()
    map_ph_building_block()
    print("\nReading:")
    print("  * Fit-then-analyze closes the measurement loop: a trace is fitted")
    print("    (repro.traces), the fitted spec simulates through repro.run, and")
    print("    the same fitted process feeds Theorem 2's sigma root — smoother")
    print("    (Erlang) arrivals shrink sigma below rho, bursty ones inflate it.")
    print("  * The MAP/PH/1 solver reuses the same logarithmic-reduction machinery")
    print("    as the SQ(d) bounds, and the MAP's analytic SCV / lag-1 / IDC now")
    print("    quantify exactly how bursty its input is at identical utilization.")


if __name__ == "__main__":
    main()
