#!/usr/bin/env python3
"""Comparing dispatching policies on the same workload, including non-exponential service.

The paper's analysis covers SQ(d) with exponential service; its future-work
section points at more general service-time distributions.  The job-level
simulator is distribution-agnostic, so this example compares uniform random,
round-robin, SQ(2), JSQ, join-idle-queue and least-work-left dispatching on
both the paper's exponential workload and a high-variance (hyperexponential)
workload, where queue-length information alone is less informative.

Run with::

    python examples/policy_comparison.py
"""

from repro.markov.arrival_processes import PoissonArrivals
from repro.markov.service_distributions import ExponentialService, HyperexponentialService
from repro.policies import (
    JoinIdleQueue,
    JoinShortestQueue,
    LeastWorkLeft,
    PowerOfD,
    RoundRobin,
    UniformRandom,
)
from repro.simulation import ClusterSimulation
from repro.simulation.workloads import Workload
from repro.utils.tables import format_table


def compare(workload: Workload, title: str, num_jobs: int = 50_000, warmup_jobs: int = 5_000) -> None:
    policies = [
        ("random (SQ(1))", UniformRandom()),
        ("round-robin", RoundRobin()),
        ("SQ(2)", PowerOfD(2)),
        ("SQ(3)", PowerOfD(3)),
        ("JSQ", JoinShortestQueue()),
        ("join-idle-queue", JoinIdleQueue()),
        ("least-work-left(2)", LeastWorkLeft(2)),
    ]
    rows = []
    for name, policy in policies:
        result = ClusterSimulation(workload, policy, seed=2024, warmup_jobs=warmup_jobs).run(num_jobs)
        rows.append([name, result.mean_waiting_time, result.mean_sojourn_time])
    print(format_table(["policy", "mean waiting time", "mean delay"], rows, title=title))
    print()


def main() -> None:
    num_servers = 10
    utilization = 0.9
    arrival = PoissonArrivals(rate=utilization * num_servers)

    exponential = Workload(num_servers, arrival, ExponentialService(1.0))
    compare(exponential, f"Exponential service, N={num_servers}, rho={utilization} (the paper's model)")

    heavy_tailed = Workload(
        num_servers,
        arrival,
        HyperexponentialService.balanced_two_phase(mean=1.0, scv=10.0),
    )
    compare(heavy_tailed, f"Hyperexponential service (SCV=10), N={num_servers}, rho={utilization}")

    print("Reading:")
    print("  * Under exponential service, SQ(2) already captures most of JSQ's gain")
    print("    over random dispatching — the finite-N power of two choices.")
    print("  * Under high service-time variability, queue length is a weaker signal;")
    print("    least-work-left (which sees remaining work) regains part of the gap,")
    print("    and the advantage of polling more servers grows.")


if __name__ == "__main__":
    main()
