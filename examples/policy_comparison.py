#!/usr/bin/env python3
"""Comparing dispatching policies on the same workload, including non-exponential service.

The paper's analysis covers SQ(d) with exponential service; its future-work
section points at more general service-time distributions.  The job-level
``cluster`` backend is distribution-agnostic, so this example compares
uniform random, round-robin, SQ(2), SQ(3), JSQ, join-idle-queue and
least-work-left dispatching on both the paper's exponential workload and a
high-variance (hyperexponential) workload, where queue-length information
alone is less informative.

Every row is the *same* :class:`repro.ExperimentSpec` with only the policy
(and for SQ(d)/least-work-left the poll count ``d``) swapped — the sweep the
stringly-typed pre-spec entry points could not express uniformly.

Run with::

    python examples/policy_comparison.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.01``) to shrink the simulated job
counts for smoke runs.
"""

import os

from repro import ExperimentSpec, run
from repro.utils.tables import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))

POLICIES = [
    ("random (SQ(1))", "random", 1),
    ("round-robin", "round_robin", 1),
    ("SQ(2)", "sqd", 2),
    ("SQ(3)", "sqd", 3),
    ("JSQ", "jsq", 1),
    ("join-idle-queue", "jiq", 1),
    ("least-work-left(2)", "least_work_left", 2),
]


def compare(title: str, num_servers: int, utilization: float, num_jobs: int, **workload) -> None:
    rows = []
    for name, policy, d in POLICIES:
        spec = ExperimentSpec.create(
            num_servers=num_servers,
            d=d,
            utilization=utilization,
            policy=policy,
            num_jobs=num_jobs,
            warmup_jobs=num_jobs // 10,
            seed=2024,
            **workload,
        )
        result = run(spec, backend="cluster")
        rows.append([name, result.extras["mean_waiting_time"], result.mean_delay])
    print(format_table(["policy", "mean waiting time", "mean delay"], rows, title=title))
    print()


def main() -> None:
    num_servers = 10
    utilization = 0.9
    num_jobs = max(2_000, int(50_000 * SCALE))

    compare(
        f"Exponential service, N={num_servers}, rho={utilization} (the paper's model)",
        num_servers,
        utilization,
        num_jobs,
    )

    compare(
        f"Hyperexponential service (SCV=10), N={num_servers}, rho={utilization}",
        num_servers,
        utilization,
        num_jobs,
        service="hyperexponential",
        service_params={"scv": 10.0},
    )

    print("Reading:")
    print("  * Under exponential service, SQ(2) already captures most of JSQ's gain")
    print("    over random dispatching — the finite-N power of two choices.")
    print("  * Under high service-time variability, queue length is a weaker signal;")
    print("    least-work-left (which sees remaining work) regains part of the gap,")
    print("    and the advantage of polling more servers grows.")


if __name__ == "__main__":
    main()
