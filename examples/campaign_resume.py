#!/usr/bin/env python3
"""A sweep campaign interrupted mid-flight, resumed, and verified identical.

The durability loop of ``repro.campaigns`` (docs/campaigns.md) in
miniature:

1. run a small ``(N, rho)`` sweep campaign to completion in one directory
   (the reference);
2. run an identical campaign in a second directory, but *interrupt* it
   durably after a few tasks (``max_tasks`` — the graceful stand-in for the
   SIGKILL the tier-1 suite throws at a live campaign);
3. inspect the interrupted directory with the read-only status snapshot;
4. resume it to completion;
5. verify the interrupted-then-resumed campaign is **bitwise identical** to
   the uninterrupted reference — records and streamed estimates alike;
6. rerun with a target precision to watch adaptive allocation spend extra
   replications on the noisy high-utilization point only.

Run with::

    python examples/campaign_resume.py

Set ``REPRO_EXAMPLES_SCALE`` (e.g. ``0.1``) to shrink the simulated event
counts for smoke runs.
"""

import os
import tempfile
from pathlib import Path

from repro import GridConfig, campaign_status, resume_campaign, run_campaign
from repro.campaigns import campaign_fingerprint

SCALE = float(os.environ.get("REPRO_EXAMPLES_SCALE", "1"))

NUM_EVENTS = max(1_000, int(20_000 * SCALE))
REPLICATIONS = 3


def make_grid() -> GridConfig:
    return GridConfig(
        server_counts=(20, 50),
        choices=(2,),
        utilizations=(0.8, 0.95),
        num_events=NUM_EVENTS,
        replications=REPLICATIONS,
        seed=20160627,
        workers=1,
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        reference_dir = Path(tmp) / "reference"
        resumed_dir = Path(tmp) / "interrupted"

        # 1. The never-interrupted reference.
        reference = run_campaign(grid=make_grid(), directory=reference_dir)
        print("reference campaign:")
        print(reference.as_table())
        print()

        # 2. An identical campaign, stopped durably after 3 tasks.
        interrupted = run_campaign(
            grid=make_grid(), directory=resumed_dir, max_tasks=3
        )
        print(
            f"interrupted after {interrupted.executed_tasks} of "
            f"{reference.executed_tasks} tasks (complete={interrupted.complete})"
        )

        # 3. What's on disk right now, read-only.
        snapshot = campaign_status(resumed_dir)
        counts = snapshot.counts
        print(
            f"status: {counts['done']}/{counts['total']} done, "
            f"{counts['pending']} pending — resumable"
        )
        print()

        # 4. Pick the campaign back up from its directory alone.
        resumed = resume_campaign(resumed_dir)
        print(f"resumed: ran {resumed.executed_tasks} more task(s)")
        print(resumed.as_table())
        print()

        # 5. The guarantee: interruption left no trace in the results.
        identical = campaign_fingerprint(reference_dir) == campaign_fingerprint(
            resumed_dir
        )
        print(f"interrupted-then-resumed == uninterrupted: {identical}")
        if not identical:
            raise SystemExit("campaign resume broke bitwise determinism!")

        # 6. Adaptive allocation: same grid, but with a precision target the
        # quiet rho=0.8 points meet immediately while the noisy rho=0.95
        # points need extra batches.
        adaptive_dir = Path(tmp) / "adaptive"
        adaptive = run_campaign(
            grid=make_grid(),
            directory=adaptive_dir,
            target_relative_half_width=0.15,
            max_replications=12,
            batch_size=3,
        )
        print()
        print("adaptive allocation (target 15% relative half-width):")
        for point in adaptive.points:
            print(
                f"  N={point.labels['N']:>3} rho={point.labels['utilization']:.2f}: "
                f"{point.replications:>2} replications, converged={point.converged}"
            )


if __name__ == "__main__":
    main()
