#!/usr/bin/env python3
"""Accuracy/complexity tradeoff of the bounds as the threshold T grows.

The paper observes (Section V) that the upper bound tightens quickly with the
threshold ``T`` but that the QBD block size ``C(N+T-1, T)`` — and hence the
cost of the matrix-geometric solve — grows exponentially.  This example makes
that tradeoff concrete for a 3-server SQ(2) system and also reports how long
each solve took, plus the (cheap) Theorem 3 lower bound for comparison.

Run with::

    python examples/bound_accuracy_study.py

(The exact oracle routes through ``repro.run``; the threshold sweep stays on
the low-level solver API on purpose — per-method timings are its subject.)
"""

import time

from repro import ExperimentSpec, SQDModel, run
from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.qbd_solver import SolutionMethod, UnstableBoundModelError, solve_bound_model
from repro.core.state_space import repeating_block_size
from repro.utils.tables import format_table


def main() -> None:
    num_servers = 3
    d = 2
    utilization = 0.8
    thresholds = (1, 2, 3, 4, 5)

    model = SQDModel(num_servers=num_servers, d=d, utilization=utilization)
    exact = run(
        ExperimentSpec.create(
            num_servers=num_servers, d=d, utilization=utilization, buffer_size=35
        ),
        backend="exact",
    )
    print(
        f"SQ({d}) with N={num_servers} at rho={utilization}; exact mean delay "
        f"(truncated chain oracle) = {exact.mean_delay:.4f}\n"
    )

    rows = []
    for threshold in thresholds:
        block_size = repeating_block_size(num_servers, threshold)

        start = time.perf_counter()
        lower_scalar = solve_improved_lower_bound(model, threshold).mean_delay
        scalar_seconds = time.perf_counter() - start

        start = time.perf_counter()
        lower_blocks = LowerBoundModel(model, threshold).qbd_blocks()
        lower_matrix = solve_bound_model(lower_blocks, method=SolutionMethod.MATRIX_GEOMETRIC).mean_delay
        matrix_seconds = time.perf_counter() - start

        start = time.perf_counter()
        try:
            upper = solve_bound_model(UpperBoundModel(model, threshold).qbd_blocks()).mean_delay
            upper_text = f"{upper:.4f}"
        except UnstableBoundModelError:
            upper_text = "unstable"
        upper_seconds = time.perf_counter() - start

        rows.append(
            [
                threshold,
                block_size,
                f"{lower_scalar:.4f}",
                f"{lower_matrix:.4f}",
                upper_text,
                f"{scalar_seconds*1e3:.1f}",
                f"{matrix_seconds*1e3:.1f}",
                f"{upper_seconds*1e3:.1f}",
            ]
        )

    print(
        format_table(
            [
                "T",
                "block size",
                "lower (Thm 3)",
                "lower (Thm 1)",
                "upper (Thm 1)",
                "ms Thm3",
                "ms Thm1 lower",
                "ms upper",
            ],
            rows,
            title="Bound accuracy and cost vs threshold T",
        )
    )

    print("\nReading:")
    print("  * Both lower-bound methods agree to numerical precision; Theorem 3 is")
    print("    the cheaper route because it skips the R-matrix computation.")
    print("  * The upper bound may be unstable (drift condition fails) for small T")
    print("    at this utilization and tightens as T grows, at an exponentially")
    print("    growing block size — the tradeoff the paper highlights.")
    print("  * All bounds sandwich the exact oracle value printed above.")


if __name__ == "__main__":
    main()
