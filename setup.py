"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
the package can be installed in editable mode on environments whose
setuptools/pip are too old for PEP 660 editable installs (no ``wheel``
package available), via ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
