"""Exact (truncated) stationary analysis of the original SQ(d) chain.

The untruncated SQ(d) Markov process has an infinite, irregularly structured
state space — that is exactly why the paper resorts to bound models.  For
*small* systems, however, one can truncate the ordered state space at a large
per-server buffer ``B`` (arrivals that would push the longest queue beyond
``B`` are dropped) and solve the finite chain directly.  With ``B`` large
enough the truncation error is negligible, giving a slow but trustworthy
oracle used to validate the bounds (lower <= exact <= upper) in tests and
examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.delay import DelayMetrics, metrics_from_distribution
from repro.core.model import SQDModel
from repro.core.state import State
from repro.core.transitions import all_transitions
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class ExactSolution:
    """Stationary solution of the buffer-truncated SQ(d) chain."""

    model: SQDModel
    buffer_size: int
    distribution: Dict[State, float]
    metrics: DelayMetrics
    truncation_mass: float

    @property
    def mean_delay(self) -> float:
        return self.metrics.mean_sojourn_time

    @property
    def num_states(self) -> int:
        return len(self.distribution)


def _truncated_transitions(model: SQDModel, buffer_size: int):
    def transition_function(state: State) -> Iterable[Tuple[State, float]]:
        for target, rate in all_transitions(state, model):
            if target[0] > buffer_size:
                continue  # drop arrivals that would exceed the buffer
            yield target, rate

    return transition_function


def solve_exact_truncated(model: SQDModel, buffer_size: int = 30) -> ExactSolution:
    """Solve the buffer-truncated SQ(d) chain exactly.

    Parameters
    ----------
    model:
        The SQ(d) model; keep ``num_servers`` small (the ordered state space
        has ``C(N + B, N)`` states).
    buffer_size:
        Maximum number of jobs per server before arrivals are dropped.
        ``30`` keeps the truncation mass negligible for utilizations up to
        roughly 0.9 on small clusters.
    """
    check_integer("buffer_size", buffer_size, minimum=1)
    model.require_stable()
    empty_state: State = tuple([0] * model.num_servers)
    chain = ContinuousTimeMarkovChain.from_transition_function(
        [empty_state],
        _truncated_transitions(model, buffer_size),
        max_states=2_000_000,
    )
    distribution = chain.stationary_distribution()
    metrics = metrics_from_distribution(distribution, model.total_arrival_rate, model.service_rate)
    truncation_mass = sum(p for state, p in distribution.items() if state[0] == buffer_size)
    return ExactSolution(
        model=model,
        buffer_size=buffer_size,
        distribution=distribution,
        metrics=metrics,
        truncation_mass=float(truncation_mass),
    )


def exact_state_space_size(model: SQDModel, buffer_size: int) -> int:
    """Number of ordered states with every queue at most ``buffer_size``."""
    from repro.utils.combinatorics import binomial

    return binomial(model.num_servers + buffer_size, model.num_servers)
