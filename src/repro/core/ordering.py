"""Stochastic-ordering machinery of Section III.

The paper proves that the lower/upper bound models bound the original SQ(d)
system by a sample-path / dynamic-programming argument: a cost function
``v_n(m)`` (expected cost over ``n`` steps of the uniformized chain) is
monotone along the precedence order of Eq. (5), and each redirected
transition moves to a state on the correct side of that order, so the
modified chain's cost iterates dominate (or are dominated by) the original
ones.

This module makes that argument *executable* on small instances:

* :func:`cost_function_iteration` runs the value iteration
  ``v_{n+1}(m) = c(m) + sum_{m'} p(m, m') v_n(m')`` on the uniformized chain
  of any transition structure;
* :func:`verify_monotonicity_on_elementary_pairs` checks Eq. (7)
  (``v_n(m) <= v_n(m')`` for elementary precedence pairs);
* :func:`verify_bound_dominance` checks the final sandwich
  ``v_n^{lower} <= v_n^{original} <= v_n^{upper}`` statewise.

These are used by the test suite as numerical evidence that the reconstructed
redirection rules (DESIGN.md) satisfy the ordering the proof requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.core.model import SQDModel
from repro.core.state import State, elementary_successors, precedes, total_jobs, waiting_jobs
from repro.core.transitions import transition_rate_map

CostFunction = Callable[[State], float]
TransitionMap = Callable[[State], Mapping[State, float]]


def default_cost_function(state: State) -> float:
    """The cost used for delay bounds: the number of waiting jobs in ``state``."""
    return float(waiting_jobs(state))


def total_jobs_cost_function(state: State) -> float:
    """Alternative cost: total number of jobs (bounds the mean queue length)."""
    return float(total_jobs(state))


def uniformized_step_probabilities(
    transition_map: Mapping[State, float],
    uniformization_rate: float,
    source: State,
) -> Dict[State, float]:
    """One-step probabilities of the uniformized chain for a single state."""
    probabilities: Dict[State, float] = {}
    total_rate = 0.0
    for target, rate in transition_map.items():
        probabilities[target] = probabilities.get(target, 0.0) + rate / uniformization_rate
        total_rate += rate
    self_loop = 1.0 - total_rate / uniformization_rate
    if self_loop < -1e-9:
        raise ValueError("uniformization rate is smaller than the total exit rate")
    probabilities[source] = probabilities.get(source, 0.0) + max(self_loop, 0.0)
    return probabilities


def cost_function_iteration(
    states: Iterable[State],
    transitions: TransitionMap,
    cost_function: CostFunction,
    num_iterations: int,
    uniformization_rate: float,
) -> Dict[State, np.ndarray]:
    """Run ``num_iterations`` steps of the cost (value) iteration of Section III.

    Returns, for every state, the vector ``(v_0(m), v_1(m), ..., v_n(m))``.
    Transitions leading outside the supplied state set contribute cost through
    their target's ``v_0 = 0`` start (i.e. they are treated as absorbing with
    zero future cost), so callers should pass a state set large enough that
    the truncation does not affect the comparison horizon.
    """
    state_list: List[State] = list(states)
    state_index = {state: i for i, state in enumerate(state_list)}
    values = np.zeros((num_iterations + 1, len(state_list)))
    step_probabilities: List[Dict[State, float]] = [
        uniformized_step_probabilities(transitions(state), uniformization_rate, state) for state in state_list
    ]
    costs = np.array([cost_function(state) for state in state_list])

    for n in range(num_iterations):
        for i, state in enumerate(state_list):
            accumulated = 0.0
            for target, probability in step_probabilities[i].items():
                j = state_index.get(target)
                if j is not None:
                    accumulated += probability * values[n, j]
            values[n + 1, i] = costs[i] + accumulated
    return {state: values[:, i].copy() for i, state in enumerate(state_list)}


def verify_monotonicity_on_elementary_pairs(
    model: SQDModel,
    states: Iterable[State],
    transitions: TransitionMap,
    num_iterations: int = 30,
    cost_function: CostFunction = default_cost_function,
    tolerance: float = 1e-9,
    max_total_jobs_for_comparison: int | None = None,
) -> bool:
    """Numerically check Eq. (7): ``v_n(m) <= v_n(m')`` for elementary pairs in the set.

    Because the iteration is run on a *truncated* state set (transitions out
    of the set contribute zero future cost), states close to the truncation
    boundary have underestimated values; restrict the comparison to pairs
    whose total job count is at most ``max_total_jobs_for_comparison`` so that
    every value entering the comparison is exact for the chosen horizon
    (a state with ``k`` jobs is unaffected by the truncation as long as
    ``k + num_iterations`` stays within the enumerated set).
    """
    state_list = list(states)
    state_set = set(state_list)
    uniformization_rate = model.total_arrival_rate + model.num_servers * model.service_rate
    values = cost_function_iteration(state_list, transitions, cost_function, num_iterations, uniformization_rate)
    for state in state_list:
        if max_total_jobs_for_comparison is not None and total_jobs(state) > max_total_jobs_for_comparison:
            continue
        for successor in elementary_successors(state):
            if successor not in state_set:
                continue
            if max_total_jobs_for_comparison is not None and total_jobs(successor) > max_total_jobs_for_comparison:
                continue
            if np.any(values[state] > values[successor] + tolerance):
                return False
    return True


def verify_bound_dominance(
    original_values: Mapping[State, np.ndarray],
    bound_values: Mapping[State, np.ndarray],
    direction: str,
    tolerance: float = 1e-9,
    max_total_jobs_for_comparison: int | None = None,
) -> bool:
    """Check statewise dominance of the cost iterates of a bound model.

    ``direction='upper'`` asserts ``v_n^{original} <= v_n^{bound}`` and
    ``direction='lower'`` the reverse, for every common state and iteration.
    ``max_total_jobs_for_comparison`` restricts the comparison to states far
    enough from the truncation boundary of the value iteration (see
    :func:`verify_monotonicity_on_elementary_pairs`).
    """
    if direction not in ("lower", "upper"):
        raise ValueError("direction must be 'lower' or 'upper'")
    for state, original in original_values.items():
        if max_total_jobs_for_comparison is not None and total_jobs(state) > max_total_jobs_for_comparison:
            continue
        bound = bound_values.get(state)
        if bound is None:
            continue
        if direction == "upper":
            if np.any(original > bound + tolerance):
                return False
        else:
            if np.any(bound > original + tolerance):
                return False
    return True


def original_transition_map(model: SQDModel) -> TransitionMap:
    """Transition map of the *original* SQ(d) chain (no threshold restriction)."""

    def transitions(state: State) -> Mapping[State, float]:
        return transition_rate_map(state, model)

    return transitions


def precedence_pairs_within(states: Iterable[State]) -> List[Tuple[State, State]]:
    """All precedence pairs (Eq. 5) among the supplied states (for property tests)."""
    state_list = list(states)
    pairs: List[Tuple[State, State]] = []
    for first in state_list:
        for second in state_list:
            if first != second and precedes(first, second):
                pairs.append((first, second))
    return pairs
