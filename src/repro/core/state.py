"""Ordered queue-length states and the precedence partial order.

Following Section II of the paper, a state of the SQ(d) Markov process is
the *sorted* vector of queue lengths ``m = (m1, ..., mN)`` with
``m1 >= m2 >= ... >= mN``: ``m1`` is the longest queue and ``mN`` the
shortest.  States are represented as plain tuples of ints so they can be used
as dictionary keys.

The module also implements the precedence relation of Eq. (5),

.. math:: (m, m') \\in P \\iff \\sum_{i \\le j} m_i \\le \\sum_{i \\le j} m'_i
          \\quad \\forall j,

read as "``m`` is at least as preferable as ``m'``" (fewer jobs in the ``j``
longest queues, for every ``j``), together with the elementary pair set
``P_m`` and the decomposition of Eq. (6) used by the stochastic-ordering
proof of Section III.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

State = Tuple[int, ...]


# --------------------------------------------------------------------------- #
# Construction and basic queries
# --------------------------------------------------------------------------- #
def canonical_state(queue_lengths: Iterable[int]) -> State:
    """Sort raw per-server queue lengths into the canonical ordered state."""
    values = [int(v) for v in queue_lengths]
    if any(v < 0 for v in values):
        raise ValueError(f"queue lengths must be non-negative, got {values}")
    return tuple(sorted(values, reverse=True))


def is_ordered(state: Sequence[int]) -> bool:
    """True if ``state`` is sorted in non-increasing order with non-negative entries."""
    return all(state[i] >= state[i + 1] for i in range(len(state) - 1)) and all(v >= 0 for v in state)


def total_jobs(state: Sequence[int]) -> int:
    """``#m`` — the total number of jobs in the system (in service + waiting)."""
    return int(sum(state))


def waiting_jobs(state: Sequence[int]) -> int:
    """Total number of *waiting* jobs: ``sum_i max(m_i - 1, 0)``."""
    return int(sum(max(v - 1, 0) for v in state))


def busy_servers(state: Sequence[int]) -> int:
    """Number of servers with at least one job."""
    return int(sum(1 for v in state if v > 0))


def imbalance(state: Sequence[int]) -> int:
    """``m1 - mN`` — the spread between the longest and shortest queue."""
    if not state:
        return 0
    return int(state[0] - state[-1])


def partial_sums(state: Sequence[int]) -> Tuple[int, ...]:
    """Prefix sums ``(m1, m1+m2, ..., #m)`` used by the precedence order."""
    sums = []
    running = 0
    for value in state:
        running += int(value)
        sums.append(running)
    return tuple(sums)


def tie_groups(state: Sequence[int]) -> List[Tuple[int, int, int]]:
    """Maximal runs of equal components as ``(start, end, value)`` (0-based, inclusive).

    For ``(3, 2, 2, 0)`` the groups are ``[(0, 0, 3), (1, 2, 2), (3, 3, 0)]``.
    The groups drive both the arrival convention (a job joining a tied group
    is recorded at the group's *first* position) and the departure convention
    (a departure from a tied group is recorded at the group's *last*
    position).
    """
    groups: List[Tuple[int, int, int]] = []
    n = len(state)
    start = 0
    while start < n:
        end = start
        while end + 1 < n and state[end + 1] == state[start]:
            end += 1
        groups.append((start, end, int(state[start])))
        start = end + 1
    return groups


def increment_position(state: Sequence[int], position: int) -> State:
    """Add one job at ``position`` and return the canonical resulting state.

    By the paper's convention the position is the first index of a tie group,
    so the result is already ordered; canonicalization is still applied as a
    safety net for redirected transitions that add jobs elsewhere.
    """
    values = list(state)
    values[position] += 1
    return canonical_state(values)


def decrement_position(state: Sequence[int], position: int) -> State:
    """Remove one job at ``position`` and return the canonical resulting state."""
    values = list(state)
    if values[position] <= 0:
        raise ValueError(f"cannot remove a job from empty position {position} of {tuple(state)}")
    values[position] -= 1
    return canonical_state(values)


def shift_state(state: Sequence[int], levels: int) -> State:
    """Add ``levels`` jobs to every server (the block-to-block bijection of Section IV)."""
    if levels < 0 and min(state) + levels < 0:
        raise ValueError("shift would make a queue length negative")
    return tuple(int(v) + levels for v in state)


# --------------------------------------------------------------------------- #
# Precedence order (Eq. 5) and elementary pairs (Eq. 6)
# --------------------------------------------------------------------------- #
def precedes(state: Sequence[int], other: Sequence[int]) -> bool:
    """True if ``(state, other)`` is a precedence pair of Eq. (5).

    Interpreted as "``state`` is at least as preferable as ``other``": for
    every ``j`` the ``j`` longest queues of ``state`` hold no more jobs than
    those of ``other``.
    """
    if len(state) != len(other):
        raise ValueError("states must have the same number of servers")
    return all(s <= o for s, o in zip(partial_sums(state), partial_sums(other)))


def strictly_precedes(state: Sequence[int], other: Sequence[int]) -> bool:
    """True if ``precedes(state, other)`` and the states differ."""
    return tuple(state) != tuple(other) and precedes(state, other)


def elementary_successors(state: Sequence[int]) -> List[State]:
    """The targets of the elementary precedence pairs ``P_m`` of the paper.

    For a state ``m`` these are ``m + e_N`` and ``m + e_j - e_{j+1}`` for
    ``j = 1, ..., N-1`` — i.e. add one job to the shortest queue, or move one
    job one position "up" towards longer queues.  Only targets that are valid
    ordered states are returned.
    """
    n = len(state)
    successors: List[State] = []
    plus_last = list(state)
    plus_last[-1] += 1
    if is_ordered(plus_last):
        successors.append(tuple(plus_last))
    for j in range(n - 1):
        candidate = list(state)
        candidate[j] += 1
        candidate[j + 1] -= 1
        if candidate[j + 1] >= 0 and is_ordered(candidate):
            successors.append(tuple(candidate))
    return successors


def precedence_decomposition(state: Sequence[int], other: Sequence[int]) -> List[int]:
    """The coefficients ``(s_1, ..., s_N)`` of Eq. (6).

    For a precedence pair ``(m, m')`` the paper writes

    .. math:: m' = m + s_N e_N + s_{N-1} (e_{N-1} - e_N) + ... + s_1 (e_1 - e_2),

    where ``s_j`` is the ``j``-th partial sum of the componentwise difference.
    All coefficients are non-negative exactly when ``(m, m')`` is a precedence
    pair, which is how the decomposition reduces general pairs to chains of
    elementary ones.
    """
    if len(state) != len(other):
        raise ValueError("states must have the same number of servers")
    differences = [int(o) - int(s) for s, o in zip(state, other)]
    coefficients: List[int] = []
    running = 0
    for difference in differences:
        running += difference
        coefficients.append(running)
    return coefficients


def is_valid_state(state: Sequence[int], num_servers: int, threshold: int | None = None) -> bool:
    """Membership test for the (optionally threshold-restricted) state space.

    With ``threshold=None`` this checks membership in the unrestricted ordered
    state space ``M`` of Eq. (1); with a threshold ``T`` it checks membership
    in the restricted space ``S`` of the bound models (``m1 - mN <= T``).
    """
    if len(state) != num_servers:
        return False
    if not is_ordered(state):
        return False
    if threshold is not None and imbalance(state) > threshold:
        return False
    return True
