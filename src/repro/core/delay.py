"""Delay metrics from stationary queue-length distributions.

The paper's headline metric is the jobs' *average delay* — the mean sojourn
(response) time.  For any stationary distribution over ordered states it is
obtained by summing the expected number of waiting jobs (``max(m_i - 1, 0)``
per server) against the distribution and applying Little's law with the
arrival rate ``lambda N``, then adding the mean service time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.state import State, busy_servers, total_jobs, waiting_jobs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DelayMetrics:
    """Mean delay decomposition for one model/distribution."""

    mean_jobs_in_system: float
    mean_waiting_jobs: float
    mean_busy_servers: float
    mean_waiting_time: float
    mean_sojourn_time: float

    @property
    def mean_delay(self) -> float:
        """Alias for the mean sojourn time, the paper's "average delay"."""
        return self.mean_sojourn_time


def metrics_from_distribution(
    distribution: Mapping[State, float],
    total_arrival_rate: float,
    service_rate: float = 1.0,
) -> DelayMetrics:
    """Compute delay metrics from a stationary distribution over ordered states.

    Parameters
    ----------
    distribution:
        Mapping from ordered states to stationary probabilities; it need not
        be perfectly normalized (it is renormalized defensively).
    total_arrival_rate:
        ``lambda * N`` — used in Little's law.
    service_rate:
        ``mu`` — the mean service time ``1/mu`` is added to the waiting time
        to obtain the sojourn time.
    """
    check_positive("total_arrival_rate", total_arrival_rate)
    check_positive("service_rate", service_rate)
    mass = float(sum(distribution.values()))
    if mass <= 0:
        raise ValueError("distribution has no probability mass")

    mean_jobs = 0.0
    mean_waiting = 0.0
    mean_busy = 0.0
    for state, probability in distribution.items():
        weight = probability / mass
        mean_jobs += weight * total_jobs(state)
        mean_waiting += weight * waiting_jobs(state)
        mean_busy += weight * busy_servers(state)

    mean_waiting_time = mean_waiting / total_arrival_rate
    mean_sojourn_time = mean_waiting_time + 1.0 / service_rate
    return DelayMetrics(
        mean_jobs_in_system=mean_jobs,
        mean_waiting_jobs=mean_waiting,
        mean_busy_servers=mean_busy,
        mean_waiting_time=mean_waiting_time,
        mean_sojourn_time=mean_sojourn_time,
    )


def mm1_sojourn_time(utilization: float, service_rate: float = 1.0) -> float:
    """Mean sojourn time of an M/M/1 queue — the exact SQ(1) per-server delay."""
    if not 0 <= utilization < 1:
        raise ValueError("utilization must be in [0, 1) for a stable M/M/1 queue")
    return 1.0 / (service_rate * (1.0 - utilization))


def mm1_waiting_time(utilization: float, service_rate: float = 1.0) -> float:
    """Mean waiting time of an M/M/1 queue."""
    return mm1_sojourn_time(utilization, service_rate) - 1.0 / service_rate


def mmn_erlang_c(num_servers: int, offered_load: float) -> float:
    """Erlang-C probability of waiting in an M/M/N queue with offered load ``a = lambda/mu``.

    The M/M/N queue (one shared queue, N servers) is the lower envelope of
    every dispatching policy and a useful reference curve in the examples.
    """
    if offered_load >= num_servers:
        raise ValueError("offered load must be below the number of servers")
    # Iterative Erlang-B then convert to Erlang-C for numerical stability.
    erlang_b = 1.0
    for k in range(1, num_servers + 1):
        erlang_b = offered_load * erlang_b / (k + offered_load * erlang_b)
    rho = offered_load / num_servers
    return erlang_b / (1.0 - rho + rho * erlang_b)


def mmn_sojourn_time(num_servers: int, utilization: float, service_rate: float = 1.0) -> float:
    """Mean sojourn time of an M/M/N queue at per-server utilization ``rho``."""
    if not 0 <= utilization < 1:
        raise ValueError("utilization must be in [0, 1)")
    offered_load = utilization * num_servers
    waiting_probability = mmn_erlang_c(num_servers, offered_load)
    mean_wait = waiting_probability / (num_servers * service_rate * (1.0 - utilization))
    return mean_wait + 1.0 / service_rate
