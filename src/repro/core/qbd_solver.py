"""Matrix-geometric solution of the bound models (Theorem 1 of the paper).

Given the generator blocks assembled by
:class:`repro.core.bound_models.QBDBlocks`, this module

1. computes the matrix ``G`` with the Latouche–Ramaswami logarithmic
   reduction and the rate matrix ``R = -A0 (A1 + A0 G)^{-1}``,
2. solves the boundary balance equations

   .. math:: (\\pi_b, \\pi_0, \\pi_1)
             \\begin{pmatrix} R_{00} & R_{01} & 0 \\\\
                              R_{10} & A_1 & A_0 \\\\
                              0 & A_2 & A_1 + R A_2 \\end{pmatrix} = 0

   with the normalization
   ``pi_b e + pi_0 e + pi_1 (I - R)^{-1} e = 1``,
3. exposes the stationary distribution (``pi_{q+1} = pi_q R`` for ``q >= 1``)
   and the delay metrics derived from it.

The same code also solves the *improved lower bound* of Theorems 2-3, where
the rate matrix is replaced by the scalar ``sigma^N`` (``rho^N`` for Poisson
arrivals): geometric matrix sums simply become scalar geometric series.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.bound_models import BoundKind, QBDBlocks
from repro.core.state import State, total_jobs, waiting_jobs
from repro.linalg.blocks import geometric_block_sum, spectral_radius
from repro.linalg.logarithmic_reduction import (
    QBDSolveError,
    is_qbd_positive_recurrent,
    qbd_drift,
    rate_matrix_from_G,
    rate_matrix_residual,
    solve_G_logarithmic_reduction,
)
from repro.linalg.solvers import solve_constrained_left_nullspace


class SolutionMethod(enum.Enum):
    """How the geometric tail of the stationary distribution is represented."""

    MATRIX_GEOMETRIC = "matrix-geometric"
    SCALAR_GEOMETRIC = "scalar-geometric"


class UnstableBoundModelError(RuntimeError):
    """Raised when the (upper) bound model violates Neuts' drift condition."""


@dataclass(frozen=True)
class BoundModelSolution:
    """Stationary solution of a bound model and the delay metrics derived from it."""

    blocks: QBDBlocks
    method: SolutionMethod
    pi_boundary: np.ndarray
    pi_block0: np.ndarray
    pi_block1: np.ndarray
    rate_matrix: Optional[np.ndarray]
    decay_factor: Optional[float]
    mean_jobs_in_system: float
    mean_waiting_jobs: float
    mean_waiting_time: float
    mean_sojourn_time: float
    drift: float
    g_iterations: int = 0
    g_residual: float = 0.0
    r_residual: float = 0.0
    balance_residual: float = 0.0

    @property
    def mean_delay(self) -> float:
        """The paper's "average delay" — the mean sojourn (response) time."""
        return self.mean_sojourn_time

    @property
    def kind(self) -> BoundKind:
        return self.blocks.kind

    def boundary_probabilities(self) -> Dict[State, float]:
        """Stationary probabilities of the boundary states."""
        return {state: float(p) for state, p in zip(self.blocks.partition.boundary, self.pi_boundary)}

    def block_probabilities(self, block_index: int) -> Dict[State, float]:
        """Stationary probabilities of the states of repeating block ``B_q``."""
        if block_index < 0:
            raise ValueError("block_index must be non-negative")
        if block_index == 0:
            vector = self.pi_block0
        else:
            vector = self.pi_block1.copy()
            for _ in range(block_index - 1):
                vector = self._advance(vector)
        states = [tuple(v + block_index for v in s) for s in self.blocks.partition.block0]
        return {state: float(p) for state, p in zip(states, vector)}

    def _advance(self, vector: np.ndarray) -> np.ndarray:
        if self.method is SolutionMethod.MATRIX_GEOMETRIC:
            return vector @ self.rate_matrix
        return vector * self.decay_factor

    def total_probability_mass(self, max_blocks: int = 200) -> float:
        """Numerically re-sum the probability mass (sanity check, should be ~1)."""
        mass = float(self.pi_boundary.sum() + self.pi_block0.sum())
        vector = self.pi_block1.copy()
        for _ in range(max_blocks):
            mass += float(vector.sum())
            vector = self._advance(vector)
            if vector.sum() < 1e-16:
                break
        return mass

    def queue_length_tail_distribution(self, max_length: int = 40, tolerance: float = 1e-14) -> list:
        """Fraction of servers with at least ``k`` jobs, for ``k = 0 .. max_length``.

        This is the bound-model analogue of Mitzenmacher's asymptotic
        fractions ``s_k`` (see
        :func:`repro.core.asymptotic.asymptotic_queue_length_distribution`),
        computed from the stationary distribution by averaging the indicator
        ``m_i >= k`` over servers and states.  The geometric tail over the
        repeating blocks is summed numerically until its mass drops below
        ``tolerance``.
        """
        num_servers = self.blocks.model.num_servers
        tail = np.zeros(max_length + 1)

        def accumulate(states, probabilities) -> None:
            for state, probability in zip(states, probabilities):
                if probability <= 0:
                    continue
                for k in range(max_length + 1):
                    count = sum(1 for v in state if v >= k)
                    if count == 0:
                        break
                    tail[k] += probability * count / num_servers

        partition = self.blocks.partition
        accumulate(partition.boundary, self.pi_boundary)
        accumulate(partition.block0, self.pi_block0)
        vector = self.pi_block1.copy()
        shift = 1
        while float(vector.sum()) > tolerance and shift < 10_000:
            states = [tuple(v + shift for v in s) for s in partition.block0]
            accumulate(states, vector)
            vector = self._advance(vector)
            shift += 1
        return [float(value) for value in tail]


def solve_bound_model(
    blocks: QBDBlocks,
    method: SolutionMethod | str = SolutionMethod.MATRIX_GEOMETRIC,
    decay_factor: Optional[float] = None,
) -> BoundModelSolution:
    """Solve a bound model for its stationary distribution and delay metrics.

    Parameters
    ----------
    blocks:
        Generator blocks from :meth:`LowerBoundModel.qbd_blocks` or
        :meth:`UpperBoundModel.qbd_blocks`.
    method:
        ``MATRIX_GEOMETRIC`` implements Theorem 1 (works for both bound
        models); ``SCALAR_GEOMETRIC`` implements Theorems 2-3 and is only
        valid for the lower bound model.
    decay_factor:
        The scalar ``sigma^N`` for the scalar-geometric method.  Defaults to
        ``rho^N`` (Theorem 3, Poisson arrivals) when omitted.

    Raises
    ------
    UnstableBoundModelError
        If the QBD drift condition fails (typically the upper bound model at
        high utilization / small T).
    """
    if isinstance(method, str):
        method = SolutionMethod(method)

    model = blocks.model
    drift = qbd_drift(blocks.A0, blocks.A1, blocks.A2)
    if drift >= 0:
        raise UnstableBoundModelError(
            f"{blocks.kind.value} bound model with T={blocks.threshold} is not positive recurrent "
            f"at utilization {model.utilization:.3f} (drift {drift:.3e} >= 0)"
        )

    if method is SolutionMethod.MATRIX_GEOMETRIC:
        g_result = solve_G_logarithmic_reduction(blocks.A0, blocks.A1, blocks.A2)
        R = rate_matrix_from_G(blocks.A0, blocks.A1, g_result.G)
        r_residual = rate_matrix_residual(blocks.A0, blocks.A1, blocks.A2, R)
        tail_block = blocks.A1 + R @ blocks.A2
        tail_weights = geometric_block_sum(R, np.ones(blocks.block_size))
        scalar = None
        g_iterations = g_result.iterations
        g_residual = g_result.residual
    else:
        if blocks.kind is not BoundKind.LOWER:
            raise ValueError("the scalar-geometric (improved) method only applies to the lower bound model")
        scalar = decay_factor if decay_factor is not None else model.utilization ** model.num_servers
        if not 0.0 < scalar < 1.0:
            raise UnstableBoundModelError(f"scalar decay factor {scalar} is outside (0, 1)")
        R = None
        r_residual = 0.0
        g_iterations = 0
        g_residual = 0.0
        tail_block = blocks.A1 + scalar * blocks.A2
        tail_weights = np.full(blocks.block_size, 1.0 / (1.0 - scalar))

    balance_matrix = _assemble_boundary_balance_matrix(blocks, tail_block)
    weights = np.concatenate(
        [np.ones(blocks.boundary_size), np.ones(blocks.block_size), tail_weights]
    )
    solution_vector = solve_constrained_left_nullspace(balance_matrix, weights)
    if np.any(solution_vector < -1e-8):
        raise QBDSolveError("boundary solve produced negative probabilities")
    solution_vector = np.clip(solution_vector, 0.0, None)
    balance_residual = float(np.linalg.norm(solution_vector @ balance_matrix))

    boundary_size = blocks.boundary_size
    block_size = blocks.block_size
    pi_boundary = solution_vector[:boundary_size]
    pi_block0 = solution_vector[boundary_size:boundary_size + block_size]
    pi_block1 = solution_vector[boundary_size + block_size:]

    metrics = _delay_metrics(blocks, pi_boundary, pi_block0, pi_block1, R, scalar)

    return BoundModelSolution(
        blocks=blocks,
        method=method,
        pi_boundary=pi_boundary,
        pi_block0=pi_block0,
        pi_block1=pi_block1,
        rate_matrix=R,
        decay_factor=scalar,
        mean_jobs_in_system=metrics["mean_jobs"],
        mean_waiting_jobs=metrics["mean_waiting_jobs"],
        mean_waiting_time=metrics["mean_waiting_time"],
        mean_sojourn_time=metrics["mean_sojourn_time"],
        drift=drift,
        g_iterations=g_iterations,
        g_residual=g_residual,
        r_residual=r_residual,
        balance_residual=balance_residual,
    )


def _assemble_boundary_balance_matrix(blocks: QBDBlocks, tail_block: np.ndarray) -> np.ndarray:
    """The 3x3 block matrix of Theorem 1 / Eq. (13)-(14)."""
    boundary_size = blocks.boundary_size
    block_size = blocks.block_size
    total = boundary_size + 2 * block_size
    matrix = np.zeros((total, total))
    b, m = boundary_size, block_size
    matrix[:b, :b] = blocks.R00
    matrix[:b, b:b + m] = blocks.R01
    matrix[b:b + m, :b] = blocks.R10
    matrix[b:b + m, b:b + m] = blocks.A1
    matrix[b:b + m, b + m:] = blocks.A0
    matrix[b + m:, b:b + m] = blocks.A2
    matrix[b + m:, b + m:] = tail_block
    return matrix


def _delay_metrics(
    blocks: QBDBlocks,
    pi_boundary: np.ndarray,
    pi_block0: np.ndarray,
    pi_block1: np.ndarray,
    R: Optional[np.ndarray],
    scalar: Optional[float],
) -> Dict[str, float]:
    """Mean queue-length / waiting / sojourn metrics from the stationary vectors.

    The sums over the infinite repeating blocks use

    .. math:: \\sum_{q \\ge 1} \\pi_q = \\pi_1 (I - R)^{-1}, \\qquad
              \\sum_{q \\ge 1} (q - 1) \\pi_q = \\pi_1 (I - R)^{-2} R

    (or the scalar analogues when ``pi_{q+1} = sigma^N pi_q``).
    """
    model = blocks.model
    partition = blocks.partition
    num_servers = model.num_servers

    boundary_totals = np.array([total_jobs(s) for s in partition.boundary], dtype=float)
    boundary_waiting = np.array([waiting_jobs(s) for s in partition.boundary], dtype=float)
    block0_totals = np.array([total_jobs(s) for s in partition.block0], dtype=float)
    block1_totals = block0_totals + num_servers

    mean_jobs = float(pi_boundary @ boundary_totals + pi_block0 @ block0_totals)
    mean_waiting_jobs = float(
        pi_boundary @ boundary_waiting + pi_block0 @ (block0_totals - num_servers)
    )

    if R is not None:
        ones = np.ones(blocks.block_size)
        inv = np.linalg.inv(np.eye(blocks.block_size) - R)
        tail_mass_vector = pi_block1 @ inv                      # sum_{q>=1} pi_q
        extra_levels = pi_block1 @ inv @ inv @ R                # sum_{q>=1} (q-1) pi_q
        tail_jobs = float(tail_mass_vector @ block1_totals + num_servers * (extra_levels @ ones))
        tail_mass = float(tail_mass_vector @ ones)
    else:
        sigma_n = float(scalar)
        tail_mass = float(pi_block1.sum()) / (1.0 - sigma_n)
        # sum_{q>=1} (q-1) sigma_n^(q-1) = sigma_n / (1 - sigma_n)^2
        extra_level_mass = float(pi_block1.sum()) * sigma_n / (1.0 - sigma_n) ** 2
        tail_jobs = float((pi_block1 @ block1_totals) / (1.0 - sigma_n) + num_servers * extra_level_mass)

    mean_jobs += tail_jobs
    mean_waiting_jobs += tail_jobs - num_servers * tail_mass

    arrival_rate = model.total_arrival_rate
    mean_waiting_time = mean_waiting_jobs / arrival_rate
    mean_sojourn_time = mean_waiting_time + 1.0 / model.service_rate

    return {
        "mean_jobs": mean_jobs,
        "mean_waiting_jobs": mean_waiting_jobs,
        "mean_waiting_time": mean_waiting_time,
        "mean_sojourn_time": mean_sojourn_time,
    }


def upper_bound_is_stable(blocks: QBDBlocks) -> bool:
    """Convenience wrapper around Neuts' drift condition for the upper bound model."""
    return is_qbd_positive_recurrent(blocks.A0, blocks.A1, blocks.A2)


def decay_rate(blocks: QBDBlocks) -> float:
    """Spectral radius of the rate matrix R (the geometric tail decay per block)."""
    g_result = solve_G_logarithmic_reduction(blocks.A0, blocks.A1, blocks.A2)
    R = rate_matrix_from_G(blocks.A0, blocks.A1, g_result.G)
    return spectral_radius(R)
