"""The improved lower bound of Section IV.B (Theorems 2 and 3).

The matrix-geometric solution of Theorem 1 requires computing the rate matrix
``R``; Theorem 2 shows that for the *lower* bound model the repeating-block
probabilities satisfy the much simpler scalar relation

.. math:: \\pi_{q+1} = \\sigma^N \\pi_q , \\qquad q = 1, 2, ...

where ``sigma`` is the unique root in the unit interval of
``x = sum_k x^k beta_k`` (the classical GI/M/1 root equation for the
interarrival distribution).  Theorem 3 specializes to Poisson arrivals, where
``sigma = rho``.

This module wires those theorems to the QBD machinery: the boundary balance
system of Eq. (14) is solved with ``A1 + sigma^N A2`` in place of
``A1 + R A2`` and all geometric tail sums become scalar series, which removes
the most expensive part of the computation.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bound_models import LowerBoundModel, QBDBlocks
from repro.core.model import SQDModel
from repro.core.qbd_solver import BoundModelSolution, SolutionMethod, solve_bound_model
from repro.markov.arrival_processes import ArrivalProcess, PoissonArrivals, solve_sigma
from repro.utils.validation import check_integer


def poisson_decay_factor(model: SQDModel) -> float:
    """Theorem 3: for Poisson arrivals the per-block decay factor is ``rho^N``."""
    model.require_stable()
    return model.utilization ** model.num_servers


def general_decay_factor(model: SQDModel, arrival_process: ArrivalProcess) -> float:
    """Theorem 2: decay factor ``sigma^N`` for a general renewal arrival process.

    ``sigma`` solves ``x = sum_k x^k beta_k`` with the ``beta_k`` of Eq. (19)
    computed for the given interarrival distribution; see
    :func:`repro.markov.arrival_processes.solve_sigma`.
    """
    sigma = solve_sigma(arrival_process, service_rate=model.service_rate * model.num_servers)
    return sigma ** model.num_servers


def solve_improved_lower_bound(
    model: SQDModel,
    threshold: int,
    blocks: Optional[QBDBlocks] = None,
    decay_factor: Optional[float] = None,
) -> BoundModelSolution:
    """Solve the lower bound model with the scalar-geometric tail of Theorems 2-3.

    Parameters
    ----------
    model, threshold:
        The SQ(d) model and the imbalance threshold ``T``.
    blocks:
        Pre-assembled QBD blocks of the lower bound model (assembled on the
        fly when omitted; passing them avoids re-enumerating the state space
        when both Theorem 1 and Theorem 3 solutions are needed).
    decay_factor:
        Override for ``sigma^N``; defaults to ``rho^N`` (Poisson arrivals).
    """
    check_integer("threshold", threshold, minimum=1)
    model.require_stable()
    if blocks is None:
        blocks = LowerBoundModel(model, threshold).qbd_blocks()
    factor = decay_factor if decay_factor is not None else poisson_decay_factor(model)
    return solve_bound_model(blocks, method=SolutionMethod.SCALAR_GEOMETRIC, decay_factor=factor)


def geometric_tail_decay(model: SQDModel, arrival_process: Optional[ArrivalProcess] = None) -> float:
    """Per-block decay factor of the lower bound model's stationary tail.

    For Poisson arrivals this is ``rho^N`` (Theorem 3); for a general renewal
    arrival process it is ``sigma^N`` with ``sigma`` the GI/M/1-type root of
    Theorem 2.  The full stationary solution for non-Poisson input would
    additionally require the embedded (at-arrival) chain of the bound model —
    the paper states Theorem 2 at that level of generality but evaluates only
    the Poisson case, and so do we: the non-Poisson decay factor is exposed
    for tail-asymptotics studies (see ``examples/nonpoisson_arrivals.py``)
    while :func:`solve_improved_lower_bound` keeps its exact Poisson scope.
    """
    if arrival_process is None or isinstance(arrival_process, PoissonArrivals):
        return poisson_decay_factor(model)
    return general_decay_factor(model, arrival_process)
