"""Exact SQ(d) transition rates on ordered states (Section II.A of the paper).

Arrivals
--------
With every arrival the dispatcher polls ``d`` of the ``N`` servers uniformly
at random without replacement.  On the ordered state the polled job joins
position ``i`` (1-indexed) — i.e. the ``i``-th longest queue — with rate

.. math:: \\lambda(m, m + e_i) = \\frac{\\binom{i-1}{d-1}}{\\binom{N}{d}} \\lambda N

when all components of ``m`` are distinct.  When positions ``i .. i+j`` form
a tie group the paper's convention places the arrival at the *first* position
of the group, with aggregate rate

.. math:: \\lambda(m, m + e_i) =
          \\frac{\\binom{i+j}{d} - \\binom{i-1}{d}}{\\binom{N}{d}} \\lambda N .

The distinct case is the special case of a singleton group (the identity
``C(i, d) - C(i-1, d) = C(i-1, d-1)`` connects the two forms), so the group
formula is the only one implemented.

Departures
----------
Each busy server completes work at rate ``mu``.  On the ordered state a
departure from a tie group of size ``g`` occurs at rate ``g * mu`` and, by
the paper's second convention, is recorded at the *last* position of the
group, which keeps the state sorted.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.model import SQDModel
from repro.core.state import State, decrement_position, increment_position, tie_groups
from repro.utils.combinatorics import binomial


def arrival_transitions(state: State, model: SQDModel) -> List[Tuple[State, float]]:
    """Arrival transitions ``(target, rate)`` out of ``state`` under SQ(d).

    The rates over all targets sum to the total arrival rate ``lambda * N``.
    """
    n = model.num_servers
    d = model.d
    if len(state) != n:
        raise ValueError(f"state {state} does not match num_servers={n}")
    total_combinations = binomial(n, d)
    transitions: List[Tuple[State, float]] = []
    for start, end, _value in tie_groups(state):
        # 1-indexed group positions are [start+1, end+1].
        favourable = binomial(end + 1, d) - binomial(start, d)
        if favourable <= 0:
            continue
        rate = model.total_arrival_rate * favourable / total_combinations
        transitions.append((increment_position(state, start), rate))
    return transitions


def departure_transitions(state: State, model: SQDModel) -> List[Tuple[State, float]]:
    """Departure transitions ``(target, rate)`` out of ``state``.

    The rates sum to ``mu`` times the number of busy servers.
    """
    n = model.num_servers
    if len(state) != n:
        raise ValueError(f"state {state} does not match num_servers={n}")
    transitions: List[Tuple[State, float]] = []
    for start, end, value in tie_groups(state):
        if value == 0:
            continue
        group_size = end - start + 1
        rate = model.service_rate * group_size
        transitions.append((decrement_position(state, end), rate))
    return transitions


def all_transitions(state: State, model: SQDModel) -> List[Tuple[State, float]]:
    """All outgoing transitions (arrivals then departures) of ``state``."""
    return arrival_transitions(state, model) + departure_transitions(state, model)


def transition_rate_map(state: State, model: SQDModel) -> Dict[State, float]:
    """Outgoing transitions aggregated by target state."""
    rates: Dict[State, float] = {}
    for target, rate in all_transitions(state, model):
        rates[target] = rates.get(target, 0.0) + rate
    return rates


def arrival_position_probabilities(state: State, model: SQDModel) -> Dict[int, float]:
    """Probability that an arrival joins each (0-based, group-first) position.

    Useful for tests and for the routing-probability view of the policy: the
    probabilities over group-leading positions sum to one.
    """
    probabilities: Dict[int, float] = {}
    total_combinations = binomial(model.num_servers, model.d)
    for start, end, _value in tie_groups(state):
        favourable = binomial(end + 1, model.d) - binomial(start, model.d)
        if favourable <= 0:
            continue
        probabilities[start] = favourable / total_combinations
    return probabilities
