"""Spec-keyed memoization of QBD bound solves for sweeps and grids.

Solving a bound model is the expensive analytical step of the library: the
R-matrix iteration over a ``C(N+T-1, T)``-sized repeating block takes
milliseconds at ``N = 6`` and minutes near the tractability limit.  Sweeps
multiply that cost: a figure harness, an ensemble grid with bound
annotations, or repeated :func:`repro.run` calls over the same bracket all
re-solve matrices that are a pure function of the *solve key*

    ``(policy, N, d, utilization, service_rate, threshold, bound, method)``

— nothing else.  This module memoizes at exactly that granularity: one
process-wide LRU cache (thread-safe, bounded) in front of the lower and
upper bound solves of :func:`repro.core.analysis.analyze_sqd`, so a grid
sweep performs **one QBD solve per distinct (system, policy)
configuration** instead of one per grid point, and a re-run of a sweep in
the same process costs nothing.

Because the solves are deterministic, memoization is invisible in the
results: cached and uncached runs are bitwise identical (the regression
tests in ``tests/test_solver_cache.py`` assert exactly that).  The returned
:class:`~repro.core.qbd_solver.BoundModelSolution` objects are frozen
dataclasses; callers treat them (and their numpy arrays) as read-only,
which every call-site in the package already does.

Instability of the upper bound model is an *outcome*, not an error, at this
layer: it is cached like any solution, so a sweep does not re-attempt a
drift-violating configuration per point.

Usage is implicit — ``analyze_sqd`` routes through the default cache — but
the cache is also a public object for instrumentation::

    from repro.core.solver_cache import solver_cache
    solver_cache().clear()
    ...  # run a sweep
    print(solver_cache().stats)   # CacheStats(hits=…, misses=…, …)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Tuple

__all__ = [
    "CacheStats",
    "SolverCache",
    "solver_cache",
    "clear_solver_cache",
    "bound_solve_key",
]

#: Default maximum number of cached solutions.  A solution for a tractable
#: model is at most a few MB (the R matrix dominates); 256 entries bound the
#: footprint while covering any realistic sweep.
DEFAULT_MAXSIZE = 256


@dataclass(frozen=True)
class CacheStats:
    """Counters of one cache: reads split into hits/misses, plus evictions."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def solves(self) -> int:
        """Number of actual solver invocations (= misses)."""
        return self.misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class SolverCache:
    """Thread-safe LRU memo cache for deterministic solver results.

    Parameters
    ----------
    maxsize : int
        Upper bound on cached entries; the least recently used entry is
        evicted first.  ``maxsize=0`` disables caching (every lookup is a
        miss and nothing is stored) without changing any call-site.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, evictions=self._evictions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self, reset_stats: bool = True) -> None:
        """Drop every entry (and, by default, the counters)."""
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self._hits = 0
                self._misses = 0
                self._evictions = 0

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on first use.

        ``compute`` runs outside the lock (solves are slow; lookups must not
        serialize behind them), so two threads racing on the same new key
        may both solve — the first stored result wins and the law is
        unaffected because solves are deterministic.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
        value = compute()
        with self._lock:
            if self._maxsize > 0 and key not in self._entries:
                self._entries[key] = value
                while len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1
            return self._entries.get(key, value)


def bound_solve_key(
    bound: str,
    num_servers: int,
    d: int,
    utilization: float,
    service_rate: float,
    threshold: int,
    method: Optional[str] = None,
    policy: str = "sqd",
) -> Tuple:
    """The canonical spec key of one QBD bound solve.

    Two solves share a key exactly when they are the same mathematical
    problem: same bound side (``"lower"`` / ``"upper"``), same system
    ``(N, d, rho, mu)``, same threshold ``T``, same solution method and the
    same (currently always SQ(d)) policy.
    """
    return (
        policy,
        bound,
        int(num_servers),
        int(d),
        float(utilization),
        float(service_rate),
        int(threshold),
        method,
    )


_DEFAULT_CACHE = SolverCache()


def solver_cache() -> SolverCache:
    """The process-wide default cache used by :func:`analyze_sqd`."""
    return _DEFAULT_CACHE


def clear_solver_cache() -> None:
    """Drop every cached solve and reset the counters (mainly for tests)."""
    _DEFAULT_CACHE.clear()
