"""Enumeration and partition of the threshold-restricted state space.

The bound models of the paper live on

.. math:: S = \\{ m = (m_1, ..., m_N) : m_1 \\ge ... \\ge m_N \\ge 0,\\;
                 m_1 - m_N \\le T \\},

which is partitioned (Section IV.A) into a boundary block

.. math:: B_{\\le (N-1)T} = \\{ m \\in S : \\#m \\le (N-1)T \\}

and repeating blocks ``B_q`` containing the states with
``(N-1)T + qN < \\#m <= (N-1)T + (q+1)N``.  Every repeating block has exactly
``C(N+T-1, T)`` states and ``B_{q+1}`` is obtained from ``B_q`` by adding one
job to every server (the shift bijection), which is what gives the generator
its QBD structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.state import State, imbalance, shift_state, total_jobs
from repro.utils.combinatorics import binomial, descending_tuples
from repro.utils.validation import check_integer


def boundary_job_limit(num_servers: int, threshold: int) -> int:
    """Largest total job count of a boundary state: ``(N-1) * T``."""
    return (num_servers - 1) * threshold


def repeating_block_size(num_servers: int, threshold: int) -> int:
    """Number of states in each repeating block: ``C(N+T-1, T)``."""
    return binomial(num_servers + threshold - 1, threshold)


def enumerate_restricted_states(num_servers: int, threshold: int, max_total_jobs: int) -> List[State]:
    """All states of ``S`` with at most ``max_total_jobs`` jobs, sorted canonically.

    The canonical order is by total job count, then lexicographically
    descending; it matches the ordering used to index the QBD blocks.
    """
    check_integer("num_servers", num_servers, minimum=1)
    check_integer("threshold", threshold, minimum=1)
    check_integer("max_total_jobs", max_total_jobs, minimum=0)

    states: List[State] = []
    # A state is the shortest queue length mN plus a non-increasing offset
    # vector delta with entries in [0, T] (delta_N = 0).
    max_base = max_total_jobs // num_servers
    for base in range(max_base + 1):
        for offsets in descending_tuples(num_servers - 1, threshold):
            state = tuple(base + offset for offset in offsets) + (base,)
            if total_jobs(state) <= max_total_jobs:
                states.append(state)
    unique_states = sorted(set(states), key=_canonical_sort_key)
    return unique_states


def _canonical_sort_key(state: State) -> Tuple[int, Tuple[int, ...]]:
    return (total_jobs(state), state)


def boundary_states(num_servers: int, threshold: int) -> List[State]:
    """The boundary block ``B_{<=(N-1)T}`` in canonical order."""
    return enumerate_restricted_states(num_servers, threshold, boundary_job_limit(num_servers, threshold))


def first_repeating_block(num_servers: int, threshold: int) -> List[State]:
    """The block ``B_0``: states with ``(N-1)T < #m <= (N-1)T + N`` in canonical order.

    Every state in a repeating block has all servers busy (``mN >= 1``).
    """
    limit = boundary_job_limit(num_servers, threshold)
    states: List[State] = []
    for offsets in descending_tuples(num_servers - 1, threshold):
        offsets_total = sum(offsets)
        # Choose the unique base level mN >= 1 placing the total in the window.
        remaining = limit + 1 - offsets_total
        base = max(1, -(-remaining // num_servers))  # ceil division, at least 1
        state = tuple(base + offset for offset in offsets) + (base,)
        if not limit < total_jobs(state) <= limit + num_servers:
            raise RuntimeError(f"block construction failed for offsets {offsets}: got total {total_jobs(state)}")
        states.append(state)
    states.sort(key=_canonical_sort_key)
    expected = repeating_block_size(num_servers, threshold)
    if len(states) != expected or len(set(states)) != expected:
        raise RuntimeError(
            f"block B0 has {len(states)} states, expected C(N+T-1, T) = {expected}"
        )
    return states


def repeating_block(num_servers: int, threshold: int, block_index: int) -> List[State]:
    """The block ``B_q`` obtained by shifting ``B_0`` up by ``q`` jobs per server."""
    check_integer("block_index", block_index, minimum=0)
    return [shift_state(state, block_index) for state in first_repeating_block(num_servers, threshold)]


@dataclass(frozen=True)
class StateSpacePartition:
    """Boundary and first repeating blocks of ``S`` with index lookups.

    This is the static structure the QBD generator blocks are built on:
    ``boundary`` indexes the rows/columns of ``R00``, ``block0`` those of
    ``A1``/``A0``/``R10`` and ``block1`` those of the repeated level used to
    read off the level-independent blocks.
    """

    num_servers: int
    threshold: int
    boundary: Tuple[State, ...]
    block0: Tuple[State, ...]
    block1: Tuple[State, ...]
    block2: Tuple[State, ...]

    @property
    def block_size(self) -> int:
        return len(self.block0)

    @property
    def boundary_size(self) -> int:
        return len(self.boundary)

    def boundary_index(self) -> Dict[State, int]:
        return {state: i for i, state in enumerate(self.boundary)}

    def block_index(self, block: Tuple[State, ...]) -> Dict[State, int]:
        return {state: i for i, state in enumerate(block)}

    def classify(self, state: State) -> Tuple[str, int]:
        """Return ``(block_name, index)`` locating ``state`` within the partition."""
        for name, block in (("boundary", self.boundary), ("block0", self.block0), ("block1", self.block1), ("block2", self.block2)):
            try:
                return name, block.index(state)
            except ValueError:
                continue
        raise KeyError(f"state {state} is outside the enumerated partition")


def build_partition(num_servers: int, threshold: int) -> StateSpacePartition:
    """Enumerate the boundary and the first three repeating blocks of ``S``."""
    check_integer("num_servers", num_servers, minimum=2)
    check_integer("threshold", threshold, minimum=1)
    boundary = tuple(boundary_states(num_servers, threshold))
    block0 = tuple(first_repeating_block(num_servers, threshold))
    block1 = tuple(shift_state(s, 1) for s in block0)
    block2 = tuple(shift_state(s, 2) for s in block0)
    return StateSpacePartition(
        num_servers=num_servers,
        threshold=threshold,
        boundary=boundary,
        block0=block0,
        block1=block1,
        block2=block2,
    )


def membership_checker(num_servers: int, threshold: int):
    """Return a predicate testing membership in ``S`` (shape + imbalance)."""

    def contains(state: State) -> bool:
        return (
            len(state) == num_servers
            and all(state[i] >= state[i + 1] for i in range(num_servers - 1))
            and state[-1] >= 0
            and imbalance(state) <= threshold
        )

    return contains
