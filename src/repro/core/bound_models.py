"""The SQ(d) lower and upper bound models (Sections II-III of the paper).

Both bound models restrict the ordered state space to

.. math:: S = \\{ m : m_1 \\ge ... \\ge m_N, \\; m_1 - m_N \\le T \\}

and *redirect* the two kinds of transitions that would leave ``S``:

* an arrival into the longest-queue group while ``m_1 - m_N = T`` (it would
  raise the imbalance to ``T + 1``), and
* a departure from the shortest-queue group while ``m_1 - m_N = T``.

The **lower bound model** redirects both to *more preferable* states in the
precedence order of Eq. (5): the blocked arrival joins the shortest queue
instead, and the blocked departure is taken from the longest queue instead
(equivalently, a job "jockeys" from the longest to the shortest queue, as in
Adan et al.'s JSQ construction).  The **upper bound model** redirects both to
*less preferable* states: the departure from the shortest queue is simply
blocked (wasting service capacity — this is why its stability region shrinks)
and the arriving job joins the longest queue while a phantom job is injected
into the shortest queue (keeping the chain inside ``S`` at the price of extra
load).  See DESIGN.md for the full reconstruction argument; the redirection
targets are on the correct side of the precedence order, which is all the
stochastic-ordering proof of Section III requires.

Away from the boundary the redirected dynamics are invariant under adding a
job to every server, so the restricted chains are level-independent QBDs;
this module also assembles their generator blocks
``R00, R01, R10, A0, A1, A2`` in the block layout of Section IV.A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.model import SQDModel
from repro.core.state import (
    State,
    canonical_state,
    imbalance,
    precedes,
    tie_groups,
    total_jobs,
)
from repro.core.state_space import StateSpacePartition, build_partition
from repro.core.transitions import arrival_transitions, departure_transitions
from repro.utils.combinatorics import binomial
from repro.utils.validation import check_integer


class BoundKind(enum.Enum):
    """Which side of the SQ(d) delay the modified chain bounds."""

    LOWER = "lower"
    UPPER = "upper"


@dataclass(frozen=True)
class Redirection:
    """Record of one redirected transition (kept for introspection and tests)."""

    source: State
    original_target: State
    redirected_target: State | None  # None means the transition is blocked
    rate: float
    reason: str


@dataclass(frozen=True)
class QBDBlocks:
    """Generator blocks of a bound model in the layout of Section IV.A."""

    model: SQDModel
    threshold: int
    kind: BoundKind
    partition: StateSpacePartition
    R00: np.ndarray
    R01: np.ndarray
    R10: np.ndarray
    A0: np.ndarray
    A1: np.ndarray
    A2: np.ndarray

    @property
    def block_size(self) -> int:
        return self.partition.block_size

    @property
    def boundary_size(self) -> int:
        return self.partition.boundary_size


class _BoundModelBase:
    """Shared machinery of the lower and upper bound models."""

    kind: BoundKind

    def __init__(self, model: SQDModel, threshold: int):
        check_integer("threshold", threshold, minimum=1)
        if model.num_servers < 2:
            raise ValueError("bound models require at least two servers (N >= 2)")
        self.model = model
        self.threshold = int(threshold)

    # ------------------------------------------------------------------ #
    # Redirected transition structure
    # ------------------------------------------------------------------ #
    def contains(self, state: State) -> bool:
        """Membership in the restricted space ``S``."""
        return (
            len(state) == self.model.num_servers
            and all(state[i] >= state[i + 1] for i in range(len(state) - 1))
            and state[-1] >= 0
            and imbalance(state) <= self.threshold
        )

    def transition_map(self, state: State) -> Dict[State, float]:
        """Outgoing transitions of ``state`` in the bound model, aggregated by target."""
        rates: Dict[State, float] = {}
        for target, rate, _ in self._transitions_with_provenance(state):
            if target is None or target == state:
                continue
            rates[target] = rates.get(target, 0.0) + rate
        return rates

    def redirections(self, state: State) -> List[Redirection]:
        """The redirected (or blocked) transitions out of ``state``."""
        redirections = []
        for target, rate, redirection in self._transitions_with_provenance(state):
            if redirection is not None:
                redirections.append(redirection)
        return redirections

    def _transitions_with_provenance(
        self, state: State
    ) -> List[Tuple[State | None, float, Redirection | None]]:
        if not self.contains(state):
            raise ValueError(f"state {state} is outside the restricted space S (T={self.threshold})")
        results: List[Tuple[State | None, float, Redirection | None]] = []
        for target, rate in arrival_transitions(state, self.model):
            if imbalance(target) <= self.threshold:
                results.append((target, rate, None))
            else:
                redirected = self._redirect_arrival(state)
                results.append(
                    (
                        redirected,
                        rate,
                        Redirection(
                            source=state,
                            original_target=target,
                            redirected_target=redirected,
                            rate=rate,
                            reason="arrival would push the imbalance above T",
                        ),
                    )
                )
        for target, rate in departure_transitions(state, self.model):
            if imbalance(target) <= self.threshold:
                results.append((target, rate, None))
            else:
                redirected = self._redirect_departure(state)
                results.append(
                    (
                        redirected,
                        rate,
                        Redirection(
                            source=state,
                            original_target=target,
                            redirected_target=redirected,
                            rate=rate,
                            reason="departure from the shortest queue would push the imbalance above T",
                        ),
                    )
                )
        return results

    # Subclasses define where the violating transitions go.
    def _redirect_arrival(self, state: State) -> State | None:
        raise NotImplementedError

    def _redirect_departure(self, state: State) -> State | None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # QBD block assembly
    # ------------------------------------------------------------------ #
    def qbd_blocks(self) -> QBDBlocks:
        """Assemble the generator blocks of Section IV.A for this bound model."""
        partition = build_partition(self.model.num_servers, self.threshold)
        boundary_index = partition.boundary_index()
        block0_index = partition.block_index(partition.block0)
        block1_index = partition.block_index(partition.block1)
        block2_index = partition.block_index(partition.block2)

        boundary_size = partition.boundary_size
        block_size = partition.block_size

        R00 = np.zeros((boundary_size, boundary_size))
        R01 = np.zeros((boundary_size, block_size))
        R10 = np.zeros((block_size, boundary_size))
        A1_from_B0 = np.zeros((block_size, block_size))
        A0_from_B0 = np.zeros((block_size, block_size))
        A2 = np.zeros((block_size, block_size))
        A1 = np.zeros((block_size, block_size))
        A0 = np.zeros((block_size, block_size))

        # Boundary rows.
        for i, state in enumerate(partition.boundary):
            total_rate = 0.0
            for target, rate in self.transition_map(state).items():
                total_rate += rate
                if target in boundary_index:
                    R00[i, boundary_index[target]] += rate
                elif target in block0_index:
                    R01[i, block0_index[target]] += rate
                else:
                    raise RuntimeError(f"boundary state {state} reaches unexpected block via {target}")
            R00[i, i] -= total_rate

        # Rows of B0 (transitions may fall back into the boundary).
        for i, state in enumerate(partition.block0):
            total_rate = 0.0
            for target, rate in self.transition_map(state).items():
                total_rate += rate
                if target in boundary_index:
                    R10[i, boundary_index[target]] += rate
                elif target in block0_index:
                    A1_from_B0[i, block0_index[target]] += rate
                elif target in block1_index:
                    A0_from_B0[i, block1_index[target]] += rate
                else:
                    raise RuntimeError(f"B0 state {state} reaches unexpected block via {target}")
            A1_from_B0[i, i] -= total_rate

        # Rows of B1 define the level-independent blocks A2, A1, A0.
        for i, state in enumerate(partition.block1):
            total_rate = 0.0
            for target, rate in self.transition_map(state).items():
                total_rate += rate
                if target in block0_index:
                    A2[i, block0_index[target]] += rate
                elif target in block1_index:
                    A1[i, block1_index[target]] += rate
                elif target in block2_index:
                    A0[i, block2_index[target]] += rate
                else:
                    raise RuntimeError(f"B1 state {state} reaches unexpected block via {target}")
            A1[i, i] -= total_rate

        # Level independence (Eq. 9): the blocks read off B0 and B1 must agree.
        if not np.allclose(A1_from_B0, A1, atol=1e-9):
            raise RuntimeError("level-independence violated: A1 read from B0 and B1 differ")
        if not np.allclose(A0_from_B0, A0, atol=1e-9):
            raise RuntimeError("level-independence violated: A0 read from B0 and B1 differ")

        return QBDBlocks(
            model=self.model,
            threshold=self.threshold,
            kind=self.kind,
            partition=partition,
            R00=R00,
            R01=R01,
            R10=R10,
            A0=A0,
            A1=A1,
            A2=A2,
        )


class LowerBoundModel(_BoundModelBase):
    """Bound model whose mean delay is a stochastic *lower* bound for SQ(d).

    Violating transitions are redirected to more preferable states:

    * the arrival that would overload the longest queue joins the shortest
      queue instead (``m + e_N``), and
    * the departure that would underflow the shortest queue is taken from the
      longest queue instead (``m - e_1``), which is exactly the
      threshold-jockeying construction of Adan et al. generalized to SQ(d).

    The stability condition remains ``rho < 1``.
    """

    kind = BoundKind.LOWER

    def _redirect_arrival(self, state: State) -> State:
        values = list(state)
        values[-1] += 1
        redirected = canonical_state(values)
        return redirected

    def _redirect_departure(self, state: State) -> State:
        groups = tie_groups(state)
        top_start, top_end, top_value = groups[0]
        if top_value <= 0:
            raise RuntimeError(f"cannot redirect a departure in the empty state {state}")
        values = list(state)
        values[top_end] -= 1
        return canonical_state(values)


class UpperBoundModel(_BoundModelBase):
    """Bound model whose mean delay is a stochastic *upper* bound for SQ(d).

    Violating transitions are redirected to less preferable states:

    * the departure that would underflow the shortest queue is blocked (the
      service is wasted), reducing the effective service capacity, and
    * the arrival that would overload the longest queue still joins it, with
      phantom jobs injected into every shortest-level queue so the imbalance
      stays at ``T`` and the chain stays in ``S``.

    Both rules push extra work into the system, so ``rho < 1`` is no longer
    sufficient for stability; use
    :func:`repro.linalg.is_qbd_positive_recurrent` (exposed through the QBD
    solver) to check the drift condition before solving.
    """

    kind = BoundKind.UPPER

    def _redirect_arrival(self, state: State) -> State:
        # The job joins the longest queue; every queue at the shortest level
        # receives one phantom job so that the minimum rises by one and the
        # imbalance stays at T.  The result dominates m + e_1 in the
        # precedence order (strictly more jobs, same longest-queue content).
        groups = tie_groups(state)
        bottom_start, bottom_end, _bottom_value = groups[-1]
        values = list(state)
        values[0] += 1
        for position in range(bottom_start, bottom_end + 1):
            values[position] += 1
        return canonical_state(values)

    def _redirect_departure(self, state: State) -> None:
        return None  # blocked: the transition is dropped (self-loop)


def make_bound_model(model: SQDModel, threshold: int, kind: BoundKind | str) -> _BoundModelBase:
    """Factory returning the requested bound model."""
    if isinstance(kind, str):
        kind = BoundKind(kind.lower())
    if kind is BoundKind.LOWER:
        return LowerBoundModel(model, threshold)
    if kind is BoundKind.UPPER:
        return UpperBoundModel(model, threshold)
    raise ValueError(f"unknown bound kind {kind!r}")


def verify_redirections_respect_precedence(bound_model: _BoundModelBase, states: List[State]) -> bool:
    """Check that every redirection lands on the correct side of Eq. (5).

    For the lower bound every redirected target must precede the original
    target; for the upper bound the original target must precede the
    redirected one (a blocked departure is compared against staying in
    place).  Used by tests and by the ordering module.
    """
    for state in states:
        for redirection in bound_model.redirections(state):
            original = redirection.original_target
            redirected = redirection.redirected_target if redirection.redirected_target is not None else redirection.source
            if bound_model.kind is BoundKind.LOWER:
                if not precedes(redirected, original):
                    return False
            else:
                if not precedes(original, redirected):
                    return False
    return True
