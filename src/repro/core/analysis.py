"""High-level analysis API: bounds, asymptotics, simulation and exact oracle in one call.

:func:`analyze_sqd` is the main entry point of the library: given the model
parameters it produces the lower bound (Theorem 3 scalar form by default),
the upper bound (Theorem 1, when stable), the asymptotic approximation
(Eq. 16) and — optionally — a simulation estimate and the exact truncated
solution.  The examples and the Figure 10 harness are thin wrappers around
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.asymptotic import asymptotic_delay
from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.exact import ExactSolution, solve_exact_truncated
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.core.qbd_solver import (
    BoundModelSolution,
    SolutionMethod,
    UnstableBoundModelError,
    solve_bound_model,
)
from repro.core.solver_cache import bound_solve_key, solver_cache
from repro.simulation.gillespie import CTMCSimulationResult, simulate_sqd_ctmc
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class DelayAnalysis:
    """Everything the library knows about the mean delay of one SQ(d) configuration."""

    model: SQDModel
    threshold: int
    lower_bound: BoundModelSolution
    upper_bound: Optional[BoundModelSolution]
    upper_bound_unstable: bool
    asymptotic_delay: float
    simulation: Optional[CTMCSimulationResult] = None
    exact: Optional[ExactSolution] = None

    @property
    def lower_delay(self) -> float:
        return self.lower_bound.mean_delay

    @property
    def upper_delay(self) -> Optional[float]:
        return None if self.upper_bound is None else self.upper_bound.mean_delay

    @property
    def simulated_delay(self) -> Optional[float]:
        return None if self.simulation is None else self.simulation.mean_delay

    @property
    def exact_delay(self) -> Optional[float]:
        return None if self.exact is None else self.exact.mean_delay

    def summary_row(self) -> dict:
        """One flat record per configuration (used by the experiment harnesses)."""
        return {
            "N": self.model.num_servers,
            "d": self.model.d,
            "utilization": self.model.utilization,
            "T": self.threshold,
            "lower_bound": self.lower_delay,
            "upper_bound": self.upper_delay,
            "asymptotic": self.asymptotic_delay,
            "simulation": self.simulated_delay,
            "exact": self.exact_delay,
        }


def analyze_sqd(
    num_servers: int,
    d: int,
    utilization: float,
    threshold: int = 3,
    service_rate: float = 1.0,
    lower_bound_method: SolutionMethod | str = SolutionMethod.SCALAR_GEOMETRIC,
    compute_upper_bound: bool = True,
    run_simulation: bool = False,
    simulation_events: int = 200_000,
    simulation_seed: Optional[int] = 12345,
    compute_exact: bool = False,
    exact_buffer: int = 30,
    use_cache: bool = True,
) -> DelayAnalysis:
    """Analyze one SQ(d) configuration with every method the library offers.

    Parameters
    ----------
    num_servers : int
        Pool size ``N`` of the SQ(d) model of Section II.
    d : int
        Number of servers polled per arrival (``1 <= d <= N``).
    utilization : float
        Per-server traffic intensity ``rho = lambda / mu`` (dimensionless,
        strictly below 1) — *not* the raw arrival rate; the total arrival
        rate is ``rho * mu * N``.
    threshold : int
        The imbalance threshold ``T`` of the bound models.  Larger ``T``
        gives tighter (especially upper) bounds at an exponentially growing
        block size ``C(N+T-1, T)``.
    service_rate : float
        Per-server service rate ``mu`` in jobs per time unit; all reported
        delays are in units of ``1/mu`` (mean service times).
    lower_bound_method : SolutionMethod or str
        ``SCALAR_GEOMETRIC`` (Theorem 3, default) or ``MATRIX_GEOMETRIC``
        (Theorem 1); both agree to numerical precision.
    compute_upper_bound : bool
        Solve the upper bound model too (skipped automatically when its
        drift condition fails; ``upper_bound`` is then ``None``).
    run_simulation : bool
        Also estimate the delay by simulating the queue-length CTMC for
        ``simulation_events`` events with ``simulation_seed``.
    compute_exact : bool
        Also solve the buffer-truncated original chain (small ``N`` only),
        with ``exact_buffer`` jobs of head-room per server.
    use_cache : bool
        Route the (deterministic) QBD bound solves through the process-wide
        :func:`repro.core.solver_cache.solver_cache`, so sweeps and grids
        solve each distinct ``(system, policy)`` configuration once.
        Cached and uncached results are bitwise identical; pass ``False``
        to force a fresh solve.

    Returns
    -------
    DelayAnalysis
        Lower/upper bound solutions, the asymptotic delay of Eq. (16), and
        the optional simulation / exact estimates — every delay a mean
        sojourn time in units of ``1/mu``.
    """
    check_integer("threshold", threshold, minimum=1)
    model = SQDModel(num_servers=num_servers, d=d, utilization=utilization, service_rate=service_rate)
    model.require_stable()

    if isinstance(lower_bound_method, str):
        lower_bound_method = SolutionMethod(lower_bound_method)

    def _solve_lower() -> BoundModelSolution:
        blocks = LowerBoundModel(model, threshold).qbd_blocks()
        if lower_bound_method is SolutionMethod.SCALAR_GEOMETRIC:
            return solve_improved_lower_bound(model, threshold, blocks=blocks)
        return solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC)

    def _solve_upper() -> Optional[BoundModelSolution]:
        # Instability is an outcome of the configuration, not an error:
        # cache it like a solution so sweeps don't re-attempt it per point.
        blocks = UpperBoundModel(model, threshold).qbd_blocks()
        try:
            return solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC)
        except UnstableBoundModelError:
            return None

    def _key(bound: str, method: Optional[str]):
        return bound_solve_key(
            bound,
            num_servers=model.num_servers,
            d=model.d,
            utilization=model.utilization,
            service_rate=model.service_rate,
            threshold=threshold,
            method=method,
        )

    cache = solver_cache()
    if use_cache:
        lower_solution = cache.get_or_compute(
            _key("lower", lower_bound_method.value), _solve_lower
        )
    else:
        lower_solution = _solve_lower()

    upper_solution: Optional[BoundModelSolution] = None
    upper_unstable = False
    if compute_upper_bound:
        if use_cache:
            upper_solution = cache.get_or_compute(_key("upper", None), _solve_upper)
        else:
            upper_solution = _solve_upper()
        upper_unstable = upper_solution is None

    simulation = None
    if run_simulation:
        simulation = simulate_sqd_ctmc(
            num_servers=num_servers,
            d=d,
            utilization=utilization,
            service_rate=service_rate,
            num_events=simulation_events,
            seed=simulation_seed,
        )

    exact = None
    if compute_exact:
        exact = solve_exact_truncated(model, buffer_size=exact_buffer)

    return DelayAnalysis(
        model=model,
        threshold=threshold,
        lower_bound=lower_solution,
        upper_bound=upper_solution,
        upper_bound_unstable=upper_unstable,
        asymptotic_delay=asymptotic_delay(utilization, d),
        simulation=simulation,
        exact=exact,
    )
