"""Parameterization of the SQ(d) model analysed in the paper.

The model of Section II: ``N`` parallel FIFO servers with exponential
service at rate ``mu`` (unit mean by the paper's convention), a Poisson
arrival stream of total rate ``lambda * N`` into a central dispatcher, and
the SQ(d) policy that polls ``d`` servers uniformly at random (without
replacement) per arrival and routes the job to the least loaded polled
server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ValidationError, check_integer, check_positive


@dataclass(frozen=True)
class SQDModel:
    """Parameters of an SQ(d) cluster.

    Attributes
    ----------
    num_servers:
        ``N``, the number of parallel servers.
    d:
        Number of servers polled per arrival; ``d = 1`` is uniform random
        dispatching, ``d = N`` is JSQ.
    utilization:
        ``rho = lambda / mu``, the per-server traffic intensity.  The total
        arrival rate is ``rho * mu * N``.
    service_rate:
        ``mu``; the paper fixes ``mu = 1`` (unit-mean service) and we keep
        that default.
    """

    num_servers: int
    d: int
    utilization: float
    service_rate: float = 1.0

    def __post_init__(self) -> None:
        check_integer("num_servers", self.num_servers, minimum=1)
        check_integer("d", self.d, minimum=1, maximum=self.num_servers)
        check_positive("utilization", self.utilization)
        check_positive("service_rate", self.service_rate)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def total_arrival_rate(self) -> float:
        """``lambda * N`` — the rate of the Poisson stream into the dispatcher."""
        return self.utilization * self.service_rate * self.num_servers

    @property
    def per_server_arrival_rate(self) -> float:
        """``lambda`` — the arrival rate a single server would see under random splitting."""
        return self.utilization * self.service_rate

    @property
    def is_stable(self) -> bool:
        """Stability condition ``rho < 1`` of the original SQ(d) system."""
        return self.utilization < 1.0

    @property
    def is_jsq(self) -> bool:
        """True when ``d = N`` (Join-the-Shortest-Queue)."""
        return self.d == self.num_servers

    @property
    def is_random(self) -> bool:
        """True when ``d = 1`` (uniform random dispatching, N independent M/M/1s)."""
        return self.d == 1

    def require_stable(self) -> None:
        """Raise :class:`ValidationError` unless ``rho < 1``."""
        if not self.is_stable:
            raise ValidationError(
                f"model is unstable: utilization {self.utilization} >= 1 (stationary analysis requires rho < 1)"
            )

    def with_utilization(self, utilization: float) -> "SQDModel":
        """Copy of this model at a different traffic intensity (sweep helper)."""
        return SQDModel(
            num_servers=self.num_servers,
            d=self.d,
            utilization=utilization,
            service_rate=self.service_rate,
        )

    def with_choices(self, d: int) -> "SQDModel":
        """Copy of this model with a different number of choices ``d``."""
        return SQDModel(
            num_servers=self.num_servers,
            d=d,
            utilization=self.utilization,
            service_rate=self.service_rate,
        )
