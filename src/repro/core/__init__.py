"""The paper's primary contribution: finite-regime SQ(d) delay bounds.

Sub-modules map one-to-one onto the paper's sections:

* :mod:`repro.core.model`, :mod:`repro.core.state`,
  :mod:`repro.core.transitions` — the SQ(d) Markov process of Section II;
* :mod:`repro.core.state_space`, :mod:`repro.core.bound_models` — the
  threshold-restricted state space and the lower/upper bound models
  (Sections II-III);
* :mod:`repro.core.qbd_solver` — the matrix-geometric solution of Theorem 1;
* :mod:`repro.core.improved_lower` — the scalar-geometric improved lower
  bound of Theorems 2-3;
* :mod:`repro.core.asymptotic` — Mitzenmacher's asymptotic delay (Eq. 16);
* :mod:`repro.core.exact` — a truncated exact oracle for validation;
* :mod:`repro.core.ordering` — the stochastic-ordering machinery of
  Section III, made executable;
* :mod:`repro.core.analysis` — the high-level ``analyze_sqd`` entry point.
"""

from repro.core.model import SQDModel
from repro.core.state import (
    canonical_state,
    imbalance,
    partial_sums,
    precedes,
    tie_groups,
    total_jobs,
    waiting_jobs,
)
from repro.core.transitions import arrival_transitions, departure_transitions, transition_rate_map
from repro.core.state_space import build_partition, boundary_states, first_repeating_block, repeating_block_size
from repro.core.bound_models import (
    BoundKind,
    LowerBoundModel,
    QBDBlocks,
    UpperBoundModel,
    make_bound_model,
)
from repro.core.qbd_solver import (
    BoundModelSolution,
    SolutionMethod,
    UnstableBoundModelError,
    solve_bound_model,
)
from repro.core.improved_lower import (
    general_decay_factor,
    poisson_decay_factor,
    solve_improved_lower_bound,
)
from repro.core.asymptotic import (
    asymptotic_delay,
    asymptotic_mean_queue_length,
    power_of_d_improvement,
    relative_error_percent,
)
from repro.core.delay import DelayMetrics, metrics_from_distribution, mm1_sojourn_time, mmn_sojourn_time
from repro.core.exact import ExactSolution, solve_exact_truncated
from repro.core.analysis import DelayAnalysis, analyze_sqd
from repro.core.solver_cache import (
    CacheStats,
    SolverCache,
    clear_solver_cache,
    solver_cache,
)

__all__ = [
    "SQDModel",
    "canonical_state",
    "imbalance",
    "partial_sums",
    "precedes",
    "tie_groups",
    "total_jobs",
    "waiting_jobs",
    "arrival_transitions",
    "departure_transitions",
    "transition_rate_map",
    "build_partition",
    "boundary_states",
    "first_repeating_block",
    "repeating_block_size",
    "BoundKind",
    "LowerBoundModel",
    "UpperBoundModel",
    "QBDBlocks",
    "make_bound_model",
    "BoundModelSolution",
    "SolutionMethod",
    "UnstableBoundModelError",
    "solve_bound_model",
    "poisson_decay_factor",
    "general_decay_factor",
    "solve_improved_lower_bound",
    "asymptotic_delay",
    "asymptotic_mean_queue_length",
    "power_of_d_improvement",
    "relative_error_percent",
    "DelayMetrics",
    "metrics_from_distribution",
    "mm1_sojourn_time",
    "mmn_sojourn_time",
    "ExactSolution",
    "solve_exact_truncated",
    "DelayAnalysis",
    "analyze_sqd",
    "CacheStats",
    "SolverCache",
    "clear_solver_cache",
    "solver_cache",
]
