"""Asymptotic (N -> infinity) delay of SQ(d) — Eq. (16) of the paper.

Mitzenmacher's mean-field result: in the limit of infinitely many servers the
mean sojourn time ("delay") of a job under SQ(d) with per-server load
``lambda`` and unit-mean exponential service is

.. math:: E[\\text{Delay}] = \\sum_{i \\ge 1} \\lambda^{(d^i - d) / (d - 1)} .

For ``d = 1`` the exponent degenerates to ``i - 1`` and the sum is the M/M/1
sojourn time ``1 / (1 - lambda)``.  The expression is *independent of N*,
which is exactly the inaccuracy in finite regimes that the paper quantifies
(Figure 9) and that its bounds repair (Figure 10).
"""

from __future__ import annotations

import math
from typing import List

from repro.utils.validation import ValidationError, check_in_range, check_integer, check_positive


def asymptotic_delay(utilization: float, d: int, tolerance: float = 1e-14, max_terms: int = 10_000) -> float:
    """Asymptotic mean sojourn time of SQ(d) (Eq. 16).

    Parameters
    ----------
    utilization:
        Per-server traffic intensity ``lambda`` (service rate 1); must be in
        ``[0, 1)``.
    d:
        Number of choices; ``d >= 1``.
    tolerance:
        Terms smaller than this stop the summation.
    """
    check_in_range("utilization", utilization, 0.0, 1.0)
    if utilization >= 1.0:
        raise ValidationError("the asymptotic delay diverges at utilization >= 1")
    check_integer("d", d, minimum=1)
    if utilization == 0.0:
        return 1.0
    if d == 1:
        return 1.0 / (1.0 - utilization)

    total = 0.0
    for i in range(1, max_terms + 1):
        exponent = (d ** i - d) / (d - 1)
        term = utilization ** exponent
        total += term
        if term < tolerance:
            break
    return total


def asymptotic_queue_length_distribution(utilization: float, d: int, max_length: int = 200) -> List[float]:
    """Asymptotic fraction of servers with at least ``k`` jobs, ``k = 0 .. max_length``.

    Mitzenmacher's fixed point: ``s_k = lambda^{(d^k - 1)/(d - 1)}`` (with
    ``s_0 = 1``); the mean number of jobs per server is ``sum_{k>=1} s_k`` and
    the asymptotic delay of Eq. (16) equals that sum divided by ``lambda``.
    """
    check_in_range("utilization", utilization, 0.0, 1.0)
    check_integer("d", d, minimum=1)
    fractions = []
    for k in range(max_length + 1):
        if k == 0:
            fractions.append(1.0)
            continue
        if d == 1:
            exponent = k
        else:
            exponent = (d ** k - 1) / (d - 1)
        fractions.append(utilization ** exponent)
    return fractions


def asymptotic_mean_queue_length(utilization: float, d: int, tolerance: float = 1e-14) -> float:
    """Asymptotic mean number of jobs per server under SQ(d)."""
    if utilization == 0:
        return 0.0
    return asymptotic_delay(utilization, d, tolerance=tolerance) * utilization


def power_of_d_improvement(utilization: float, d: int) -> float:
    """Ratio of asymptotic delays ``E[Delay | SQ(1)] / E[Delay | SQ(d)]``.

    Quantifies the "power of d choices": already ``d = 2`` turns the
    ``1/(1-lambda)`` blow-up into a doubly exponentially decaying sum.
    """
    check_integer("d", d, minimum=1)
    baseline = asymptotic_delay(utilization, 1)
    improved = asymptotic_delay(utilization, d)
    return baseline / improved


def relative_error_percent(approximation: float, reference: float) -> float:
    """Relative error ``|approximation - reference| / reference`` in percent.

    This is the metric plotted in Figure 9 (asymptotic approximation against
    finite-``N`` simulation).
    """
    if reference == 0:
        raise ValidationError("reference value must be non-zero")
    return abs(approximation - reference) / abs(reference) * 100.0
