"""Combinatorial primitives used by the state-space and transition machinery.

The SQ(d) transition rates are ratios of binomial coefficients, and the
threshold-restricted state space of the bound models is enumerated as bounded
non-increasing integer tuples (equivalently, partitions with a bounded number
of parts and bounded part size).  Everything here is exact integer
arithmetic.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Sequence, Tuple


def binomial(n: int, k: int) -> int:
    """Return the binomial coefficient ``C(n, k)``.

    Out-of-range arguments (``k < 0`` or ``k > n`` or ``n < 0``) return 0,
    which matches the convention used in the paper's transition rates, where
    terms such as ``C(i - 1, d)`` vanish when ``i - 1 < d``.
    """
    if n < 0 or k < 0 or k > n:
        return 0
    return math.comb(n, k)


def multiset_permutation_count(counts: Sequence[int]) -> int:
    """Number of distinct permutations of a multiset given element counts.

    Used to map ordered (sorted) states of the SQ(d) Markov process back to
    the number of raw, per-server labelled states they represent.
    """
    total = sum(counts)
    result = math.factorial(total)
    for count in counts:
        if count < 0:
            raise ValueError("counts must be non-negative")
        result //= math.factorial(count)
    return result


def descending_tuples(length: int, max_value: int, min_value: int = 0) -> Iterator[Tuple[int, ...]]:
    """Yield all non-increasing integer tuples of a given length.

    Every component lies in ``[min_value, max_value]`` and the tuple is
    sorted in non-increasing order.  Tuples are produced in lexicographically
    decreasing order of their components.

    >>> list(descending_tuples(2, 1))
    [(1, 1), (1, 0), (0, 0)]
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        yield ()
        return
    for first in range(max_value, min_value - 1, -1):
        for rest in descending_tuples(length - 1, first, min_value):
            yield (first,) + rest


def bounded_partitions(
    num_parts: int,
    max_part: int,
    total: int | None = None,
    max_total: int | None = None,
) -> List[Tuple[int, ...]]:
    """Enumerate non-increasing tuples with bounded parts and optional sums.

    Parameters
    ----------
    num_parts:
        Number of components in each tuple (zero parts are allowed as
        components, i.e. these are partitions of *at most* ``num_parts``
        positive parts padded with zeros).
    max_part:
        Upper bound on each component.
    total:
        If given, only tuples whose components sum exactly to ``total`` are
        returned.
    max_total:
        If given, only tuples whose components sum to at most ``max_total``
        are returned.
    """
    results: List[Tuple[int, ...]] = []
    for candidate in descending_tuples(num_parts, max_part):
        candidate_sum = sum(candidate)
        if total is not None and candidate_sum != total:
            continue
        if max_total is not None and candidate_sum > max_total:
            continue
        results.append(candidate)
    return results


def compositions(total: int, num_parts: int) -> Iterator[Tuple[int, ...]]:
    """Yield all tuples of ``num_parts`` non-negative integers summing to ``total``."""
    if num_parts < 1:
        raise ValueError("num_parts must be at least 1")
    if num_parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in compositions(total - first, num_parts - 1):
            yield (first,) + rest


def num_bounded_descending_tuples(length: int, max_value: int) -> int:
    """Count non-increasing tuples of ``length`` components in ``[0, max_value]``.

    This equals ``C(length + max_value, max_value)`` and is the size of the
    repeating QBD block in the paper (with ``length = N - 1`` free offsets and
    ``max_value = T``): ``C(N + T - 1, T)``.
    """
    return binomial(length + max_value, max_value)
