"""Seeded-jitter exponential backoff for transient I/O failures.

The durable campaign path appends every state transition and every record
to disk before acting on it — which makes it exactly the code that meets
transient I/O errors (NFS hiccups, overloaded disks, the injected faults of
:mod:`repro.faults`) most often.  ``retry_call`` wraps those appends: a
handful of attempts with exponentially growing, *seeded-jitter* delays, so
the backoff schedule is deterministic (reproducible logs, reproducible
chaos tests) while still decorrelating concurrent writers whose seeds
differ.

Only genuinely transient errors are retried: ``retry_on`` defaults to
``OSError`` (which :class:`repro.faults.InjectedIOError` subclasses), and a
:class:`repro.faults.InjectedCrash` — or any non-``OSError`` — passes
straight through, because retrying a *torn* write would glue a fresh line
onto the fragment and turn a recoverable tail tear into mid-file
corruption.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

__all__ = ["RetryExhaustedError", "RetryPolicy", "retry_call"]

T = TypeVar("T")


class RetryExhaustedError(RuntimeError):
    """Every attempt failed; ``__cause__`` carries the final error."""


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``attempts`` tries, exponential delay with jitter.

    Parameters
    ----------
    attempts : int
        Total tries (the first call counts; ``attempts=4`` retries 3 times).
    base_delay : float
        Delay before the first retry, in seconds.
    factor : float
        Multiplier between consecutive delays.
    max_delay : float
        Ceiling on any single delay.
    jitter : float
        Fraction of each delay randomized: the sleep is drawn uniformly
        from ``[delay * (1 - jitter), delay]``.  Drawn from a generator
        seeded with ``seed``, so the whole schedule is deterministic.
    seed : int
        Jitter seed.  Give concurrent writers different seeds to
        decorrelate their backoff; replays with the same seed sleep the
        same amounts.
    """

    attempts: int = 4
    base_delay: float = 0.005
    factor: float = 4.0
    max_delay: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def delays(self) -> Tuple[float, ...]:
        """The seeded sleep schedule (``attempts - 1`` entries)."""
        rng = random.Random(self.seed)
        schedule = []
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            capped = min(delay, self.max_delay)
            schedule.append(capped * (1.0 - self.jitter * rng.random()))
            delay *= self.factor
        return tuple(schedule)


def retry_call(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    describe: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``; raise :class:`RetryExhaustedError` if
    every attempt fails with a retryable error.

    Parameters
    ----------
    fn : callable
        Zero-argument operation.  It must be safe to re-invoke after a
        failure (append-one-whole-line writes are; partially applied
        multi-step operations are not).
    policy : RetryPolicy, optional
        Defaults to :class:`RetryPolicy()` — 4 attempts, 5 ms growing to a
        capped 0.5 s.
    retry_on : tuple of exception types
        Errors worth retrying; anything else propagates immediately.
    describe : str
        Human label for the exhaustion message (e.g. ``"journal append"``).
    sleep : callable
        Injectable for tests; receives each backoff delay in seconds.
    """
    policy = policy or RetryPolicy()
    delays = policy.delays()
    last: Optional[BaseException] = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as error:  # noqa: PERF203 - retry loop by design
            last = error
            if attempt < len(delays):
                sleep(delays[attempt])
    raise RetryExhaustedError(
        f"{describe or 'operation'} failed after {policy.attempts} attempts: {last}"
    ) from last
