"""Lightweight argument-validation helpers.

All public constructors in :mod:`repro` validate their inputs eagerly and
raise :class:`ValidationError` with a message naming the offending argument,
so configuration errors surface at model-construction time rather than deep
inside a numerical routine.
"""

from __future__ import annotations

from numbers import Integral, Real


class ValidationError(ValueError):
    """Raised when a model or solver parameter is outside its legal range."""


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if ``strict`` is False)."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(name: str, value: float, allow_zero: bool = True, allow_one: bool = True) -> float:
    """Validate that ``value`` lies in the closed (or half-open) unit interval."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    low_ok = value > 0 or (allow_zero and value == 0)
    high_ok = value < 1 or (allow_one and value == 1)
    if not (low_ok and high_ok):
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval ``[low, high]``."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def check_integer(name: str, value: int, minimum: int | None = None, maximum: int | None = None) -> int:
    """Validate that ``value`` is an integer within optional bounds."""
    if not isinstance(value, Integral) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ValidationError(f"{name} must be <= {maximum}, got {value}")
    return value
