"""Plain-text tabular output for experiment harnesses.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; these helpers render them as aligned monospace tables so the
output of ``pytest benchmarks/ --benchmark-only`` is directly readable.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x_label: str, x_values: Sequence[float], title: str | None = None) -> str:
    """Render several named series sharing the same x axis as one table.

    This mirrors how the paper's figures are read: one row per x value, one
    column per plotted curve.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)
