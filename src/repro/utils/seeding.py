"""Deterministic random-number-stream management.

Simulations in :mod:`repro.simulation` take a single integer seed and derive
independent streams for arrivals, services and the dispatcher's polling
choices, so experiments are reproducible and the streams stay decoupled when
one component draws a different number of variates.
"""

from __future__ import annotations

from typing import List

import numpy as np


def spawn_rngs(seed: int | None, count: int) -> List[np.random.Generator]:
    """Return ``count`` independent NumPy generators derived from ``seed``.

    ``seed=None`` produces non-deterministic streams (seeded from OS entropy),
    which is convenient for exploratory runs but should be avoided in tests.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    seed_seq = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seed_seq.spawn(count)]


def spawn_seeds(seed: int | None, count: int, start: int = 0) -> List[int]:
    """Return ``count`` independent *integer* seeds derived from ``seed``.

    Parameters
    ----------
    seed : int or None
        Root seed.  ``None`` derives the children from OS entropy
        (non-reproducible); any integer gives a deterministic sequence.
    count : int
        Number of child seeds to return.
    start : int, optional
        Index of the first child.  ``spawn_seeds(s, k, start=j)`` returns
        exactly the slice ``[j : j + k]`` of the infinite child sequence of
        ``s``, so callers can extend an ensemble adaptively (more
        replications later) without re-running or re-seeding the earlier
        ones.

    Returns
    -------
    list of int
        Plain integers (picklable, printable, storable in JSON) suitable as
        the ``seed`` argument of any simulator in this package.  Child
        ``i`` is derived from ``SeedSequence(seed).spawn(...)[i]``, so the
        streams are statistically independent of each other and of the
        parent — unlike ``seed + i`` arithmetic, which correlates PCG64
        streams in the low bits.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if start < 0:
        raise ValueError("start must be >= 0")
    children = np.random.SeedSequence(seed).spawn(start + count)[start:]
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]
