"""Deterministic random-number-stream management.

Simulations in :mod:`repro.simulation` take a single integer seed and derive
independent streams for arrivals, services and the dispatcher's polling
choices, so experiments are reproducible and the streams stay decoupled when
one component draws a different number of variates.
"""

from __future__ import annotations

from typing import List

import numpy as np


def spawn_rngs(seed: int | None, count: int) -> List[np.random.Generator]:
    """Return ``count`` independent NumPy generators derived from ``seed``.

    ``seed=None`` produces non-deterministic streams (seeded from OS entropy),
    which is convenient for exploratory runs but should be avoided in tests.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    seed_seq = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seed_seq.spawn(count)]
