"""Small shared utilities: combinatorics, validation, formatting and seeding.

These helpers are substrate code used throughout :mod:`repro`; nothing in
here is specific to the SQ(d) model.
"""

from repro.utils.combinatorics import (
    binomial,
    bounded_partitions,
    compositions,
    descending_tuples,
    multiset_permutation_count,
)
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_integer,
    ValidationError,
)
from repro.utils.tables import format_table, format_series
from repro.utils.seeding import spawn_rngs
from repro.utils.retry import RetryExhaustedError, RetryPolicy, retry_call

__all__ = [
    "binomial",
    "bounded_partitions",
    "compositions",
    "descending_tuples",
    "multiset_permutation_count",
    "check_positive",
    "check_probability",
    "check_in_range",
    "check_integer",
    "ValidationError",
    "format_table",
    "format_series",
    "spawn_rngs",
    "RetryExhaustedError",
    "RetryPolicy",
    "retry_call",
]
