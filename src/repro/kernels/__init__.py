"""repro.kernels — pluggable event kernels for the fleet hot loop.

The innermost loop of :class:`repro.fleet.engine.FleetSimulation` is a
registered, swappable *kernel* (:class:`~repro.kernels.base.FleetKernel`):

* ``python`` — the scalar reference loop (every policy, any ``d``);
* ``uniformized`` — numpy chunk kernel via uniformization at
  ``Lambda = (lambda + mu) * N`` (~3x events/s; SQ(d) distinct polling
  limited to ``d <= 2``);
* ``auto`` — resolves to the fastest capable kernel per configuration.

Select with ``FleetSimulation(..., kernel=...)``, ``simulate_fleet(...,
kernel=...)``, the spec option ``{"kernel": ...}`` on the ``fleet``
backend, or ``repro-lb fleet/run --kernel ...``.  Incapable combinations
raise :class:`~repro.api.spec.SpecError`.  See ``docs/performance.md`` for
the uniformization argument and benchmark methodology.
"""

from repro.kernels.base import (
    FleetKernel,
    available_kernels,
    get_kernel_class,
    kernel_why_unsupported,
    register_kernel,
    resolve_kernel,
    select_kernel,
)

__all__ = [
    "FleetKernel",
    "available_kernels",
    "get_kernel_class",
    "kernel_why_unsupported",
    "register_kernel",
    "resolve_kernel",
    "select_kernel",
]
