"""Uniformized numpy chunk kernel: vectorized clocks, scalar level scans.

The occupancy CTMC jumps at the state-dependent rate ``lambda*N + mu*F[1]``
(arrivals plus one departure stream per busy server).  *Uniformization*
replaces it by a chain jumping at the constant dominating rate

    ``Lambda = (lambda + mu) * N  >=  lambda*N + mu*F[1]``

whose jumps are, independently of the state,

* an **arrival** with probability ``lambda / (lambda + mu)``,
* a **departure attempt** at a uniformly random server otherwise — a real
  departure when the polled server is busy (probability ``F[1]/N``), a
  **phantom** self-loop when it is idle.

The embedded chain with phantom self-loops and iid ``Exp(Lambda)`` holding
times has exactly the law of the original CTMC (see
``docs/performance.md``), and because the rates no longer depend on the
state, whole blocks of events can be prepared vectorized:

* holding times: one ``log`` + prefix sum over the block,
* arrival/departure classification: one comparison per event,
* the arrival's join threshold and the departure's server rank: closed
  forms in the residual uniform, computed for the whole block at once.

Only the O(queue depth) level scan — which needs the live occupancy vector
— stays scalar, and the scalar loop is stripped to its bones: the padded
``levels`` list needs no ``len()``/``append``/``pop`` (trailing zeros are
natural scan sentinels), and per-level time-averages are reconstructed at
block boundaries from start/end snapshots plus signed event-time sums
(``integral = F_j(t0)*(t1-t0) + (F_j(t1)-F_j(t0))*t1 - sum_e delta_e t_e``,
one float accumulate per event instead of four).

The price: distinct-server SQ(d) polling needs the join threshold inverted
in closed form, which this kernel implements for ``d <= 2`` only (``d = 2``
by the quadratic formula); SQ(d >= 3) without replacement stays on the
``python`` kernel.  Throughput is roughly 3x the scalar reference at any
``N`` (see ``benchmarks/results/BENCH_fleet.json``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.base import FleetKernel, register_kernel

__all__ = ["UniformizedKernel"]

#: Events drawn per chunk.  Large enough to amortize the numpy pipeline,
#: small enough to keep the per-chunk lists cache-resident.
CHUNK_SIZE = 1 << 14

#: Minimum padded depth of the in-loop occupancy list.
_MIN_PAD = 96


@register_kernel
class UniformizedKernel(FleetKernel):
    """Vectorized uniformized kernel (numpy chunks, scalar residual loop)."""

    name = "uniformized"

    def __init__(self) -> None:
        # Raw uniform buffers; the unconsumed tail carries across advance()
        # calls so seeded runs stay bitwise deterministic even when phases
        # change the rates mid-stream (the tail is re-derived under the new
        # rates — raw uniforms are rate-agnostic).
        self._u1: Optional[np.ndarray] = None
        self._u2: Optional[np.ndarray] = None
        self._offset = 0

    @classmethod
    def why_unsupported(cls, policy: str, d: int, with_replacement: bool) -> Optional[str]:
        if policy == "sqd" and d > 2 and not with_replacement:
            return (
                "distinct-server SQ(d) polling is only invertible in closed "
                "form for d <= 2; use with_replacement=True or the 'python' "
                "kernel for larger d"
            )
        return None

    # ------------------------------------------------------------------ #
    def advance(self, simulation, max_events: Optional[int], until_time: Optional[float]) -> int:
        sim = simulation
        state = sim._state
        levels = state.levels
        rng = sim._rng
        now = sim._now

        n = levels[0]
        d = sim._d
        policy = sim._policy
        with_replacement = sim._with_replacement
        mu = sim._service_rate
        lam = sim._arrival_rate_per_server  # per-server arrival rate
        p_arr = lam / (lam + mu)
        inv_rate = 1.0 / ((lam + mu) * n)  # 1 / Lambda
        dep_scale = n / (1.0 - p_arr)

        # Pad the live occupancy list with trailing zeros: scans stop at the
        # first zero level (every threshold/rank is >= 0), so the hot loop
        # needs no bounds checks; trimmed again before returning.
        lv = levels
        pad = max(_MIN_PAD, 2 * len(lv) + 16)
        lv.extend([0] * (pad - len(lv)))
        guard = len(lv) - 2

        #: Per-level time integrals of this advance (index 0 = pool size).
        weight_add = [0.0] * len(lv)

        events = 0
        arrivals = 0
        departures = 0

        while True:
            if max_events is not None and events >= max_events:
                break
            if lam == 0.0 and lv[1] == 0:
                # Dead state: no arrivals and nothing in service.  Jump the
                # clock like the reference kernel instead of burning chunks
                # of phantom events.
                if until_time is not None and now < until_time:
                    weight_add[0] += n * (until_time - now)
                    now = until_time
                break
            if self._u1 is None or self._offset >= self._u1.shape[0]:
                self._u1 = rng.random(CHUNK_SIZE)
                self._u2 = rng.random(CHUNK_SIZE)
                self._offset = 0
            offset = self._offset
            u1 = self._u1[offset:]
            u2 = self._u2[offset:]

            # ---------------- vectorized chunk preparation ---------------- #
            holding = np.log1p(-u1)
            holding *= -inv_rate
            np.cumsum(holding, out=holding)
            times = holding
            times += now

            is_arrival = u2 < p_arr
            if p_arr > 0.0:
                v = u2 * (1.0 / p_arr)  # conditional U(0,1) on the arrival branch
                if policy == "jsq":
                    threshold = np.full_like(v, n - 0.5)
                elif d == 1:
                    threshold = v * n
                elif with_replacement:
                    threshold = (v ** (1.0 / d)) * n
                else:  # d == 2, distinct servers: invert m(m-1) <= v n(n-1)
                    threshold = np.sqrt(1.0 + (4.0 * n * (n - 1.0)) * v)
                    threshold += 1.0
                    threshold *= 0.5
                # Arrivals ride as -(threshold + 1) <= -1, departure attempts
                # as the raw server rank r in [0, N) — one payload lane, and
                # the sign is the event type.
                payload = np.where(is_arrival, -1.0 - threshold, (u2 - p_arr) * dep_scale)
            else:
                payload = (u2 - p_arr) * dep_scale

            limit = times.shape[0]
            time_capped = False
            if until_time is not None and limit and times[limit - 1] > until_time:
                limit = int(np.searchsorted(times, until_time, side="right"))
                time_capped = True

            times_l = times.tolist()
            pay_l = payload.tolist()

            # ------------------- scalar residual loop -------------------- #
            position = 0
            while position < limit:
                if max_events is None:
                    hi = limit
                else:
                    budget = max_events - events
                    if budget <= 0:
                        break
                    # Every raw event yields at most one real event, so a
                    # budget-sized slice can never overshoot max_events.
                    hi = min(limit, position + budget)
                start_levels = list(lv)
                jobs_before = sum(lv[1:])
                co = [0.0] * len(lv)
                t0 = now
                if position == 0 and hi == len(times_l):
                    pairs = zip(times_l, pay_l)
                else:
                    pairs = zip(times_l[position:hi], pay_l[position:hi])
                for t, p in pairs:
                    if p >= 0.0:
                        # Departure attempt at server rank p; real only if
                        # the rank lands on one of the F[1] busy servers.
                        if p < lv[1]:
                            k = 1
                            while lv[k + 1] > p:
                                k += 1
                            lv[k] -= 1
                            co[k] += t
                    else:
                        thr = -1.0 - p
                        k1 = 1
                        while lv[k1] > thr:
                            k1 += 1
                        lv[k1] += 1
                        co[k1] -= t
                        if k1 >= guard:  # pragma: no cover - needs depth ~90
                            grow = 64
                            lv.extend([0] * grow)
                            co.extend([0.0] * grow)
                            start_levels.extend([0] * grow)
                            weight_add.extend([0.0] * grow)
                            guard = len(lv) - 2
                t1 = times_l[hi - 1]
                now = t1
                span = t1 - t0
                for j in range(len(lv)):
                    s = start_levels[j]
                    e = lv[j]
                    c = co[j]
                    if s or e or c:
                        weight_add[j] += s * span + (e - s) * t1 + c
                jobs_after = sum(lv[1:])
                arrival_count = int(np.count_nonzero(is_arrival[position:hi]))
                departure_count = arrival_count - (jobs_after - jobs_before)
                arrivals += arrival_count
                departures += departure_count
                events += arrival_count + departure_count
                position = hi

            self._offset = offset + position
            if time_capped and position == limit:
                # Every event at or before until_time is in; the occupancy
                # is constant on (now, until_time], so close the integrals
                # with a rectangle and stop.
                if now < until_time:
                    span = until_time - now
                    for j in range(len(lv)):
                        if lv[j]:
                            weight_add[j] += lv[j] * span
                    now = until_time
                break
            if position < limit:
                break  # max_events reached mid-chunk; tail stays pending

        # Trim the padding, restore the occupancy invariants.
        while len(levels) > 1 and levels[-1] == 0:
            levels.pop()
        state.total_jobs = sum(levels[1:])

        # Fold the per-level integrals into the simulation's lazy window
        # accumulators, fully flushed up to `now` (so a later flush adds 0).
        level_weight = sim._level_weight
        level_last = sim._level_last
        depth = len(weight_add)
        while len(level_weight) < depth and any(weight_add[len(level_weight):]):
            level_weight.append(0.0)
            level_last.append(now)
        for j in range(len(level_weight)):
            if j < depth:
                level_weight[j] += weight_add[j]
            level_last[j] = now

        sim._now = now
        sim._weighted_jobs += sum(weight_add[1:])
        sim._arrivals += arrivals
        sim._departures += departures
        sim._window_events += events
        sim._events_total += events
        return events
