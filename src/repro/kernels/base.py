"""Kernel protocol and registry: pluggable event engines for the fleet loop.

A *kernel* is the innermost event engine of
:class:`repro.fleet.engine.FleetSimulation` — the code that actually jumps
the occupancy CTMC from event to event and accumulates the statistics
window.  Kernels are interchangeable implementations of one contract
(:class:`FleetKernel`): same law, same statistics, different machinery.
Two ship with the package —

* ``python`` — the scalar reference loop (one event at a time, pre-drawn
  uniform blocks, plain-list state); supports every policy the fleet
  engine knows;
* ``uniformized`` — a numpy chunk kernel that uniformizes the occupancy
  CTMC at the dominating rate ``Lambda = (lambda + mu) * N`` and classifies
  whole blocks of events vectorized (see
  :mod:`repro.kernels.uniformized`); roughly 3x the events/s of the
  reference loop, at the price of not supporting distinct-server SQ(d)
  polling for ``d >= 3``.

``kernel="auto"`` resolves per configuration: the fastest kernel that
supports the ``(policy, d, with_replacement)`` combination.  Requesting an
incapable kernel by name raises :class:`~repro.api.spec.SpecError` — the
same exception type the backend capability checks use — so one error
surface covers both "backend cannot run spec" and "kernel cannot run
policy".

Registration mirrors the backend registry::

    @register_kernel
    class MyKernel(FleetKernel):
        name = "mine"
        ...

Kernel instances are created per simulation (they may carry buffered
random variates between :meth:`FleetKernel.advance` calls), and mutate the
simulation's window accumulators directly — they are friend classes of
``FleetSimulation``, not a public surface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fleet.engine import FleetSimulation

__all__ = [
    "FleetKernel",
    "register_kernel",
    "get_kernel_class",
    "available_kernels",
    "select_kernel",
    "resolve_kernel",
    "kernel_why_unsupported",
]


def _spec_error(message: str) -> Exception:
    # Imported lazily: repro.api.spec must stay importable without pulling
    # the kernel layer in and vice versa.
    from repro.api.spec import SpecError

    return SpecError(message)


class FleetKernel:
    """Contract every fleet event kernel satisfies.

    Subclasses declare a unique :attr:`name`, answer capability queries via
    :meth:`why_unsupported`, and implement :meth:`advance`.  One instance
    serves one :class:`~repro.fleet.engine.FleetSimulation` for its whole
    lifetime, so kernels may keep per-simulation buffers (pre-drawn
    variates carry across ``advance`` calls to keep seeded runs bitwise
    deterministic).
    """

    #: Unique registry name.
    name: str = ""

    @classmethod
    def why_unsupported(
        cls, policy: str, d: int, with_replacement: bool
    ) -> Optional[str]:
        """Reason this kernel cannot run the configuration, or ``None``."""
        return None

    def advance(
        self,
        simulation: "FleetSimulation",
        max_events: Optional[int],
        until_time: Optional[float],
    ) -> int:
        """Jump the simulation until a stop condition; return events executed.

        The kernel owns the hot loop: it advances ``simulation``'s clock and
        occupancy state, accumulates the per-level time-averages and event
        counters of the current statistics window, and returns the number of
        *real* events (arrivals + departures) executed.  Argument validation
        is the caller's job (:meth:`FleetSimulation.advance`).
        """
        raise NotImplementedError


_REGISTRY: Dict[str, Type[FleetKernel]] = {}


def register_kernel(cls: Type[FleetKernel]) -> Type[FleetKernel]:
    """Class decorator: register a :class:`FleetKernel` under ``cls.name``."""
    if not cls.name:
        raise _spec_error(f"kernel class {cls.__name__} must declare a name")
    if cls.name == "auto":
        raise _spec_error("'auto' is reserved for kernel auto-selection")
    if cls.name in _REGISTRY:
        raise _spec_error(f"kernel {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_registered() -> None:
    # The built-in kernels live in their own modules so importing the
    # registry stays cheap; any lookup pulls them in (idempotent).
    import repro.kernels.python_kernel  # noqa: F401  (registers on import)
    import repro.kernels.uniformized  # noqa: F401  (registers on import)


def available_kernels() -> List[str]:
    """Registered kernel names, sorted."""
    _ensure_registered()
    return sorted(_REGISTRY)


def get_kernel_class(name: str) -> Type[FleetKernel]:
    """Look up a kernel class by name (``SpecError`` for unknown names)."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise _spec_error(
            f"unknown kernel {name!r}; available: "
            f"{', '.join(['auto'] + sorted(_REGISTRY))}"
        ) from None


def kernel_why_unsupported(
    name: str, policy: str, d: int, with_replacement: bool
) -> Optional[str]:
    """Reason the named kernel cannot run the configuration, or ``None``."""
    if name == "auto":
        return None  # auto always resolves to some capable kernel
    return get_kernel_class(name).why_unsupported(policy, d, with_replacement)


#: Auto-selection preference: first capable name wins.  The uniformized
#: chunk kernel leads because it is strictly faster wherever it applies.
_AUTO_ORDER = ("uniformized", "python")


def select_kernel(policy: str, d: int, with_replacement: bool) -> str:
    """The kernel name ``"auto"`` resolves to for this configuration."""
    _ensure_registered()
    for name in _AUTO_ORDER:
        cls = _REGISTRY.get(name)
        if cls is not None and cls.why_unsupported(policy, d, with_replacement) is None:
            return name
    return "python"


def resolve_kernel(
    name: str, policy: str, d: int, with_replacement: bool
) -> FleetKernel:
    """Instantiate the kernel for a simulation; ``SpecError`` if incapable.

    ``name="auto"`` picks the fastest capable kernel; an explicit name is
    honored or rejected with the reason it cannot run the configuration.
    """
    if name == "auto":
        name = select_kernel(policy, d, with_replacement)
    cls = get_kernel_class(name)
    reason = cls.why_unsupported(policy, d, with_replacement)
    if reason is not None:
        raise _spec_error(
            f"kernel {name!r} cannot run policy {policy!r} with d={d}"
            f"{' (with replacement)' if with_replacement else ''}: {reason}"
        )
    return cls()
