"""The scalar reference kernel: one event at a time, plain-Python state.

This is the original hot loop of :class:`repro.fleet.engine.FleetSimulation`
(PR 1), extracted unchanged: exponential clocks from pre-drawn uniform
blocks converted to plain lists, an O(queue depth) join/departure level scan
per event, and lazy per-level statistics flushing.  It supports every
policy the fleet engine knows — including distinct-server SQ(d) polling for
arbitrary ``d`` — and is the semantic reference the vectorized kernels are
tested against.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.kernels.base import FleetKernel, register_kernel

__all__ = ["PythonKernel"]

_BLOCK_SIZE = 1 << 16


@register_kernel
class PythonKernel(FleetKernel):
    """Scalar event loop over buffered uniforms (the PR-1 reference)."""

    name = "python"

    def __init__(self) -> None:
        self._block: List[float] = []
        self._index = 0

    def advance(self, simulation, max_events: Optional[int], until_time: Optional[float]) -> int:
        sim = simulation
        state = sim._state
        levels = state.levels
        rng = sim._rng
        block = self._block
        block_limit = len(block) - 1
        idx = self._index
        now = sim._now
        total_jobs = state.total_jobs
        weighted_jobs = 0.0
        events = 0
        arrivals = 0
        departures = 0
        level_weight = sim._level_weight
        level_last = sim._level_last

        n = levels[0]
        d = sim._d
        jsq = sim._policy == "jsq"
        with_replacement = sim._with_replacement
        inv_d = 1.0 / d
        pair_inv = 1.0 / (n * (n - 1)) if n > 1 else 0.0
        mu = sim._service_rate
        arrival_rate = sim._arrival_rate_per_server * n
        log = math.log

        while True:
            if max_events is not None and events >= max_events:
                break
            busy = levels[1] if len(levels) > 1 else 0
            total_rate = arrival_rate + mu * busy
            if total_rate <= 0.0:
                if until_time is not None and now < until_time:
                    weighted_jobs += total_jobs * (until_time - now)
                    now = until_time
                break
            if idx >= block_limit:
                block = rng.random(_BLOCK_SIZE).tolist()
                block_limit = len(block) - 1
                idx = 0
            u1 = block[idx]
            u2 = block[idx + 1]
            idx += 2
            holding = -log(1.0 - u1) / total_rate
            if until_time is not None and now + holding > until_time:
                weighted_jobs += total_jobs * (until_time - now)
                now = until_time
                break
            weighted_jobs += total_jobs * holding
            now += holding
            x = u2 * total_rate
            if x < arrival_rate:
                # Arrival.  Conditioned on the branch, x / arrival_rate is
                # again U(0,1) and drives the join-level scan.
                v = x / arrival_rate
                k = 0
                if jsq:
                    while k + 1 < len(levels) and levels[k + 1] == n:
                        k += 1
                elif d == 1:
                    threshold = v * n
                    while k + 1 < len(levels) and levels[k + 1] > threshold:
                        k += 1
                elif with_replacement:
                    threshold = (v**inv_d) * n
                    while k + 1 < len(levels) and levels[k + 1] > threshold:
                        k += 1
                elif d == 2:
                    while k + 1 < len(levels):
                        m = levels[k + 1]
                        if m < 2 or m * (m - 1) * pair_inv <= v:
                            break
                        k += 1
                else:
                    while k + 1 < len(levels):
                        m = levels[k + 1]
                        if m < d:
                            break
                        p = 1.0
                        for j in range(d):
                            p *= (m - j) / (n - j)
                        if p <= v:
                            break
                        k += 1
                target = k + 1
                if target == len(levels):
                    levels.append(1)
                    if target == len(level_weight):
                        level_weight.append(0.0)
                        level_last.append(now)
                    else:
                        level_last[target] = now
                else:
                    level_weight[target] += levels[target] * (now - level_last[target])
                    level_last[target] = now
                    levels[target] += 1
                total_jobs += 1
                arrivals += 1
            else:
                # Departure from a uniformly random busy server; the residual
                # uniform (x - arrival_rate) / (mu * busy) picks its level.
                r = (x - arrival_rate) / mu
                k = 1
                while k + 1 < len(levels) and levels[k + 1] > r:
                    k += 1
                level_weight[k] += levels[k] * (now - level_last[k])
                level_last[k] = now
                levels[k] -= 1
                if levels[k] == 0 and k == len(levels) - 1:
                    levels.pop()
                total_jobs -= 1
                departures += 1
            events += 1

        sim._now = now
        self._index = idx
        self._block = block
        state.total_jobs = total_jobs
        sim._weighted_jobs += weighted_jobs
        sim._arrivals += arrivals
        sim._departures += departures
        sim._window_events += events
        sim._events_total += events
        return events
