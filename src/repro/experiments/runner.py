"""Generic parameter-sweep runner with CSV/JSON export.

The figure harnesses cover the paper's exact plots; this module is the
general-purpose counterpart for users who want to sweep their own grids of
``(N, d, rho, T)`` and post-process the results elsewhere (spreadsheets,
notebooks, plotting scripts).  Results are plain dictionaries, so export is a
one-liner and nothing here depends on the plotting stack we do not ship.
"""

from __future__ import annotations

import csv
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.analysis import DelayAnalysis, analyze_sqd
from repro.utils.tables import format_table


@dataclass(frozen=True)
class SweepConfig:
    """Cartesian parameter grid for :func:`run_sweep`."""

    server_counts: Sequence[int] = (3,)
    choices: Sequence[int] = (2,)
    utilizations: Sequence[float] = (0.5, 0.7, 0.9)
    thresholds: Sequence[int] = (2,)
    run_simulation: bool = False
    simulation_events: int = 100_000
    seed: int = 20160627

    def configurations(self) -> List[Dict[str, float]]:
        """Expand the grid, skipping combinations with ``d > N``."""
        grid = []
        for n, d, rho, t in itertools.product(self.server_counts, self.choices, self.utilizations, self.thresholds):
            if d > n:
                continue
            grid.append({"num_servers": n, "d": d, "utilization": rho, "threshold": t})
        return grid


@dataclass
class SweepResult:
    """Flat records (one per configuration) plus helpers for export."""

    config: SweepConfig
    records: List[Dict[str, object]] = field(default_factory=list)

    def append(self, analysis: DelayAnalysis) -> None:
        self.records.append(analysis.summary_row())

    def as_table(self, title: str | None = None) -> str:
        if not self.records:
            return "(empty sweep)"
        headers = list(self.records[0].keys())
        rows = [[record[h] for h in headers] for record in self.records]
        return format_table(headers, rows, title=title)

    def to_csv(self, path: str | Path) -> Path:
        """Write the records as CSV and return the path."""
        path = Path(path)
        if not self.records:
            raise ValueError("cannot export an empty sweep")
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(self.records[0].keys()))
            writer.writeheader()
            writer.writerows(self.records)
        return path

    def to_json(self, path: str | Path) -> Path:
        """Write the records as JSON and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.records, indent=2, default=_json_default))
        return path

    def column(self, name: str) -> List[object]:
        """Extract one column across all records."""
        return [record.get(name) for record in self.records]


def _json_default(value):
    if value is None:
        return None
    return float(value)


def run_sweep(config: SweepConfig, progress: Optional[callable] = None) -> SweepResult:
    """Run ``analyze_sqd`` over the whole parameter grid.

    ``progress`` (if given) is called with ``(index, total, configuration)``
    before each configuration — handy for long sweeps driven from scripts.
    """
    result = SweepResult(config=config)
    configurations = config.configurations()
    for index, parameters in enumerate(configurations):
        if progress is not None:
            progress(index, len(configurations), parameters)
        analysis = analyze_sqd(
            num_servers=int(parameters["num_servers"]),
            d=int(parameters["d"]),
            utilization=float(parameters["utilization"]),
            threshold=int(parameters["threshold"]),
            run_simulation=config.run_simulation,
            simulation_events=config.simulation_events,
            simulation_seed=config.seed + index,
        )
        result.append(analysis)
    return result
