"""Scale study: bounds vs asymptotics vs fleet simulation as N sweeps decades.

The paper's message is that the asymptotic delay (Eq. 16) misleads at finite
``N`` and its bounds repair that — but the repo could never *show* the
crossover, because neither simulator reached beyond a few hundred servers.
The occupancy engine (:mod:`repro.fleet.engine`) makes the sweep over
``N = 10^2 .. 10^5+`` cheap, so this harness lines up three estimates per
pool size:

* the fleet simulation (exact finite-``N`` law of SQ(d)),
* the asymptotic / mean-field prediction (``N``-independent),
* the paper's QBD lower/upper bounds, for the small ``N`` where their
  ``C(N+T-1, T)``-sized blocks stay tractable.

The relative error column reproduces Figure 9's decay towards zero, now
extended three decades further than the paper's own simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import analyze_sqd
from repro.core.asymptotic import asymptotic_delay, relative_error_percent
from repro.fleet.engine import FleetResult, simulate_fleet
from repro.utils.tables import format_table
from repro.utils.validation import check_in_range, check_integer

__all__ = ["ScaleStudyConfig", "ScaleStudyResult", "run_scale_study"]

DEFAULT_SERVER_COUNTS: Tuple[int, ...] = (100, 1_000, 10_000, 100_000)


@dataclass(frozen=True)
class ScaleStudyConfig:
    """Parameters of one scale sweep."""

    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS
    d: int = 2
    utilization: float = 0.9
    threshold: int = 3
    num_events: int = 500_000
    seed: int = 20160627
    bounds_max_servers: int = 12
    policy: str = "sqd"

    def __post_init__(self) -> None:
        check_in_range("utilization", self.utilization, 0.0, 0.999)
        check_integer("d", self.d, minimum=1)
        check_integer("num_events", self.num_events, minimum=1000)
        check_integer("threshold", self.threshold, minimum=1)
        check_integer("bounds_max_servers", self.bounds_max_servers, minimum=0)
        for n in self.server_counts:
            check_integer("N", n, minimum=self.d)


@dataclass(frozen=True)
class ScaleStudyResult:
    """One record per pool size, plus the shared asymptote."""

    config: ScaleStudyConfig
    records: List[Dict[str, object]] = field(default_factory=list)
    fleet_results: Tuple[FleetResult, ...] = ()

    @property
    def asymptotic(self) -> float:
        return asymptotic_delay(self.config.utilization, self.config.d)

    def column(self, name: str) -> List[object]:
        return [record.get(name) for record in self.records]

    def as_table(self) -> str:
        headers = ["N", "fleet delay", "asymptotic", "err%", "lower bound", "upper bound", "events/s"]
        rows = []
        for record in self.records:
            rows.append(
                [
                    record["N"],
                    record["fleet_delay"],
                    record["asymptotic"],
                    record["relative_error_percent"],
                    record["lower_bound"] if record["lower_bound"] is not None else "-",
                    record["upper_bound"] if record["upper_bound"] is not None else "-",
                    f"{record['events_per_second']:,.0f}",
                ]
            )
        config = self.config
        title = (
            f"scale study: SQ({config.d}) at rho={config.utilization}, "
            f"{config.num_events} events/point (bounds for N <= {config.bounds_max_servers})"
        )
        return format_table(headers, rows, title=title)


def run_scale_study(config: ScaleStudyConfig, progress: Optional[callable] = None) -> ScaleStudyResult:
    """Sweep the fleet simulator over ``config.server_counts``.

    ``progress`` (if given) is called with ``(index, total, num_servers)``
    before each pool size.  The QBD bounds are solved only up to
    ``bounds_max_servers`` — their block size grows combinatorially in ``N``,
    which is the very limitation the occupancy engine routes around.
    """
    records: List[Dict[str, object]] = []
    fleet_results: List[FleetResult] = []
    asymptote = asymptotic_delay(config.utilization, config.d)
    counts = list(config.server_counts)
    for index, num_servers in enumerate(counts):
        if progress is not None:
            progress(index, len(counts), num_servers)
        fleet = simulate_fleet(
            num_servers=num_servers,
            d=config.d,
            utilization=config.utilization,
            num_events=config.num_events,
            seed=config.seed + index,
            policy=config.policy,
        )
        lower = upper = None
        if num_servers <= config.bounds_max_servers and config.policy == "sqd":
            analysis = analyze_sqd(
                num_servers=num_servers,
                d=config.d,
                utilization=config.utilization,
                threshold=config.threshold,
            )
            lower = analysis.lower_delay
            upper = analysis.upper_delay
        records.append(
            {
                "N": num_servers,
                "d": config.d,
                "utilization": config.utilization,
                "fleet_delay": fleet.mean_delay,
                "asymptotic": asymptote,
                "relative_error_percent": relative_error_percent(asymptote, fleet.mean_delay),
                "lower_bound": lower,
                "upper_bound": upper,
                "events_per_second": fleet.events_per_second,
                "mean_queue_length": fleet.mean_queue_length,
            }
        )
        fleet_results.append(fleet)
    return ScaleStudyResult(config=config, records=records, fleet_results=tuple(fleet_results))
