"""Scale study: bounds vs asymptotics vs fleet simulation as N sweeps decades.

The paper's message is that the asymptotic delay (Eq. 16) misleads at finite
``N`` and its bounds repair that — but the repo could never *show* the
crossover, because neither simulator reached beyond a few hundred servers.
The occupancy engine (:mod:`repro.fleet.engine`) makes the sweep over
``N = 10^2 .. 10^5+`` cheap, so this harness lines up three estimates per
pool size:

* the fleet simulation (exact finite-``N`` law of SQ(d)), replicated into an
  ensemble so the estimate carries a confidence interval,
* the asymptotic / mean-field prediction (``N``-independent),
* the paper's QBD lower/upper bounds, for the small ``N`` where their
  ``C(N+T-1, T)``-sized blocks stay tractable.

The relative error column reproduces Figure 9's decay towards zero, now
extended three decades further than the paper's own simulations — and with
``replications >= 2`` the decay is distinguishable from simulation noise,
because each point reports a Student-t half-width next to its mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ExperimentSpec
from repro.core.analysis import analyze_sqd
from repro.core.asymptotic import asymptotic_delay, relative_error_percent
from repro.ensemble.runner import EnsembleConfig, EnsembleResult, run_ensemble, worker_pool
from repro.utils.tables import format_table
from repro.utils.validation import check_in_range, check_integer

__all__ = ["ScaleStudyConfig", "ScaleStudyResult", "run_scale_study"]

DEFAULT_SERVER_COUNTS: Tuple[int, ...] = (100, 1_000, 10_000, 100_000)


@dataclass(frozen=True)
class ScaleStudyConfig:
    """Parameters of one scale sweep.

    Parameters
    ----------
    server_counts : sequence of int
        Pool sizes ``N`` to sweep (each at least ``d``).
    d : int
        Number of servers polled per arrival.
    utilization : float
        Per-server load ``rho = lambda / mu`` (dimensionless, < 1).
    threshold : int
        Imbalance threshold ``T`` of the QBD bound models.
    num_events : int
        Simulated events per replication.
    seed : int
        Base seed; pool size ``i`` runs ensemble seed ``seed + i``.
    bounds_max_servers : int
        Largest ``N`` for which the QBD bounds are solved.
    policy : str
        Dispatching policy: ``"sqd"``, ``"jsq"`` or ``"random"``.
    replications : int
        Independent replications per pool size (>= 2 adds CI half-widths).
    workers : int
        Worker processes the replications fan out over.
    confidence : float
        Two-sided confidence level of the reported half-widths.
    """

    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS
    d: int = 2
    utilization: float = 0.9
    threshold: int = 3
    num_events: int = 500_000
    seed: int = 20160627
    bounds_max_servers: int = 12
    policy: str = "sqd"
    replications: int = 1
    workers: int = 1
    confidence: float = 0.95

    def __post_init__(self) -> None:
        check_in_range("utilization", self.utilization, 0.0, 0.999)
        check_integer("d", self.d, minimum=1)
        check_integer("num_events", self.num_events, minimum=1000)
        check_integer("threshold", self.threshold, minimum=1)
        check_integer("bounds_max_servers", self.bounds_max_servers, minimum=0)
        check_integer("replications", self.replications, minimum=1)
        check_integer("workers", self.workers, minimum=1)
        for n in self.server_counts:
            check_integer("N", n, minimum=self.d)


@dataclass(frozen=True)
class ScaleStudyResult:
    """One record per pool size, plus the shared asymptote.

    ``fleet_results`` holds the full :class:`EnsembleResult` per pool size
    (every replication record, in order), so the study can be re-summarized
    at a different confidence level without re-simulating.
    """

    config: ScaleStudyConfig
    records: List[Dict[str, object]] = field(default_factory=list)
    fleet_results: Tuple[EnsembleResult, ...] = ()

    @property
    def asymptotic(self) -> float:
        return asymptotic_delay(self.config.utilization, self.config.d)

    def column(self, name: str) -> List[object]:
        return [record.get(name) for record in self.records]

    def as_table(self) -> str:
        headers = [
            "N",
            "fleet delay",
            f"±{self.config.confidence:.0%}",
            "asymptotic",
            "err%",
            "lower bound",
            "upper bound",
            "events/s",
        ]
        rows = []
        for record in self.records:
            half = record["delay_half_width"]
            rows.append(
                [
                    record["N"],
                    record["fleet_delay"],
                    half if isinstance(half, float) and math.isfinite(half) else "-",
                    record["asymptotic"],
                    record["relative_error_percent"],
                    record["lower_bound"] if record["lower_bound"] is not None else "-",
                    record["upper_bound"] if record["upper_bound"] is not None else "-",
                    f"{record['events_per_second']:,.0f}",
                ]
            )
        config = self.config
        title = (
            f"scale study: SQ({config.d}) at rho={config.utilization}, "
            f"{config.num_events} events/point x {config.replications} replications "
            f"(bounds for N <= {config.bounds_max_servers})"
        )
        return format_table(headers, rows, title=title)


def run_scale_study(config: ScaleStudyConfig, progress: Optional[callable] = None) -> ScaleStudyResult:
    """Sweep the fleet simulator over ``config.server_counts``.

    ``progress`` (if given) is called with ``(index, total, num_servers)``
    before each pool size.  The QBD bounds are solved only up to
    ``bounds_max_servers`` — their block size grows combinatorially in ``N``,
    which is the very limitation the occupancy engine routes around.  Each
    pool size is an ensemble of ``config.replications`` fleet simulations
    fanned out over ``config.workers`` processes.
    """
    records: List[Dict[str, object]] = []
    asymptote = asymptotic_delay(config.utilization, config.d)
    counts = list(config.server_counts)
    ensembles: List[EnsembleResult] = []
    with worker_pool(config.workers) as pool:  # one pool for the whole sweep
        for index, num_servers in enumerate(counts):
            if progress is not None:
                progress(index, len(counts), num_servers)
            ensembles.append(
                run_ensemble(
                    config=EnsembleConfig(
                        spec=ExperimentSpec.create(
                            num_servers=num_servers,
                            d=config.d,
                            utilization=config.utilization,
                            num_events=config.num_events,
                            policy=config.policy,
                            seed=config.seed + index,
                        ),
                        backend="fleet",
                        replications=config.replications,
                        workers=config.workers,
                        seed=config.seed + index,
                        confidence=config.confidence,
                    ),
                    pool=pool,
                )
            )
    for index, num_servers in enumerate(counts):
        ensemble = ensembles[index]
        delay = ensemble.delay
        lower = upper = None
        if num_servers <= config.bounds_max_servers and config.policy == "sqd":
            analysis = analyze_sqd(
                num_servers=num_servers,
                d=config.d,
                utilization=config.utilization,
                threshold=config.threshold,
            )
            lower = analysis.lower_delay
            upper = analysis.upper_delay
        events_per_second = ensemble.statistics("events_per_second").mean
        records.append(
            {
                "N": num_servers,
                "d": config.d,
                "utilization": config.utilization,
                "fleet_delay": delay.mean,
                "delay_half_width": delay.half_width,
                "replications": delay.n,
                "asymptotic": asymptote,
                "relative_error_percent": relative_error_percent(asymptote, delay.mean),
                "lower_bound": lower,
                "upper_bound": upper,
                "events_per_second": events_per_second,
                "mean_queue_length": ensemble.statistics("mean_queue_length").mean,
            }
        )
    return ScaleStudyResult(config=config, records=records, fleet_results=tuple(ensembles))
