"""Ablation experiments around the paper's design choices.

Three studies that the paper discusses qualitatively but does not plot:

* **Threshold sweep** — how the upper (and lower) bound tightness and the
  block size trade off against the threshold ``T`` ("there is an interesting
  tradeoff between the accuracy of the obtained upper bounds and the
  dimension of the computational complexity", Section V/VI).
* **Improved vs matrix-geometric lower bound** — Theorem 3 against Theorem 1:
  identical results, very different cost.
* **Power-of-d gap in finite N** — the delay improvement of d = 2, 3 over
  d = 1 at finite N, the finite-regime version of the power-of-two result.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.bound_models import LowerBoundModel, UpperBoundModel
from repro.core.improved_lower import solve_improved_lower_bound
from repro.core.model import SQDModel
from repro.core.qbd_solver import SolutionMethod, UnstableBoundModelError, solve_bound_model
from repro.core.state_space import repeating_block_size
from repro.core.asymptotic import asymptotic_delay
from repro.simulation.gillespie import simulate_sqd_ctmc
from repro.utils.tables import format_table


@dataclass(frozen=True)
class ThresholdSweepResult:
    """Bound tightness and block sizes across thresholds for one model."""

    model: SQDModel
    thresholds: List[int]
    block_sizes: List[int]
    lower_bounds: List[float]
    upper_bounds: List[float]
    simulation: float

    def as_table(self) -> str:
        rows = []
        for i, threshold in enumerate(self.thresholds):
            rows.append(
                [
                    threshold,
                    self.block_sizes[i],
                    self.lower_bounds[i],
                    self.upper_bounds[i],
                    self.simulation,
                ]
            )
        return format_table(
            ["T", "block size", "lower bound", "upper bound", "simulation"],
            rows,
            title=(
                f"Ablation A1: bound tightness vs threshold "
                f"(N={self.model.num_servers}, d={self.model.d}, rho={self.model.utilization})"
            ),
        )


def run_threshold_sweep(
    num_servers: int = 3,
    d: int = 2,
    utilization: float = 0.8,
    thresholds: Sequence[int] = (1, 2, 3, 4),
    simulation_events: int = 200_000,
    seed: int = 7,
) -> ThresholdSweepResult:
    """Sweep the threshold ``T`` and report bound tightness and block size."""
    model = SQDModel(num_servers=num_servers, d=d, utilization=utilization)
    lower_values: List[float] = []
    upper_values: List[float] = []
    block_sizes: List[int] = []
    for threshold in thresholds:
        block_sizes.append(repeating_block_size(num_servers, threshold))
        lower_values.append(solve_improved_lower_bound(model, threshold).mean_delay)
        try:
            upper_solution = solve_bound_model(UpperBoundModel(model, threshold).qbd_blocks())
            upper_values.append(upper_solution.mean_delay)
        except UnstableBoundModelError:
            upper_values.append(math.inf)
    simulation = simulate_sqd_ctmc(
        num_servers=num_servers, d=d, utilization=utilization, num_events=simulation_events, seed=seed
    ).mean_delay
    return ThresholdSweepResult(
        model=model,
        thresholds=list(thresholds),
        block_sizes=block_sizes,
        lower_bounds=lower_values,
        upper_bounds=upper_values,
        simulation=simulation,
    )


@dataclass(frozen=True)
class MethodComparisonResult:
    """Theorem 3 (scalar) against Theorem 1 (matrix-geometric) lower bound."""

    model: SQDModel
    threshold: int
    utilizations: List[float]
    scalar_delays: List[float]
    matrix_delays: List[float]
    scalar_seconds: float
    matrix_seconds: float

    @property
    def max_absolute_difference(self) -> float:
        return max(abs(a - b) for a, b in zip(self.scalar_delays, self.matrix_delays))

    def as_table(self) -> str:
        rows = [
            [u, s, m, abs(s - m)]
            for u, s, m in zip(self.utilizations, self.scalar_delays, self.matrix_delays)
        ]
        rows.append(["total seconds", self.scalar_seconds, self.matrix_seconds, ""])
        return format_table(
            ["utilization", "Theorem 3 (scalar)", "Theorem 1 (matrix)", "difference"],
            rows,
            title=(
                f"Ablation A2: improved vs matrix-geometric lower bound "
                f"(N={self.model.num_servers}, d={self.model.d}, T={self.threshold})"
            ),
        )


def run_improved_vs_matrix_geometric(
    num_servers: int = 3,
    d: int = 2,
    threshold: int = 3,
    utilizations: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
) -> MethodComparisonResult:
    """Compare the two lower-bound solution methods (values and wall time)."""
    base_model = SQDModel(num_servers=num_servers, d=d, utilization=0.5)
    scalar_delays: List[float] = []
    matrix_delays: List[float] = []

    start = time.perf_counter()
    for utilization in utilizations:
        model = base_model.with_utilization(utilization)
        scalar_delays.append(solve_improved_lower_bound(model, threshold).mean_delay)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for utilization in utilizations:
        model = base_model.with_utilization(utilization)
        blocks = LowerBoundModel(model, threshold).qbd_blocks()
        matrix_delays.append(solve_bound_model(blocks, method=SolutionMethod.MATRIX_GEOMETRIC).mean_delay)
    matrix_seconds = time.perf_counter() - start

    return MethodComparisonResult(
        model=base_model,
        threshold=threshold,
        utilizations=[float(u) for u in utilizations],
        scalar_delays=scalar_delays,
        matrix_delays=matrix_delays,
        scalar_seconds=scalar_seconds,
        matrix_seconds=matrix_seconds,
    )


@dataclass(frozen=True)
class PowerOfDGapResult:
    """Finite-N delay of SQ(d) for several d, against the asymptotic prediction."""

    num_servers: int
    utilization: float
    choices: List[int]
    lower_bounds: List[float]
    simulations: List[float]
    asymptotics: List[float]

    def as_table(self) -> str:
        rows = [
            [d, lower, sim, asymptotic]
            for d, lower, sim, asymptotic in zip(self.choices, self.lower_bounds, self.simulations, self.asymptotics)
        ]
        return format_table(
            ["d", "lower bound", "simulation", "asymptotic"],
            rows,
            title=f"Ablation A3: power-of-d gap at N={self.num_servers}, rho={self.utilization}",
        )


def run_power_of_d_gap(
    num_servers: int = 10,
    utilization: float = 0.9,
    choices: Sequence[int] = (1, 2, 3),
    threshold: int = 2,
    simulation_events: int = 200_000,
    seed: int = 11,
) -> PowerOfDGapResult:
    """Quantify the finite-N power-of-d effect (delay vs number of choices)."""
    lower_bounds: List[float] = []
    simulations: List[float] = []
    asymptotics: List[float] = []
    for d in choices:
        model = SQDModel(num_servers=num_servers, d=d, utilization=utilization)
        lower_bounds.append(solve_improved_lower_bound(model, threshold).mean_delay)
        simulations.append(
            simulate_sqd_ctmc(
                num_servers=num_servers,
                d=d,
                utilization=utilization,
                num_events=simulation_events,
                seed=seed + d,
            ).mean_delay
        )
        asymptotics.append(asymptotic_delay(utilization, d))
    return PowerOfDGapResult(
        num_servers=num_servers,
        utilization=utilization,
        choices=list(choices),
        lower_bounds=lower_bounds,
        simulations=simulations,
        asymptotics=asymptotics,
    )
