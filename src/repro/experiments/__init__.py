"""Experiment harnesses regenerating the paper's figures and ablations.

Each harness returns a plain result object with the same series the paper
plots and knows how to render itself as an aligned text table, so the
benchmark suite can both time the computation and print the reproduced
numbers.
"""

from repro.experiments.figure9 import Figure9Config, Figure9Result, run_figure9
from repro.experiments.figure10 import Figure10Config, Figure10Result, run_figure10
from repro.experiments.ablations import (
    ThresholdSweepResult,
    run_improved_vs_matrix_geometric,
    run_power_of_d_gap,
    run_threshold_sweep,
)
from repro.experiments.runner import SweepConfig, SweepResult, run_sweep
from repro.experiments.scale_study import ScaleStudyConfig, ScaleStudyResult, run_scale_study

__all__ = [
    "ScaleStudyConfig",
    "ScaleStudyResult",
    "run_scale_study",
    "SweepConfig",
    "SweepResult",
    "run_sweep",
    "Figure9Config",
    "Figure9Result",
    "run_figure9",
    "Figure10Config",
    "Figure10Result",
    "run_figure10",
    "ThresholdSweepResult",
    "run_threshold_sweep",
    "run_improved_vs_matrix_geometric",
    "run_power_of_d_gap",
]
