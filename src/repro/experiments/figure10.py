"""Figure 10: average delay versus utilization for SQ(2).

Each panel of the paper's Figure 10 plots four curves over a utilization
sweep for SQ(2): the upper bound (Theorem 1), simulations of the true
system, the lower bound (Theorems 1/3) and the asymptotic approximation
(Eq. 16).  The panels differ in the number of servers and the threshold:

* (a) N = 3, T = 2
* (b) N = 3, T = 3
* (c) N = 6, T = 3
* (d) N = 12, T = 3

Utilizations where the upper bound model violates its drift (stability)
condition are reported as ``inf`` — this is the "different values of T change
the stability condition for the SQ(d) upper bound" effect discussed in
Section V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ExperimentSpec
from repro.core.analysis import analyze_sqd
from repro.core.qbd_solver import SolutionMethod
from repro.ensemble.runner import EnsembleConfig, run_ensemble, worker_pool
from repro.utils.tables import format_series
from repro.utils.validation import check_integer

DEFAULT_UTILIZATIONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class Figure10Config:
    """Parameters of one Figure 10 panel.

    Parameters
    ----------
    num_servers, threshold, d :
        Panel shape: pool size ``N``, bound threshold ``T``, poll count ``d``.
    utilizations : sequence of float
        The swept per-server loads ``rho = lambda / mu`` (dimensionless).
    simulation_events : int
        Simulated events per replication.
    replications : int
        Independent simulation replications per utilization (>= 2 adds
        confidence half-widths to the simulation curve).
    workers : int
        Worker processes the replications fan out over.
    confidence : float
        Two-sided confidence level of the reported half-widths.
    """

    num_servers: int
    threshold: int
    d: int = 2
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS
    simulation_events: int = 200_000
    seed: int = 20160627
    run_simulation: bool = True
    lower_bound_method: SolutionMethod = SolutionMethod.SCALAR_GEOMETRIC
    replications: int = 1
    workers: int = 1
    confidence: float = 0.95

    def __post_init__(self) -> None:
        check_integer("num_servers", self.num_servers, minimum=2)
        check_integer("threshold", self.threshold, minimum=1)
        check_integer("d", self.d, minimum=1, maximum=self.num_servers)
        check_integer("replications", self.replications, minimum=1)
        check_integer("workers", self.workers, minimum=1)


@dataclass(frozen=True)
class Figure10Result:
    """The four delay curves of one panel (delays in units of ``1/mu``).

    ``simulation_half_width`` carries the per-utilization confidence
    half-width of the simulation curve (``nan`` with one replication).
    """

    config: Figure10Config
    utilizations: List[float]
    lower_bound: List[float]
    upper_bound: List[float]
    simulation: List[float]
    asymptotic: List[float]
    simulation_half_width: List[float] = field(default_factory=list)

    def series(self) -> Dict[str, List[float]]:
        columns = {
            "upper": self.upper_bound,
            "simulation": self.simulation,
            "lower": self.lower_bound,
            "asymptotic": self.asymptotic,
        }
        if self.config.replications >= 2 and self.config.run_simulation:
            columns["sim ±CI"] = self.simulation_half_width
        return columns

    def as_table(self) -> str:
        config = self.config
        return format_series(
            self.series(),
            x_label="utilization",
            x_values=self.utilizations,
            title=(
                f"Figure 10 (N={config.num_servers}, d={config.d}, T={config.threshold}): "
                "average delay vs utilization"
            ),
        )

    def sandwich_holds(self, slack: float = 0.0) -> bool:
        """Check lower <= simulation <= upper on every point where all are finite."""
        for low, sim, high in zip(self.lower_bound, self.simulation, self.upper_bound):
            if math.isnan(sim):
                continue
            if low > sim * (1.0 + slack):
                return False
            if math.isfinite(high) and sim > high * (1.0 + slack):
                return False
        return True


def run_figure10(config: Figure10Config) -> Figure10Result:
    """Run the utilization sweep for one panel of Figure 10.

    Bounds and asymptotics come from :func:`analyze_sqd`; the simulation
    curve routes through the ensemble runner, so each point is the mean of
    ``config.replications`` independent CTMC simulations with a Student-t
    confidence half-width alongside.
    """
    lower: List[float] = []
    upper: List[float] = []
    simulated: List[float] = []
    half_widths: List[float] = []
    asymptotic: List[float] = []
    utilizations = [float(u) for u in config.utilizations]

    with worker_pool(config.workers if config.run_simulation else 1) as pool:
        for index, utilization in enumerate(utilizations):
            analysis = analyze_sqd(
                num_servers=config.num_servers,
                d=config.d,
                utilization=utilization,
                threshold=config.threshold,
                lower_bound_method=config.lower_bound_method,
                compute_upper_bound=True,
                run_simulation=False,
            )
            lower.append(analysis.lower_delay)
            upper.append(analysis.upper_delay if analysis.upper_delay is not None else math.inf)
            asymptotic.append(analysis.asymptotic_delay)
            if config.run_simulation:
                ensemble = run_ensemble(
                    config=EnsembleConfig(
                        spec=ExperimentSpec.create(
                            num_servers=config.num_servers,
                            d=config.d,
                            utilization=utilization,
                            num_events=config.simulation_events,
                            seed=config.seed + index,
                        ),
                        backend="ctmc",
                        replications=config.replications,
                        workers=config.workers,
                        seed=config.seed + index,
                        confidence=config.confidence,
                    ),
                    pool=pool,
                )
                statistics = ensemble.delay
                simulated.append(statistics.mean)
                half_widths.append(statistics.half_width)
            else:
                simulated.append(math.nan)
                half_widths.append(math.nan)

    return Figure10Result(
        config=config,
        utilizations=utilizations,
        lower_bound=lower,
        upper_bound=upper,
        simulation=simulated,
        asymptotic=asymptotic,
        simulation_half_width=half_widths,
    )


def panel_config(
    panel: str,
    simulation_events: int = 200_000,
    utilizations: Optional[Sequence[float]] = None,
    replications: int = 1,
    workers: int = 1,
) -> Figure10Config:
    """Named configurations for the paper's four panels ('a', 'b', 'c', 'd')."""
    panels = {
        "a": (3, 2),
        "b": (3, 3),
        "c": (6, 3),
        "d": (12, 3),
    }
    if panel not in panels:
        raise ValueError(f"unknown Figure 10 panel {panel!r}; expected one of {sorted(panels)}")
    num_servers, threshold = panels[panel]
    kwargs = {}
    if utilizations is not None:
        kwargs["utilizations"] = tuple(utilizations)
    return Figure10Config(
        num_servers=num_servers,
        threshold=threshold,
        simulation_events=simulation_events,
        replications=replications,
        workers=workers,
        **kwargs,
    )
