"""Figure 10: average delay versus utilization for SQ(2).

Each panel of the paper's Figure 10 plots four curves over a utilization
sweep for SQ(2): the upper bound (Theorem 1), simulations of the true
system, the lower bound (Theorems 1/3) and the asymptotic approximation
(Eq. 16).  The panels differ in the number of servers and the threshold:

* (a) N = 3, T = 2
* (b) N = 3, T = 3
* (c) N = 6, T = 3
* (d) N = 12, T = 3

Utilizations where the upper bound model violates its drift (stability)
condition are reported as ``inf`` — this is the "different values of T change
the stability condition for the SQ(d) upper bound" effect discussed in
Section V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import analyze_sqd
from repro.core.qbd_solver import SolutionMethod
from repro.utils.tables import format_series
from repro.utils.validation import check_integer

DEFAULT_UTILIZATIONS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


@dataclass(frozen=True)
class Figure10Config:
    """Parameters of one Figure 10 panel."""

    num_servers: int
    threshold: int
    d: int = 2
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS
    simulation_events: int = 200_000
    seed: int = 20160627
    run_simulation: bool = True
    lower_bound_method: SolutionMethod = SolutionMethod.SCALAR_GEOMETRIC

    def __post_init__(self) -> None:
        check_integer("num_servers", self.num_servers, minimum=2)
        check_integer("threshold", self.threshold, minimum=1)
        check_integer("d", self.d, minimum=1, maximum=self.num_servers)


@dataclass(frozen=True)
class Figure10Result:
    """The four delay curves of one panel."""

    config: Figure10Config
    utilizations: List[float]
    lower_bound: List[float]
    upper_bound: List[float]
    simulation: List[float]
    asymptotic: List[float]

    def series(self) -> Dict[str, List[float]]:
        return {
            "upper": self.upper_bound,
            "simulation": self.simulation,
            "lower": self.lower_bound,
            "asymptotic": self.asymptotic,
        }

    def as_table(self) -> str:
        config = self.config
        return format_series(
            self.series(),
            x_label="utilization",
            x_values=self.utilizations,
            title=(
                f"Figure 10 (N={config.num_servers}, d={config.d}, T={config.threshold}): "
                "average delay vs utilization"
            ),
        )

    def sandwich_holds(self, slack: float = 0.0) -> bool:
        """Check lower <= simulation <= upper on every point where all are finite."""
        for low, sim, high in zip(self.lower_bound, self.simulation, self.upper_bound):
            if math.isnan(sim):
                continue
            if low > sim * (1.0 + slack):
                return False
            if math.isfinite(high) and sim > high * (1.0 + slack):
                return False
        return True


def run_figure10(config: Figure10Config) -> Figure10Result:
    """Run the utilization sweep for one panel of Figure 10."""
    lower: List[float] = []
    upper: List[float] = []
    simulated: List[float] = []
    asymptotic: List[float] = []
    utilizations = [float(u) for u in config.utilizations]

    for index, utilization in enumerate(utilizations):
        analysis = analyze_sqd(
            num_servers=config.num_servers,
            d=config.d,
            utilization=utilization,
            threshold=config.threshold,
            lower_bound_method=config.lower_bound_method,
            compute_upper_bound=True,
            run_simulation=config.run_simulation,
            simulation_events=config.simulation_events,
            simulation_seed=config.seed + index,
        )
        lower.append(analysis.lower_delay)
        upper.append(analysis.upper_delay if analysis.upper_delay is not None else math.inf)
        simulated.append(analysis.simulated_delay if analysis.simulated_delay is not None else math.nan)
        asymptotic.append(analysis.asymptotic_delay)

    return Figure10Result(
        config=config,
        utilizations=utilizations,
        lower_bound=lower,
        upper_bound=upper,
        simulation=simulated,
        asymptotic=asymptotic,
    )


def panel_config(panel: str, simulation_events: int = 200_000, utilizations: Optional[Sequence[float]] = None) -> Figure10Config:
    """Named configurations for the paper's four panels ('a', 'b', 'c', 'd')."""
    panels = {
        "a": (3, 2),
        "b": (3, 3),
        "c": (6, 3),
        "d": (12, 3),
    }
    if panel not in panels:
        raise ValueError(f"unknown Figure 10 panel {panel!r}; expected one of {sorted(panels)}")
    num_servers, threshold = panels[panel]
    kwargs = {}
    if utilizations is not None:
        kwargs["utilizations"] = tuple(utilizations)
    return Figure10Config(
        num_servers=num_servers,
        threshold=threshold,
        simulation_events=simulation_events,
        **kwargs,
    )
