"""Figure 9: relative error of the asymptotic delay against finite-N simulation.

The paper plots, for utilizations ``rho = 0.75`` (panel a) and ``rho = 0.95``
(panel b), the relative error (in percent) of Mitzenmacher's asymptotic delay
(Eq. 16) with respect to simulations of the true finite-``N`` SQ(d) system,
for ``d in {2, 5, 10, 25, 50}`` and a range of ``N`` up to 250.  The paper's
simulations use 10^8 jobs per point; the default here is far smaller so the
sweep finishes in seconds, and ``num_events`` can be raised to match the
paper's precision.

Every point routes through the ensemble runner
(:func:`repro.ensemble.runner.run_ensemble`): with ``replications >= 2`` each
simulated delay carries a Student-t confidence half-width, the replications
fan out over ``workers`` processes, and the table shows the error bars the
paper's point estimates lack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.spec import ExperimentSpec
from repro.core.asymptotic import asymptotic_delay, relative_error_percent
from repro.ensemble.runner import EnsembleConfig, run_ensemble, worker_pool
from repro.utils.tables import format_series
from repro.utils.validation import check_in_range, check_integer

DEFAULT_CHOICES: Tuple[int, ...] = (2, 5, 10, 25, 50)
DEFAULT_SERVER_COUNTS: Tuple[int, ...] = (10, 25, 50, 75, 100, 150, 200, 250)


@dataclass(frozen=True)
class Figure9Config:
    """Parameters of one Figure 9 panel.

    Parameters
    ----------
    utilization : float
        Per-server load ``rho = lambda / mu`` (dimensionless, < 1).
    choices : sequence of int
        The swept poll counts ``d``.
    server_counts : sequence of int
        The swept pool sizes ``N``; values below ``d`` are skipped.
    num_events : int
        Simulated events per replication.
    seed : int
        Base seed; each ``(d, N)`` point derives an independent ensemble.
    replications : int
        Independent replications per point (1 reproduces the paper's bare
        point estimates; >= 2 adds confidence intervals).
    workers : int
        Worker processes the replications fan out over.
    confidence : float
        Two-sided confidence level of the reported half-widths.
    """

    utilization: float
    choices: Sequence[int] = DEFAULT_CHOICES
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS
    num_events: int = 200_000
    seed: int = 20160627  # ICDCS 2016 opening day, for reproducibility
    replications: int = 1
    workers: int = 1
    confidence: float = 0.95

    def __post_init__(self) -> None:
        check_in_range("utilization", self.utilization, 0.0, 0.999)
        check_integer("num_events", self.num_events, minimum=1000)
        check_integer("replications", self.replications, minimum=1)
        check_integer("workers", self.workers, minimum=1)
        for d in self.choices:
            check_integer("d", d, minimum=1)
        for n in self.server_counts:
            check_integer("N", n, minimum=1)


@dataclass(frozen=True)
class Figure9Result:
    """Relative error series, one per value of ``d``.

    ``delay_half_widths`` maps each ``d`` to the per-``N`` confidence
    half-widths of the simulated delay (``nan`` with a single replication).
    """

    config: Figure9Config
    simulated_delays: Dict[int, List[float]]
    relative_errors: Dict[int, List[float]]
    asymptotic_delays: Dict[int, float]
    delay_half_widths: Dict[int, List[float]] = field(default_factory=dict)

    def server_counts_for(self, d: int) -> List[int]:
        """The N values actually swept for a given ``d`` (only ``N >= d``)."""
        return [n for n in self.config.server_counts if n >= d]

    def as_table(self) -> str:
        """Render the panel as one aligned text table (rows = N, columns = d).

        With ``replications >= 2`` each error column is followed by a
        ``±err%`` column: the confidence half-width of the simulated delay,
        expressed in the same relative-percent units as the error itself.
        """
        server_counts = list(self.config.server_counts)
        with_bars = self.config.replications >= 2
        series = {}
        for d in self.config.choices:
            swept = self.server_counts_for(d)
            errors = dict(zip(swept, self.relative_errors[d]))
            series[f"d={d} err%"] = [errors.get(n, float("nan")) for n in server_counts]
            if with_bars:
                delays = dict(zip(swept, self.simulated_delays[d]))
                halves = dict(zip(swept, self.delay_half_widths.get(d, [])))
                series[f"d={d} ±err%"] = [
                    100.0 * halves.get(n, float("nan")) / delays.get(n, float("nan"))
                    for n in server_counts
                ]
        title = (
            f"Figure 9 (rho={self.config.utilization}): relative error (%) of the asymptotic "
            f"delay vs simulation ({self.config.num_events} events/point"
        )
        if with_bars:
            title += (
                f", {self.config.replications} replications, "
                f"{self.config.confidence:.0%} CI half-widths"
            )
        title += ")"
        return format_series(
            series,
            x_label="N",
            x_values=server_counts,
            title=title,
        )


def run_figure9(config: Figure9Config) -> Figure9Result:
    """Run the Figure 9 sweep for one utilization level.

    Every ``(d, N)`` point is an independent ensemble of
    ``config.replications`` CTMC simulations; the reported delay is the
    across-replication mean and the relative error is computed against it.
    """
    simulated: Dict[int, List[float]] = {}
    errors: Dict[int, List[float]] = {}
    half_widths: Dict[int, List[float]] = {}
    asymptotics: Dict[int, float] = {}
    with worker_pool(config.workers) as pool:  # one pool for the whole sweep
        for d in config.choices:
            asymptotic = asymptotic_delay(config.utilization, d)
            asymptotics[d] = asymptotic
            delays: List[float] = []
            error_series: List[float] = []
            half_series: List[float] = []
            for n in config.server_counts:
                if n < d:
                    continue
                point_seed = config.seed + 1000 * d + n
                ensemble = run_ensemble(
                    config=EnsembleConfig(
                        spec=ExperimentSpec.create(
                            num_servers=n,
                            d=d,
                            utilization=config.utilization,
                            num_events=config.num_events,
                            seed=point_seed,
                        ),
                        backend="ctmc",
                        replications=config.replications,
                        workers=config.workers,
                        seed=point_seed,
                        confidence=config.confidence,
                    ),
                    pool=pool,
                )
                statistics = ensemble.delay
                delays.append(statistics.mean)
                error_series.append(relative_error_percent(asymptotic, statistics.mean))
                half_series.append(statistics.half_width)
            simulated[d] = delays
            errors[d] = error_series
            half_widths[d] = half_series
    return Figure9Result(
        config=config,
        simulated_delays=simulated,
        relative_errors=errors,
        asymptotic_delays=asymptotics,
        delay_half_widths=half_widths,
    )


def figure9a_config(num_events: int = 200_000, server_counts: Optional[Sequence[int]] = None) -> Figure9Config:
    """Panel (a): moderate-high utilization rho = 0.75."""
    return Figure9Config(
        utilization=0.75,
        num_events=num_events,
        server_counts=tuple(server_counts) if server_counts is not None else DEFAULT_SERVER_COUNTS,
    )


def figure9b_config(num_events: int = 200_000, server_counts: Optional[Sequence[int]] = None) -> Figure9Config:
    """Panel (b): very high utilization rho = 0.95."""
    return Figure9Config(
        utilization=0.95,
        num_events=num_events,
        server_counts=tuple(server_counts) if server_counts is not None else DEFAULT_SERVER_COUNTS,
    )
