"""Figure 9: relative error of the asymptotic delay against finite-N simulation.

The paper plots, for utilizations ``rho = 0.75`` (panel a) and ``rho = 0.95``
(panel b), the relative error (in percent) of Mitzenmacher's asymptotic delay
(Eq. 16) with respect to simulations of the true finite-``N`` SQ(d) system,
for ``d in {2, 5, 10, 25, 50}`` and a range of ``N`` up to 250.  The paper's
simulations use 10^8 jobs per point; the default here is far smaller so the
sweep finishes in seconds, and ``num_events`` can be raised to match the
paper's precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.asymptotic import asymptotic_delay, relative_error_percent
from repro.simulation.gillespie import simulate_sqd_ctmc
from repro.utils.tables import format_series
from repro.utils.validation import check_in_range, check_integer

DEFAULT_CHOICES: Tuple[int, ...] = (2, 5, 10, 25, 50)
DEFAULT_SERVER_COUNTS: Tuple[int, ...] = (10, 25, 50, 75, 100, 150, 200, 250)


@dataclass(frozen=True)
class Figure9Config:
    """Parameters of one Figure 9 panel."""

    utilization: float
    choices: Sequence[int] = DEFAULT_CHOICES
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS
    num_events: int = 200_000
    seed: int = 20160627  # ICDCS 2016 opening day, for reproducibility

    def __post_init__(self) -> None:
        check_in_range("utilization", self.utilization, 0.0, 0.999)
        check_integer("num_events", self.num_events, minimum=1000)
        for d in self.choices:
            check_integer("d", d, minimum=1)
        for n in self.server_counts:
            check_integer("N", n, minimum=1)


@dataclass(frozen=True)
class Figure9Result:
    """Relative error series, one per value of ``d``."""

    config: Figure9Config
    simulated_delays: Dict[int, List[float]]
    relative_errors: Dict[int, List[float]]
    asymptotic_delays: Dict[int, float]

    def server_counts_for(self, d: int) -> List[int]:
        """The N values actually swept for a given ``d`` (only ``N >= d``)."""
        return [n for n in self.config.server_counts if n >= d]

    def as_table(self) -> str:
        """Render the panel as one aligned text table (rows = N, columns = d)."""
        server_counts = list(self.config.server_counts)
        series = {}
        for d in self.config.choices:
            swept = self.server_counts_for(d)
            errors = dict(zip(swept, self.relative_errors[d]))
            series[f"d={d} err%"] = [errors.get(n, float("nan")) for n in server_counts]
        return format_series(
            series,
            x_label="N",
            x_values=server_counts,
            title=(
                f"Figure 9 (rho={self.config.utilization}): relative error (%) of the asymptotic "
                f"delay vs simulation ({self.config.num_events} events/point)"
            ),
        )


def run_figure9(config: Figure9Config) -> Figure9Result:
    """Run the Figure 9 sweep for one utilization level."""
    simulated: Dict[int, List[float]] = {}
    errors: Dict[int, List[float]] = {}
    asymptotics: Dict[int, float] = {}
    for d in config.choices:
        asymptotic = asymptotic_delay(config.utilization, d)
        asymptotics[d] = asymptotic
        delays: List[float] = []
        error_series: List[float] = []
        for n in config.server_counts:
            if n < d:
                continue
            result = simulate_sqd_ctmc(
                num_servers=n,
                d=d,
                utilization=config.utilization,
                num_events=config.num_events,
                seed=config.seed + 1000 * d + n,
            )
            delays.append(result.mean_delay)
            error_series.append(relative_error_percent(asymptotic, result.mean_delay))
        simulated[d] = delays
        errors[d] = error_series
    return Figure9Result(
        config=config,
        simulated_delays=simulated,
        relative_errors=errors,
        asymptotic_delays=asymptotics,
    )


def figure9a_config(num_events: int = 200_000, server_counts: Optional[Sequence[int]] = None) -> Figure9Config:
    """Panel (a): moderate-high utilization rho = 0.75."""
    return Figure9Config(
        utilization=0.75,
        num_events=num_events,
        server_counts=tuple(server_counts) if server_counts is not None else DEFAULT_SERVER_COUNTS,
    )


def figure9b_config(num_events: int = 200_000, server_counts: Optional[Sequence[int]] = None) -> Figure9Config:
    """Panel (b): very high utilization rho = 0.95."""
    return Figure9Config(
        utilization=0.95,
        num_events=num_events,
        server_counts=tuple(server_counts) if server_counts is not None else DEFAULT_SERVER_COUNTS,
    )
