"""Join-Idle-Queue dispatching (Lu et al., 2011) — an extension baseline."""

from __future__ import annotations

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy


class JoinIdleQueue(DispatchingPolicy):
    """Prefer an idle server; fall back to a uniformly random server.

    The real JIQ system maintains an idle-server registry updated by the
    servers themselves; in a single-dispatcher simulation that registry is
    exactly the set of currently idle servers, so this implementation reads it
    from the cluster view.  JIQ is included because it is the most common
    modern alternative to power-of-d dispatching and makes a natural extra
    series in the policy-comparison example.
    """

    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        idle = view.idle_servers()
        if idle.shape[0] > 0:
            return int(rng.choice(idle))
        return int(rng.integers(view.num_servers))

    @property
    def feedback_messages_per_job(self) -> int:
        return 0  # servers push idle notifications; no per-job polling

    def __repr__(self) -> str:
        return "JoinIdleQueue()"
