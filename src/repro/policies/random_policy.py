"""Uniform random dispatching (the d = 1 extreme of SQ(d))."""

from __future__ import annotations

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy


class UniformRandom(DispatchingPolicy):
    """Send each job to a server chosen uniformly at random.

    With Poisson arrivals this splits the cluster into ``N`` independent
    M/G/1 queues, which is the zero-feedback baseline of the paper.
    """

    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        return int(rng.integers(view.num_servers))

    @property
    def feedback_messages_per_job(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "UniformRandom()"
