"""Dispatching policies for parallel-server clusters.

The paper's subject is SQ(d) (``power of d choices``); JSQ and uniform random
dispatching are its two extremes (``d = N`` and ``d = 1``).  A few additional
policies that are standard comparison points in the load-balancing literature
(round-robin, join-idle-queue, least-work-left) are included as baselines for
the examples and ablation benchmarks.
"""

from repro.policies.base import ClusterView, DispatchingPolicy
from repro.policies.sqd import PowerOfD
from repro.policies.jsq import JoinShortestQueue
from repro.policies.random_policy import UniformRandom
from repro.policies.round_robin import RoundRobin
from repro.policies.jiq import JoinIdleQueue
from repro.policies.least_work_left import LeastWorkLeft

__all__ = [
    "ClusterView",
    "DispatchingPolicy",
    "PowerOfD",
    "JoinShortestQueue",
    "UniformRandom",
    "RoundRobin",
    "JoinIdleQueue",
    "LeastWorkLeft",
]
