"""Round-robin dispatching."""

from __future__ import annotations

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy


class RoundRobin(DispatchingPolicy):
    """Cycle deterministically through the servers.

    Round-robin needs no feedback at all and smooths the arrival stream seen
    by each server (each server receives an Erlang-N thinned stream), which
    makes it a useful low-cost baseline in the policy-comparison example.
    """

    def __init__(self) -> None:
        self._next_server = 0

    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        server = self._next_server % view.num_servers
        self._next_server = (server + 1) % view.num_servers
        return int(server)

    def reset(self) -> None:
        self._next_server = 0

    @property
    def feedback_messages_per_job(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "RoundRobin()"
