"""Join-the-Shortest-Queue (JSQ) dispatching."""

from __future__ import annotations

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy


class JoinShortestQueue(DispatchingPolicy):
    """Send each arriving job to a server with the globally smallest queue.

    Ties are broken uniformly at random.  JSQ is the ``d = N`` extreme of
    SQ(d): minimal delay, maximal feedback cost (every server reports its
    queue length on every arrival).
    """

    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        lengths = view.queue_lengths
        shortest = lengths.min()
        candidates = np.flatnonzero(lengths == shortest)
        if candidates.shape[0] == 1:
            return int(candidates[0])
        return int(rng.choice(candidates))

    @property
    def feedback_messages_per_job(self) -> int | None:
        return None  # depends on N; reported by the simulator as N per job

    def __repr__(self) -> str:
        return "JoinShortestQueue()"
