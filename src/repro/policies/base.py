"""Dispatching-policy interface shared by all simulators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


@dataclass
class ClusterView:
    """Read-only snapshot of the cluster state offered to a policy.

    Attributes
    ----------
    queue_lengths:
        Number of jobs at each server, *including* the one in service.
    work_remaining:
        Remaining work (sum of residual service requirements) at each server,
        or ``None`` when the simulator does not track it (the CTMC simulator
        does not, the job-level simulator does).
    """

    queue_lengths: np.ndarray
    work_remaining: np.ndarray | None = None

    @property
    def num_servers(self) -> int:
        return int(self.queue_lengths.shape[0])

    def idle_servers(self) -> np.ndarray:
        """Indices of servers with no jobs at all."""
        return np.flatnonzero(self.queue_lengths == 0)


class DispatchingPolicy(ABC):
    """A rule assigning each arriving job to exactly one server."""

    @abstractmethod
    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        """Return the index of the server the arriving job should join."""

    def reset(self) -> None:
        """Clear any internal state (e.g. the round-robin pointer)."""

    @property
    def feedback_messages_per_job(self) -> int | None:
        """Number of server->dispatcher queue-length reports needed per job.

        This is the "feedback cost" axis of the tradeoff discussed in the
        paper's introduction; ``None`` means the policy keeps persistent state
        instead of polling (e.g. join-idle-queue).
        """
        return None
