"""Least-work-left dispatching, optionally restricted to d sampled servers."""

from __future__ import annotations

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy
from repro.utils.validation import check_integer


class LeastWorkLeft(DispatchingPolicy):
    """Join the server with the smallest remaining *work* among ``d`` polled servers.

    ``d = None`` polls every server.  Remaining work is only observable in the
    job-level simulator; when the view does not carry it the policy falls back
    to queue lengths (making it equivalent to SQ(d)/JSQ), so it can still be
    used with the CTMC simulator without crashing an experiment sweep.
    """

    def __init__(self, d: int | None = None):
        self._d = None if d is None else check_integer("d", d, minimum=1)

    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        num_servers = view.num_servers
        if self._d is None or self._d >= num_servers:
            polled = np.arange(num_servers)
        else:
            polled = rng.choice(num_servers, size=self._d, replace=False)
        metric = view.work_remaining if view.work_remaining is not None else view.queue_lengths
        values = metric[polled]
        best = values.min()
        candidates = polled[values == best]
        if candidates.shape[0] == 1:
            return int(candidates[0])
        return int(rng.choice(candidates))

    @property
    def feedback_messages_per_job(self) -> int | None:
        return self._d

    def __repr__(self) -> str:
        return f"LeastWorkLeft(d={self._d})"
