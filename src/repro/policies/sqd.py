"""The SQ(d) / power-of-d-choices dispatching policy."""

from __future__ import annotations

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy
from repro.utils.validation import check_integer


class PowerOfD(DispatchingPolicy):
    """Poll ``d`` distinct servers uniformly at random and join the shortest.

    Ties among the polled servers are broken uniformly at random, matching
    the paper's "ties are resolved arbitrarily".  ``d = 1`` degenerates to
    uniform random dispatching and ``d = N`` to JSQ restricted to a random
    permutation (identical in law to JSQ).
    """

    def __init__(self, d: int):
        self._d = check_integer("d", d, minimum=1)

    @property
    def d(self) -> int:
        return self._d

    @property
    def feedback_messages_per_job(self) -> int:
        return self._d

    def select_server(self, view: ClusterView, rng: np.random.Generator) -> int:
        num_servers = view.num_servers
        if self._d > num_servers:
            raise ValueError(f"d = {self._d} exceeds the number of servers ({num_servers})")
        if self._d == num_servers:
            polled = np.arange(num_servers)
        elif self._d * self._d * 2 <= num_servers:
            # Vectorized rejection sampling of distinct indices is cheaper than
            # rng.choice(replace=False) when collisions are unlikely (small d
            # relative to N) — the hot path of the Figure 9 sweep.
            polled = rng.integers(0, num_servers, size=self._d)
            while np.unique(polled).shape[0] != self._d:
                polled = rng.integers(0, num_servers, size=self._d)
        else:
            # For larger d a partial shuffle avoids the quadratic collision
            # cost of rejection sampling.
            polled = rng.permutation(num_servers)[: self._d]
        lengths = view.queue_lengths[polled]
        shortest = lengths.min()
        candidates = polled[lengths == shortest]
        if candidates.shape[0] == 1:
            return int(candidates[0])
        return int(rng.choice(candidates))

    def __repr__(self) -> str:
        return f"PowerOfD(d={self._d})"
