"""Fault plans: seeded, declarative descriptions of *what fails where*.

A plan is data, not code: it round-trips through JSON (so the CI
chaos-smoke job can ship one through the ``REPRO_FAULT_PLAN`` environment
variable into a fresh CLI process) and every firing decision is a pure
function of ``(plan seed, site, key, occurrence)`` — replaying the same
plan against the same campaign misfires in exactly the same places.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["FaultPlan", "FaultSpec", "KINDS", "SITES"]

#: Hook sites wired into the execution path.  Keeping the registry explicit
#: means a typo'd site in a plan fails at construction, not by silently
#: never firing.
SITES = (
    "journal.append",      # TaskQueue._journal: one task-state transition line
    "records.append",      # ResultStore.extend: one replication record line
    "manifest.write",      # CampaignManifest.write: atomic write-fsync-rename
    "worker.claim",        # worker_loop: about to report a claim (heartbeat)
    "worker.task",         # worker_loop: about to execute a leased task
    "worker.done",         # worker_loop: executed, about to report completion
    "scheduler.heartbeat", # scheduler: about to re-stamp a worker's leases
)

#: Fault kinds and where they make sense:
#:
#: ``io_error``
#:     Raise :class:`~repro.faults.hooks.InjectedIOError` (an ``OSError``)
#:     at the hook — the transient-disk-failure model the retry layer
#:     (:mod:`repro.utils.retry`) must absorb.
#: ``torn_write``
#:     Write *half* of the pending line, flush it, then raise
#:     :class:`~repro.faults.hooks.InjectedCrash` — the torn-tail artifact
#:     a process killed mid-append leaves behind; resume must repair it.
#: ``crash``
#:     SIGKILL the calling process on the spot (worker sites) — the
#:     crash-at-task-boundary the lease reclaim machinery covers.
#: ``hang``
#:     Sleep ``seconds`` at the hook — a wedged task; the scheduler
#:     watchdog must reap the worker and re-lease its tasks.
#: ``stall``
#:     Sleep ``seconds`` *before* the hook's normal action — a slow
#:     heartbeat or claim, exercising lease-expiry edges.
#: ``drop``
#:     Skip the hook's normal action (scheduler-side heartbeat loss).
KINDS = ("io_error", "torn_write", "crash", "hang", "stall", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a site, a kind, and when/how often it fires.

    Parameters
    ----------
    site : str
        Hook site name (one of :data:`SITES`).
    kind : str
        Fault kind (one of :data:`KINDS`).
    probability : float
        Chance this fault fires at a matching hook occurrence; decided by a
        deterministic hash of ``(plan seed, site, key, occurrence)``, so it
        is stable across replays.  Default 1.0 (always).
    match : str
        Substring the hook key must contain (``""`` matches every key).
        Worker-site keys look like ``"<task id>#<attempt>"``, so
        ``match="#0"`` targets only the first attempt of every task and
        ``match="<digest>:2"`` targets one specific task on every attempt.
    times : int or None
        Per-key firing budget: after this many fires for one key the fault
        goes quiet (``None`` = unlimited).  ``times=2`` on an ``io_error``
        models a disk that fails twice then recovers — exactly what the
        backoff-retry layer must ride out.  Default 1.
    seconds : float
        Sleep duration for ``hang`` / ``stall`` kinds.
    """

    site: str
    kind: str
    probability: float = 1.0
    match: str = ""
    times: Optional[int] = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r} (sites: {', '.join(SITES)})")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (kinds: {', '.join(KINDS)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times!r}")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
            "match": self.match,
            "times": self.times,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            site=payload["site"],
            kind=payload["kind"],
            probability=float(payload.get("probability", 1.0)),
            match=str(payload.get("match", "")),
            times=None if payload.get("times", 1) is None else int(payload.get("times", 1)),
            seconds=float(payload.get("seconds", 0.0)),
        )


class FaultPlan:
    """A seeded set of faults plus the per-key occurrence bookkeeping.

    The plan object is mutable only in its counters (how often each fault
    already fired per key); the fault set itself is frozen.  Counters are
    per-process — a forked campaign worker starts with the parent's counts
    at fork time — which is why budgeted (``times``) faults on worker sites
    should be keyed through ``match`` on the attempt-stamped key rather
    than rely on a cross-process budget.
    """

    def __init__(self, seed: int = 0, faults: Iterable[FaultSpec] = ()):
        self.seed = int(seed)
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        self._fired: Dict[Tuple[int, str], int] = {}
        self._decisions: Dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------ #
    # Deterministic firing decision
    # ------------------------------------------------------------------ #
    def _chance(self, spec_index: int, site: str, key: str, occurrence: int) -> float:
        material = f"{self.seed}|{spec_index}|{site}|{key}|{occurrence}".encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def select(self, site: str, key: str) -> Optional[FaultSpec]:
        """The fault that fires at this hook occurrence, or ``None``.

        At most one fault fires per occurrence (the first matching spec in
        plan order wins); every matching spec's occurrence counter advances
        regardless, so probabilities stay independent of which other specs
        exist.
        """
        chosen: Optional[FaultSpec] = None
        for index, spec in enumerate(self.faults):
            if spec.site != site or (spec.match and spec.match not in key):
                continue
            slot = (index, key)
            occurrence = self._decisions[slot] = self._decisions.get(slot, 0) + 1
            if chosen is not None:
                continue
            fired = self._fired.get(slot, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            if spec.probability < 1.0 and self._chance(index, site, key, occurrence) >= spec.probability:
                continue
            self._fired[slot] = fired + 1
            chosen = spec
        return chosen

    def fire_counts(self) -> Dict[str, int]:
        """Total fires per site (diagnostics for chaos tests and logs)."""
        totals: Dict[str, int] = {}
        for (index, _key), count in self._fired.items():
            site = self.faults[index].site
            totals[site] = totals.get(site, 0) + count
        return totals

    # ------------------------------------------------------------------ #
    # Serialization (environment-variable transport for CLI processes)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            faults=[FaultSpec.from_dict(entry) for entry in payload.get("faults", ())],
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, faults={len(self.faults)})"
