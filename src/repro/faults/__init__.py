"""Deterministic fault injection for the durable execution path.

``repro.faults`` exists so the failure modes this package claims to survive
— torn JSONL appends, I/O errors on the journal and the record store,
worker crashes at the task boundary, task hangs, heartbeat stalls — can be
*injected on demand*, reproducibly, instead of waiting for a flaky disk or
an OOM killer to exercise them.  The chaos suite
(``tests/test_faults_chaos.py``) runs a matrix of fault plans against live
campaigns and asserts the core invariants: the final campaign fingerprint
is bitwise identical to a fault-free twin, no record is lost, and no record
is folded twice.

Design:

* A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries, each
  naming a *hook site* (``"journal.append"``, ``"worker.task"``, ...), a
  fault ``kind`` (``io_error``, ``torn_write``, ``crash``, ``hang``,
  ``stall``, ``drop``), a firing ``probability``, a per-key budget and an
  optional key ``match``.  Firing decisions are a pure function of the plan
  seed, the site, the hook key and the occurrence count — never of wall
  clock or process scheduling — so a plan misbehaves the same way every
  time it is replayed.

* Hook sites are single calls to :func:`maybe_fire` placed inside
  :mod:`repro.campaigns.queue`, :mod:`repro.campaigns.worker`,
  :mod:`repro.campaigns.scheduler` and :mod:`repro.ensemble.results`.
  With no plan installed the hook is one global load and one ``is None``
  branch — measured as < 2% overhead on campaign task throughput
  (``benchmarks/results/BENCH_faults.json``).

* :func:`install` arms a plan process-wide; forked campaign workers
  inherit it.  ``REPRO_FAULT_PLAN`` (a JSON plan) arms whole CLI processes,
  which is how the CI ``chaos-smoke`` job injects faults into
  ``repro-lb campaign run``.

See ``docs/resilience.md`` for the failure-modes matrix these faults
exercise.
"""

from repro.faults.hooks import (
    FaultError,
    InjectedCrash,
    InjectedIOError,
    active_plan,
    clear,
    install,
    installed_from_env,
    maybe_fire,
)
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedIOError",
    "active_plan",
    "clear",
    "install",
    "installed_from_env",
    "maybe_fire",
]
