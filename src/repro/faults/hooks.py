"""Hook-site plumbing: the one function the execution path calls.

The contract with the hot path is strict: when no plan is installed,
:func:`maybe_fire` is one module-global load, one ``is None`` test and a
return — no allocation, no string formatting, no dict lookups.  Everything
else in this module only runs while a chaos experiment is active.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Optional

from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "ENV_PLAN",
    "FaultError",
    "InjectedCrash",
    "InjectedIOError",
    "active_plan",
    "clear",
    "install",
    "installed_from_env",
    "maybe_fire",
]

#: Environment variable holding a JSON fault plan for whole-process arming
#: (the CI chaos-smoke job sets it around ``repro-lb campaign run``).
ENV_PLAN = "REPRO_FAULT_PLAN"


class FaultError(RuntimeError):
    """Problems with the fault machinery itself (bad plan, bad site)."""


class InjectedIOError(OSError):
    """A deliberately injected, *transient-looking* I/O failure.

    Subclasses ``OSError`` so the seeded-backoff retry layer
    (:mod:`repro.utils.retry`) treats it exactly like a real disk hiccup.
    """


class InjectedCrash(RuntimeError):
    """A deliberately injected process death at a durability boundary.

    Raised *after* a torn half-line has been flushed to disk: everything up
    the stack must behave as if the process had been SIGKILLed right there.
    Nothing in the execution path catches it — chaos harnesses do, and then
    resume the campaign from its directory like an operator would.
    """


_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False


def install(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide (forked children inherit it); returns it."""
    global _ACTIVE, _ENV_CHECKED
    if not isinstance(plan, FaultPlan):
        raise FaultError(f"install() takes a FaultPlan, got {plan!r}")
    _ACTIVE = plan
    _ENV_CHECKED = True  # an explicit install outranks the environment
    return plan


def clear() -> None:
    """Disarm fault injection (hooks return to their zero-cost path)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = True


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any (resolving ``REPRO_FAULT_PLAN`` once)."""
    if not _ENV_CHECKED:
        _load_env()
    return _ACTIVE


def installed_from_env() -> Optional[FaultPlan]:
    """Force (re-)resolution of ``REPRO_FAULT_PLAN``; returns the plan.

    Worker processes call this once at start-up so a plan armed via the
    environment reaches them even under a ``spawn`` multiprocessing start
    method, where module globals are not inherited.
    """
    _load_env()
    return _ACTIVE


def _load_env() -> None:
    global _ACTIVE, _ENV_CHECKED
    _ENV_CHECKED = True
    raw = os.environ.get(ENV_PLAN)
    if not raw:
        return
    try:
        _ACTIVE = FaultPlan.from_json(raw)
    except (ValueError, KeyError, TypeError) as error:
        raise FaultError(f"unparsable {ENV_PLAN}: {error}") from None


def maybe_fire(site: str, key: str = "", handle=None, line: str = "") -> bool:
    """The hook the execution path calls; acts out any armed fault.

    Parameters
    ----------
    site : str
        Hook site name (see :data:`repro.faults.plan.SITES`).
    key : str
        Content-addressed context of this occurrence (a task id, a worker
        id, an attempt-stamped ``"<task>#<n>"``) — the handle ``match`` and
        the deterministic probability hash key off.
    handle, line :
        For append sites only: the open file handle and the exact line
        about to be written, so a ``torn_write`` fault can flush a genuine
        half-line before simulating death.

    Returns
    -------
    bool
        ``True`` when a ``drop`` fault fired (the caller must skip its
        normal action); ``False`` otherwise.  All other kinds act by
        raising or sleeping.
    """
    plan = _ACTIVE
    if plan is None:
        if _ENV_CHECKED:
            return False
        _load_env()
        plan = _ACTIVE
        if plan is None:
            return False
    spec = plan.select(site, key)
    if spec is None:
        return False
    return _act(spec, site, key, handle, line)


def _act(spec: FaultSpec, site: str, key: str, handle, line: str) -> bool:
    if spec.kind == "io_error":
        raise InjectedIOError(f"injected I/O error at {site} ({key})")
    if spec.kind == "torn_write":
        if handle is not None and line:
            # Flush a real half-line: the artifact a SIGKILL mid-append
            # leaves on disk, which repair_jsonl must truncate on resume.
            handle.write(line[: max(1, len(line) // 2)])
            handle.flush()
        raise InjectedCrash(f"injected torn write at {site} ({key})")
    if spec.kind == "crash":
        # Give multiprocessing queue feeder threads a beat to drain any
        # message the victim already posted (its claim, typically).  A real
        # SIGKILL races those threads too — the scheduler's single-lease
        # blame fallback covers that — but keeping the common case
        # deterministic is what makes chaos runs reproducible.
        time.sleep(0.05)
        os.kill(os.getpid(), signal.SIGKILL)
        raise InjectedCrash(f"injected crash at {site} ({key})")  # pragma: no cover
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return False
    if spec.kind == "stall":
        time.sleep(spec.seconds)
        return False
    if spec.kind == "drop":
        return True
    raise FaultError(f"unhandled fault kind {spec.kind!r}")  # pragma: no cover
