"""repro — randomized load balancing in finite regimes.

A reproduction of *Randomized Load Balancing in Finite Regimes*
(Godtschalk & Ciucu, ICDCS 2016): non-asymptotic stochastic lower and upper
bounds on the mean job delay of the SQ(d) ("power of d choices") policy,
obtained through threshold-restricted Markov chains solved with
matrix-geometric (QBD) methods, plus the simulation and asymptotic baselines
the paper compares against.

Quickstart
----------
>>> from repro import analyze_sqd
>>> result = analyze_sqd(num_servers=3, d=2, utilization=0.9, threshold=3)
>>> result.lower_delay <= result.upper_delay  # doctest: +SKIP
True

For estimates with error bars, replicate any simulation into an ensemble:

>>> from repro import run_ensemble
>>> ensemble = run_ensemble(
...     "fleet", {"num_servers": 1000, "utilization": 0.9},
...     replications=8, workers=4,
... )  # doctest: +SKIP
>>> print(ensemble.delay)  # doctest: +SKIP
2.60326 ± 0.0577 (95% CI, 8 replications)

See ``examples/`` for end-to-end scripts, ``docs/`` for the architecture
and CLI references, and ``benchmarks/`` for the harnesses regenerating the
paper's figures.
"""

from repro.core import (
    BoundKind,
    BoundModelSolution,
    DelayAnalysis,
    LowerBoundModel,
    SQDModel,
    SolutionMethod,
    UnstableBoundModelError,
    UpperBoundModel,
    analyze_sqd,
    asymptotic_delay,
    mm1_sojourn_time,
    power_of_d_improvement,
    relative_error_percent,
    solve_bound_model,
    solve_exact_truncated,
    solve_improved_lower_bound,
)
from repro.ensemble import (
    EnsembleConfig,
    EnsembleResult,
    GridConfig,
    GridResult,
    ReplicationStatistics,
    ResultStore,
    run_ensemble,
    run_grid,
)
from repro.fleet import (
    FleetResult,
    FleetSimulation,
    OccupancyState,
    Scenario,
    get_scenario,
    integrate_meanfield,
    meanfield_delay,
    meanfield_fixed_point,
    run_scenario,
    simulate_fleet,
)
from repro.policies import JoinShortestQueue, PowerOfD, UniformRandom
from repro.simulation import ClusterSimulation, simulate_sqd_ctmc
from repro.simulation.workloads import Workload, poisson_exponential_workload

__version__ = "1.2.0"

__all__ = [
    "SQDModel",
    "BoundKind",
    "BoundModelSolution",
    "DelayAnalysis",
    "LowerBoundModel",
    "UpperBoundModel",
    "SolutionMethod",
    "UnstableBoundModelError",
    "analyze_sqd",
    "asymptotic_delay",
    "mm1_sojourn_time",
    "power_of_d_improvement",
    "relative_error_percent",
    "solve_bound_model",
    "solve_exact_truncated",
    "solve_improved_lower_bound",
    "PowerOfD",
    "JoinShortestQueue",
    "UniformRandom",
    "ClusterSimulation",
    "simulate_sqd_ctmc",
    "Workload",
    "poisson_exponential_workload",
    "OccupancyState",
    "FleetSimulation",
    "FleetResult",
    "simulate_fleet",
    "run_scenario",
    "Scenario",
    "get_scenario",
    "meanfield_fixed_point",
    "meanfield_delay",
    "integrate_meanfield",
    "EnsembleConfig",
    "EnsembleResult",
    "run_ensemble",
    "GridConfig",
    "GridResult",
    "run_grid",
    "ReplicationStatistics",
    "ResultStore",
    "__version__",
]
