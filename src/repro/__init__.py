"""repro — randomized load balancing in finite regimes.

A reproduction of *Randomized Load Balancing in Finite Regimes*
(Godtschalk & Ciucu, ICDCS 2016): non-asymptotic stochastic lower and upper
bounds on the mean job delay of the SQ(d) ("power of d choices") policy,
obtained through threshold-restricted Markov chains solved with
matrix-geometric (QBD) methods, plus the simulation and asymptotic baselines
the paper compares against.

Quickstart
----------
One declarative spec, many engines: describe the experiment once, then run
it on any capable backend — the QBD bounds, the exact chain, either
simulator, the occupancy fleet engine or the mean-field limit.

>>> from repro import ExperimentSpec, run
>>> spec = ExperimentSpec.create(num_servers=50, d=2, utilization=0.85)
>>> estimate = run(spec, replications=8, workers=4)      # doctest: +SKIP
>>> print(estimate)                                      # doctest: +SKIP
2.0627 ± 0.011 (95% CI, 8 replications, fleet)
>>> bracket = run(spec, backend="qbd_bounds")            # doctest: +SKIP
>>> bracket.extras["upper_delay"]                        # doctest: +SKIP
2.8941...

``backend="auto"`` (the default) picks the cheapest capable engine;
``repro-lb backends`` lists the registry.  The pre-spec entry points
(:func:`analyze_sqd`, :func:`simulate_fleet`, :func:`run_ensemble`, ...)
remain available underneath.

See ``examples/`` for end-to-end scripts, ``docs/`` for the architecture,
API and CLI references, and ``benchmarks/`` for the harnesses regenerating
the paper's figures.
"""

from repro.api import (
    Backend,
    Capabilities,
    DistributionSpec,
    ExperimentSpec,
    HorizonSpec,
    RunResult,
    ScenarioSpec,
    SpecError,
    SystemSpec,
    WorkloadSpec,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    run,
    select_backend,
)

from repro.core import (
    BoundKind,
    BoundModelSolution,
    DelayAnalysis,
    LowerBoundModel,
    SQDModel,
    SolutionMethod,
    UnstableBoundModelError,
    UpperBoundModel,
    analyze_sqd,
    asymptotic_delay,
    mm1_sojourn_time,
    power_of_d_improvement,
    relative_error_percent,
    solve_bound_model,
    solve_exact_truncated,
    solve_improved_lower_bound,
)
from repro.campaigns import (
    CampaignConfig,
    CampaignResult,
    CampaignStatus,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.faults import (
    FaultPlan,
    FaultSpec,
    clear as clear_faults,
    install as install_faults,
)
from repro.ensemble import (
    EnsembleConfig,
    EnsembleResult,
    GridConfig,
    GridResult,
    ReplicationStatistics,
    ResultStore,
    run_ensemble,
    run_grid,
)
from repro.fleet import (
    FleetResult,
    FleetSimulation,
    OccupancyState,
    Scenario,
    get_scenario,
    integrate_meanfield,
    meanfield_delay,
    meanfield_fixed_point,
    run_scenario,
    simulate_fleet,
)
from repro.policies import JoinShortestQueue, PowerOfD, UniformRandom
from repro.simulation import ClusterSimulation, simulate_sqd_ctmc
from repro.simulation.workloads import Workload, poisson_exponential_workload
from repro.traces import (
    ArrivalTrace,
    BurstinessSummary,
    TraceArrivals,
    TraceFit,
    fit_arrival,
    summarize_trace,
    synthesize_trace,
)

__version__ = "1.5.0"

__all__ = [
    "Backend",
    "Capabilities",
    "DistributionSpec",
    "ExperimentSpec",
    "HorizonSpec",
    "RunResult",
    "ScenarioSpec",
    "SpecError",
    "SystemSpec",
    "WorkloadSpec",
    "available_backends",
    "backend_capabilities",
    "get_backend",
    "register_backend",
    "run",
    "select_backend",
    "SQDModel",
    "BoundKind",
    "BoundModelSolution",
    "DelayAnalysis",
    "LowerBoundModel",
    "UpperBoundModel",
    "SolutionMethod",
    "UnstableBoundModelError",
    "analyze_sqd",
    "asymptotic_delay",
    "mm1_sojourn_time",
    "power_of_d_improvement",
    "relative_error_percent",
    "solve_bound_model",
    "solve_exact_truncated",
    "solve_improved_lower_bound",
    "PowerOfD",
    "JoinShortestQueue",
    "UniformRandom",
    "ClusterSimulation",
    "simulate_sqd_ctmc",
    "Workload",
    "poisson_exponential_workload",
    "OccupancyState",
    "FleetSimulation",
    "FleetResult",
    "simulate_fleet",
    "run_scenario",
    "Scenario",
    "get_scenario",
    "meanfield_fixed_point",
    "meanfield_delay",
    "integrate_meanfield",
    "EnsembleConfig",
    "EnsembleResult",
    "run_ensemble",
    "GridConfig",
    "GridResult",
    "run_grid",
    "ReplicationStatistics",
    "ResultStore",
    "CampaignConfig",
    "CampaignResult",
    "CampaignStatus",
    "campaign_status",
    "resume_campaign",
    "FaultPlan",
    "FaultSpec",
    "clear_faults",
    "install_faults",
    "run_campaign",
    "ArrivalTrace",
    "BurstinessSummary",
    "TraceArrivals",
    "TraceFit",
    "fit_arrival",
    "summarize_trace",
    "synthesize_trace",
    "__version__",
]
