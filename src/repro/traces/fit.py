"""Fit analyzable arrival models to a measured trace.

The bridge from measurement to analysis: a trace only *replays* (through the
cluster simulator), but a fitted model reaches every analytical tool in the
repository — Theorem 2's sigma root, the MAP/PH/1 building block, sweeps and
ensembles.  Three families are supported, all matched on the burstiness
statistics of :mod:`repro.traces.stats`:

* **MMPP2** — the two-state Markov-modulated Poisson process
  (:meth:`~repro.markov.arrival_processes.MarkovianArrivalProcess.mmpp2`),
  matched on rate, interarrival SCV, lag-1 autocorrelation and (when the
  trace exposes one) the index of dispersion for counts.  The only family
  that captures *correlated* burstiness.
* **Hyperexponential** — balanced two-phase renewal fit on rate + SCV
  (``SCV >= 1``): bursty but uncorrelated.
* **Erlang** — ``stages = round(1 / SCV)`` for smoother-than-Poisson
  traces (``SCV < 1``).

Every fit returns a :class:`TraceFit` carrying both the fitted process (at
the trace's rate) and the spec-layer :class:`~repro.api.spec.DistributionSpec`
(shape only, normalized to unit rate), plus target-vs-achieved diagnostics —
so ``repro-lb trace fit`` can print exactly how faithful the model is before
anyone trusts a delay number computed from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np
from scipy import optimize

from repro.api.spec import DistributionSpec
from repro.markov.arrival_processes import (
    ArrivalProcess,
    MarkovianArrivalProcess,
    PoissonArrivals,
    RenewalArrivals,
)
from repro.markov.service_distributions import ErlangService, HyperexponentialService
from repro.traces.stats import BurstinessSummary, summarize_trace
from repro.traces.trace import ArrivalTrace, TraceError
from repro.utils.tables import format_table

__all__ = [
    "TraceFitError",
    "TraceFit",
    "FAMILIES",
    "fit_poisson",
    "fit_erlang",
    "fit_hyperexponential",
    "fit_mmpp2",
    "fit_arrival",
]

#: Supported fit families, in the order ``family="auto"`` considers them.
FAMILIES = ("mmpp2", "hyperexponential", "erlang", "poisson")

#: Maximum Erlang stage count the fit will propose.
MAX_ERLANG_STAGES = 50

#: Relative mismatch beyond which an MMPP2 fit is reported as not converged.
MMPP2_TOLERANCE = 0.05


class TraceFitError(TraceError):
    """Raised when a family cannot represent (or be matched to) the trace."""


@dataclass(frozen=True)
class TraceFit:
    """One fitted arrival model plus its target-vs-achieved diagnostics.

    Attributes
    ----------
    family : str
        One of :data:`FAMILIES`.
    arrival : DistributionSpec
        The spec-layer shape (normalized to unit aggregate rate for
        ``mmpp2``); drop it into a :class:`~repro.api.spec.WorkloadSpec`
        and the engines rebuild the process at any load.
    process : ArrivalProcess
        The fitted process at the *trace's* rate — feed it to
        :func:`~repro.markov.arrival_processes.solve_sigma`,
        :func:`~repro.markov.map_ph_queue.solve_map_ph_1` or a simulator.
    target, achieved : mapping
        The trace statistics the fit aimed for and the fitted model's
        analytic values of the same statistics.
    matched : tuple of str
        The statistics this family actually matches (a renewal fit matches
        rate and SCV but structurally cannot match a lag correlation);
        :attr:`max_relative_error` only looks at these, so an unmatched
        statistic informs without condemning the fit.
    converged : bool
        Whether every matched statistic landed within tolerance.
    """

    family: str
    arrival: DistributionSpec
    process: ArrivalProcess
    target: Mapping[str, float]
    achieved: Mapping[str, float]
    matched: Tuple[str, ...]
    converged: bool

    @property
    def max_relative_error(self) -> float:
        """Largest relative target/achieved mismatch across *matched* statistics."""
        worst = 0.0
        for key in self.matched:
            if key not in self.target or key not in self.achieved:
                continue
            scale = max(abs(self.target[key]), 1e-9)
            worst = max(worst, abs(self.achieved[key] - self.target[key]) / scale)
        return worst

    def as_table(self) -> str:
        rows = []
        for key in sorted(set(self.target) | set(self.achieved)):
            label = f"{key} *" if key in self.matched else key
            rows.append(
                [label, self.target.get(key, "-"), self.achieved.get(key, "-")]
            )
        status = "converged" if self.converged else "NOT converged"
        return format_table(
            ["statistic", "trace", "fitted model"],
            rows,
            title=f"{self.family} fit ({status}, worst matched mismatch "
            f"{self.max_relative_error:.2%}; * = matched)",
        )

    def experiment_spec(
        self,
        num_servers: int,
        d: int = 2,
        policy: str = "sqd",
        service_rate: float = 1.0,
        service: str = "exponential",
        service_params: Optional[Mapping[str, Any]] = None,
        num_jobs: Optional[int] = None,
        seed: int = 12345,
        **options: Any,
    ):
        """A ready-to-run :class:`~repro.api.spec.ExperimentSpec` for this fit.

        The utilization is implied by the trace: ``rho = rate / (N mu)``.
        Raises :class:`TraceFitError` when the trace's rate overloads the
        requested pool (``rho >= 1``) — rescale the trace or grow ``N``.
        """
        from repro.api.spec import ExperimentSpec

        utilization = self.target["rate"] / (num_servers * service_rate)
        if not 0.0 < utilization < 1.0:
            raise TraceFitError(
                f"trace rate {self.target['rate']:.6g} implies utilization "
                f"{utilization:.4g} on N={num_servers} servers at mu={service_rate:g}; "
                "rho must lie in (0, 1) — rescale the trace or resize the pool"
            )
        return ExperimentSpec.create(
            num_servers=num_servers,
            d=d,
            utilization=utilization,
            service_rate=service_rate,
            arrival=self.arrival.name,
            arrival_params=dict(self.arrival.params),
            service=service,
            service_params=dict(service_params or {}),
            policy=policy,
            num_jobs=num_jobs,
            seed=seed,
            **options,
        )


def _summary_of(trace: Union[ArrivalTrace, BurstinessSummary]) -> BurstinessSummary:
    if isinstance(trace, BurstinessSummary):
        return trace
    if isinstance(trace, ArrivalTrace):
        return summarize_trace(trace)
    raise TraceFitError(
        f"fit input must be an ArrivalTrace or BurstinessSummary, got {trace!r}"
    )


# --------------------------------------------------------------------- #
# Renewal families (uncorrelated): moment matching in closed form
# --------------------------------------------------------------------- #
def fit_poisson(trace: Union[ArrivalTrace, BurstinessSummary]) -> TraceFit:
    """Rate-only fit: the memoryless baseline every other family refines."""
    summary = _summary_of(trace)
    return TraceFit(
        family="poisson",
        arrival=DistributionSpec("poisson"),
        process=PoissonArrivals(summary.rate),
        target={"rate": summary.rate, "scv": summary.scv, "lag1": summary.lag1},
        achieved={"rate": summary.rate, "scv": 1.0, "lag1": 0.0},
        matched=("rate",),
        converged=abs(summary.scv - 1.0) <= MMPP2_TOLERANCE,
    )


def fit_erlang(trace: Union[ArrivalTrace, BurstinessSummary]) -> TraceFit:
    """Erlang-``k`` renewal fit for smoother-than-Poisson traces (SCV <= 1).

    ``k = round(1 / SCV)`` (an Erlang-``k`` has SCV exactly ``1/k``), capped
    at :data:`MAX_ERLANG_STAGES`.
    """
    summary = _summary_of(trace)
    if summary.scv > 1.0:
        raise TraceFitError(
            f"Erlang can only represent SCV <= 1, trace has SCV = {summary.scv:.4g}; "
            "fit 'hyperexponential' or 'mmpp2' instead"
        )
    stages = int(min(MAX_ERLANG_STAGES, max(1, round(1.0 / max(summary.scv, 1e-9)))))
    process = RenewalArrivals(ErlangService(stages=stages, mean=1.0 / summary.rate))
    return TraceFit(
        family="erlang",
        arrival=DistributionSpec("erlang", {"stages": stages}),
        process=process,
        target={"rate": summary.rate, "scv": summary.scv, "lag1": summary.lag1},
        achieved={"rate": summary.rate, "scv": 1.0 / stages, "lag1": 0.0},
        matched=("rate", "scv"),
        converged=abs(1.0 / stages - summary.scv) <= MMPP2_TOLERANCE * max(summary.scv, 1e-9),
    )


def fit_hyperexponential(trace: Union[ArrivalTrace, BurstinessSummary]) -> TraceFit:
    """Balanced two-phase hyperexponential renewal fit (rate + SCV, SCV >= 1).

    Captures over-dispersion but *not* correlation: the fitted stream is
    renewal, so its lag-1 autocorrelation is zero however bursty the trace.
    """
    summary = _summary_of(trace)
    if summary.scv < 1.0:
        raise TraceFitError(
            f"a hyperexponential needs SCV >= 1, trace has SCV = {summary.scv:.4g}; "
            "fit 'erlang' instead"
        )
    scv = float(summary.scv)
    process = RenewalArrivals(
        HyperexponentialService.balanced_two_phase(mean=1.0 / summary.rate, scv=scv)
    )
    return TraceFit(
        family="hyperexponential",
        arrival=DistributionSpec("hyperexponential", {"scv": scv}),
        process=process,
        target={"rate": summary.rate, "scv": summary.scv, "lag1": summary.lag1},
        achieved={"rate": summary.rate, "scv": scv, "lag1": 0.0},
        matched=("rate", "scv"),
        converged=summary.lag1 <= MMPP2_TOLERANCE,
    )


# --------------------------------------------------------------------- #
# MMPP2: correlated burstiness
# --------------------------------------------------------------------- #
def _mmpp2_from_shape(r_high: float, r_low: float, theta: float) -> MarkovianArrivalProcess:
    """Unit-rate MMPP2 from the shape parameters the optimizer walks.

    ``r_high > 1 > r_low >= 0`` are the modulated rates and ``theta`` the
    total switching rate; the two switching rates are split so the
    stationary aggregate rate is exactly 1:
    ``s1 / s2 = (r_high - 1) / (1 - r_low)``.
    """
    spread = r_high - r_low
    switch_to_low = theta * (r_high - 1.0) / spread
    switch_to_high = theta * (1.0 - r_low) / spread
    return MarkovianArrivalProcess.mmpp2(
        rate_high=r_high,
        rate_low=r_low,
        switch_to_low=switch_to_low,
        switch_to_high=switch_to_high,
    )


def _mmpp2_statistics(process: MarkovianArrivalProcess) -> Dict[str, float]:
    return {
        "scv": process.interarrival_scv,
        "lag1": process.lag_autocorrelation(1),
        "idc": process.asymptotic_idc(),
    }


def fit_mmpp2(
    trace: Union[ArrivalTrace, BurstinessSummary],
    targets: Optional[Mapping[str, float]] = None,
) -> TraceFit:
    """Fit a two-state MMPP on rate, SCV, lag-1 autocorrelation and IDC.

    Parameters
    ----------
    trace : ArrivalTrace or BurstinessSummary
        The measurement (or its precomputed summary).
    targets : mapping, optional
        Override the matched statistics — keys ``scv``, ``lag1`` and
        optionally ``idc`` (the trace's rate is always matched exactly, by
        normalization).  Useful for fitting to analytic values in tests.

    Notes
    -----
    The optimizer walks a three-parameter shape — modulated rates
    ``r_high > 1 > r_low`` and total switching rate ``theta``, with the
    switching split fixed so the aggregate rate is exactly 1 — and matches
    the model's *analytic* statistics (closed MAP formulas, no simulation)
    to the trace's empirical ones with multi-start least squares.  The
    result is reported not-converged (rather than raising) when the worst
    relative mismatch exceeds 5% — MMPP2 has only three shape degrees of
    freedom, so a trace whose SCV, lag-1 and IDC are mutually inconsistent
    with *any* two-state modulation gets the closest member of the family,
    flagged.

    Raises
    ------
    TraceFitError
        When the trace is not bursty in the MMPP2 sense (``SCV <= 1`` or
        non-positive lag-1 autocorrelation): the family degenerates to
        Poisson there, and the renewal fits are the honest choice.
    """
    summary = _summary_of(trace)
    wanted: Dict[str, float] = {"scv": summary.scv, "lag1": summary.lag1}
    if summary.idc:
        wanted["idc"] = summary.max_idc
    if targets:
        unknown = set(targets) - {"scv", "lag1", "idc"}
        if unknown:
            raise TraceFitError(f"unknown MMPP2 fit targets: {sorted(unknown)}")
        wanted.update({key: float(value) for key, value in targets.items()})

    scv, lag1 = wanted["scv"], wanted["lag1"]
    if scv <= 1.0:
        raise TraceFitError(
            f"MMPP2 needs an over-dispersed trace (SCV > 1), got SCV = {scv:.4g}; "
            "fit 'erlang' (or 'poisson') instead"
        )
    if lag1 <= 0.0:
        raise TraceFitError(
            f"MMPP2 needs positively correlated interarrivals, got lag-1 = {lag1:.4g}; "
            "fit 'hyperexponential' instead"
        )
    # An MMPP2's IDC(inf) always exceeds its interarrival SCV (positive
    # correlations only); an inconsistent or missing target drops the IDC
    # residual rather than dragging the fit to an unreachable point.
    idc = wanted.get("idc")
    use_idc = idc is not None and idc > scv * 1.001

    def residuals(x: np.ndarray) -> np.ndarray:
        r_high = 1.0 + math.exp(x[0])
        r_low = 1.0 / (1.0 + math.exp(-x[1]))  # in (0, 1)
        theta = math.exp(x[2])
        try:
            model = _mmpp2_from_shape(r_high, r_low, theta)
            stats = _mmpp2_statistics(model)
        except Exception:
            return np.array([1e3, 1e3, 1e3])
        out = [
            math.log(max(stats["scv"], 1e-12) / scv),
            (stats["lag1"] - lag1) / max(lag1, 0.02),
        ]
        if use_idc:
            out.append(math.log(max(stats["idc"], 1e-12) / idc))
        else:
            out.append(0.0)
        return np.array(out)

    best = None
    spread_guess = math.sqrt(max(scv - 1.0, 0.1))
    for theta0 in (0.001, 0.01, 0.1, 1.0):
        x0 = np.array([math.log(max(spread_guess, 0.2)), 0.0, math.log(theta0)])
        try:
            solution = optimize.least_squares(
                residuals, x0, bounds=([-6.0, -12.0, -14.0], [8.0, 12.0, 6.0])
            )
        except Exception:
            continue
        if best is None or solution.cost < best.cost:
            best = solution
    if best is None:
        raise TraceFitError("MMPP2 moment matching failed to produce any candidate")

    r_high = 1.0 + math.exp(best.x[0])
    r_low = 1.0 / (1.0 + math.exp(-best.x[1]))
    theta = math.exp(best.x[2])
    unit = _mmpp2_from_shape(r_high, r_low, theta)
    stats = _mmpp2_statistics(unit)
    spread = r_high - r_low
    params = {
        "rate_high": r_high,
        "rate_low": r_low,
        "switch_to_low": theta * (r_high - 1.0) / spread,
        "switch_to_high": theta * (1.0 - r_low) / spread,
    }
    achieved = {"rate": summary.rate, "scv": stats["scv"], "lag1": stats["lag1"], "idc": stats["idc"]}
    target = {"rate": summary.rate, **wanted}
    matched = {"rate", "scv", "lag1"} | ({"idc"} if use_idc else set())
    worst = max(
        abs(achieved[key] - target[key]) / max(abs(target[key]), 1e-9) for key in matched
    )
    return TraceFit(
        family="mmpp2",
        arrival=DistributionSpec("mmpp2", params),
        process=unit.rescaled(summary.rate),
        target=target,
        achieved=achieved,
        matched=tuple(sorted(matched)),
        converged=worst <= MMPP2_TOLERANCE,
    )


def fit_arrival(
    trace: Union[ArrivalTrace, BurstinessSummary],
    family: str = "auto",
    targets: Optional[Mapping[str, float]] = None,
) -> TraceFit:
    """Fit one arrival family to the trace, or pick one automatically.

    ``family="auto"`` chooses by the burstiness summary: correlated and
    over-dispersed traces get an MMPP2, uncorrelated over-dispersed ones a
    hyperexponential, under-dispersed ones an Erlang, and anything within
    5% of SCV 1 stays Poisson.  If the MMPP2 optimizer fails on an edge
    case, auto falls back to the hyperexponential fit.
    """
    summary = _summary_of(trace)
    if family == "auto":
        if summary.is_bursty:
            try:
                return fit_mmpp2(summary, targets=targets)
            except TraceFitError:
                return fit_hyperexponential(summary)
        if summary.scv > 1.0 + MMPP2_TOLERANCE:
            return fit_hyperexponential(summary)
        if summary.scv < 1.0 - MMPP2_TOLERANCE:
            return fit_erlang(summary)
        return fit_poisson(summary)
    if family == "mmpp2":
        return fit_mmpp2(summary, targets=targets)
    if family == "hyperexponential":
        return fit_hyperexponential(summary)
    if family == "erlang":
        return fit_erlang(summary)
    if family == "poisson":
        return fit_poisson(summary)
    raise TraceFitError(f"unknown fit family {family!r} (supported: auto, {', '.join(FAMILIES)})")
