"""Burstiness statistics of an arrival trace.

Everything a workload model is fitted against, estimated directly from the
timestamps: the empirical rate, the squared coefficient of variation (SCV)
of the interarrival times, their lag-``k`` autocorrelations, and the index
of dispersion for counts (IDC) over a ladder of window sizes.  A Poisson
stream has SCV = 1, zero autocorrelation and IDC = 1 at every window;
burstiness pushes all three up — exactly the statistics the MMPP2 fit in
:mod:`repro.traces.fit` matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.traces.trace import ArrivalTrace, TraceError
from repro.utils.tables import format_table

__all__ = [
    "interarrival_scv",
    "lag_autocorrelation",
    "index_of_dispersion",
    "default_idc_windows",
    "BurstinessSummary",
    "summarize_trace",
]

#: Default autocorrelation lags reported by :func:`summarize_trace`.
DEFAULT_LAGS: Tuple[int, ...] = (1, 2, 5, 10)

#: Default IDC windows, in multiples of the mean interarrival time.
DEFAULT_IDC_MULTIPLES: Tuple[float, ...] = (10.0, 50.0, 250.0)


def _interarrivals(trace: ArrivalTrace, minimum: int = 3) -> np.ndarray:
    intervals = trace.interarrival_times()
    if intervals.size < minimum:
        raise TraceError(
            f"statistic needs at least {minimum + 1} arrivals, trace has {trace.num_arrivals}"
        )
    return intervals


def interarrival_scv(trace: ArrivalTrace) -> float:
    """Squared coefficient of variation ``Var[T] / E[T]^2`` of the interarrivals."""
    intervals = _interarrivals(trace)
    mean = float(intervals.mean())
    if mean <= 0.0:
        raise TraceError("interarrival SCV needs a positive mean interarrival time")
    return float(intervals.var() / mean ** 2)


def lag_autocorrelation(trace: ArrivalTrace, lag: int) -> float:
    """Lag-``k`` autocorrelation of the interarrival sequence.

    The standard biased estimator ``sum((x_i - m)(x_{i+k} - m)) /
    sum((x_i - m)^2)``; zero for a renewal stream, positive for traffic
    whose long and short gaps cluster (bursts).
    """
    if lag < 1:
        raise TraceError(f"lag must be >= 1, got {lag!r}")
    intervals = _interarrivals(trace, minimum=lag + 2)
    centered = intervals - intervals.mean()
    denominator = float(np.dot(centered, centered))
    if denominator <= 0.0:
        return 0.0
    return float(np.dot(centered[:-lag], centered[lag:]) / denominator)


def index_of_dispersion(trace: ArrivalTrace, window: float) -> float:
    """Index of dispersion for counts over windows of length ``window``.

    The trace's span is tiled into consecutive windows of the given length
    (a trailing partial window is dropped) and the ratio
    ``Var[N] / E[N]`` of the per-window arrival counts is returned.  At
    least 2 full windows must fit.
    """
    if window <= 0.0:
        raise TraceError(f"IDC window must be > 0, got {window!r}")
    if trace.num_arrivals < 2 or trace.duration <= 0.0:
        raise TraceError("IDC needs at least two arrivals spanning positive time")
    times = trace.arrival_times
    start, stop = float(times[0]), float(times[-1])
    num_windows = int((stop - start) / window)
    if num_windows < 2:
        raise TraceError(
            f"IDC window {window:g} leaves {num_windows} full window(s) in a trace "
            f"spanning {stop - start:g}; use a smaller window"
        )
    edges = start + window * np.arange(num_windows + 1)
    counts = np.diff(np.searchsorted(times, edges, side="left"))
    mean = float(counts.mean())
    if mean <= 0.0:
        return 0.0
    return float(counts.var() / mean)


def default_idc_windows(trace: ArrivalTrace) -> Tuple[float, ...]:
    """A ladder of IDC windows that fits this trace.

    Multiples of the mean interarrival time (:data:`DEFAULT_IDC_MULTIPLES`),
    keeping only windows that tile the span at least 4 times.
    """
    mean_gap = 1.0 / trace.rate
    span = trace.duration
    return tuple(
        mean_gap * multiple
        for multiple in DEFAULT_IDC_MULTIPLES
        if span / (mean_gap * multiple) >= 4.0
    )


@dataclass(frozen=True)
class BurstinessSummary:
    """All fitted-against statistics of one trace, in one record.

    Attributes
    ----------
    num_arrivals, duration, rate, mean_interarrival : basic shape
        Count, span, empirical rate and its reciprocal.
    scv : float
        Squared coefficient of variation of the interarrival times.
    autocorrelations : tuple of (lag, value)
        Lag-``k`` interarrival autocorrelations.
    idc : tuple of (window, value)
        Index of dispersion for counts at each window length.
    """

    num_arrivals: int
    duration: float
    rate: float
    mean_interarrival: float
    scv: float
    autocorrelations: Tuple[Tuple[int, float], ...]
    idc: Tuple[Tuple[float, float], ...]

    @property
    def lag1(self) -> float:
        """The lag-1 autocorrelation (the headline correlation statistic)."""
        for lag, value in self.autocorrelations:
            if lag == 1:
                return value
        raise TraceError("summary was computed without lag 1")

    @property
    def max_idc(self) -> float:
        """The IDC at the largest window — the best finite-window proxy for IDC(inf)."""
        if not self.idc:
            raise TraceError("summary was computed without IDC windows")
        return self.idc[-1][1]

    @property
    def is_bursty(self) -> bool:
        """Heuristic: noticeably over-dispersed and positively correlated."""
        return self.scv > 1.05 and self.lag1 > 0.01

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_arrivals": self.num_arrivals,
            "duration": self.duration,
            "rate": self.rate,
            "mean_interarrival": self.mean_interarrival,
            "scv": self.scv,
            "autocorrelations": {str(lag): value for lag, value in self.autocorrelations},
            "idc": {f"{window:g}": value for window, value in self.idc},
        }

    def as_table(self, title: str = "trace burstiness summary") -> str:
        rows = [
            ["arrivals", self.num_arrivals],
            ["duration", self.duration],
            ["rate", self.rate],
            ["mean interarrival", self.mean_interarrival],
            ["interarrival SCV", self.scv],
        ]
        for lag, value in self.autocorrelations:
            rows.append([f"autocorrelation lag {lag}", value])
        for window, value in self.idc:
            rows.append([f"IDC window {window:g}", value])
        return format_table(["statistic", "value"], rows, title=title)


def summarize_trace(
    trace: ArrivalTrace,
    lags: Sequence[int] = DEFAULT_LAGS,
    idc_windows: Sequence[float] = None,
) -> BurstinessSummary:
    """Compute the full burstiness summary of one trace.

    Parameters
    ----------
    trace : ArrivalTrace
        At least a dozen arrivals; statistics degrade gracefully but the
        fit layer wants thousands.
    lags : sequence of int
        Autocorrelation lags (lags that do not fit the trace are skipped).
    idc_windows : sequence of float, optional
        IDC window lengths; defaults to :func:`default_idc_windows`
        (windows that do not tile the span at least twice are skipped).
    """
    intervals = _interarrivals(trace)
    if idc_windows is None:
        idc_windows = default_idc_windows(trace)
    autocorrelations = tuple(
        (int(lag), lag_autocorrelation(trace, int(lag)))
        for lag in lags
        if intervals.size >= int(lag) + 2
    )
    idc = []
    for window in sorted(float(w) for w in idc_windows):
        if trace.duration / window >= 2.0:
            idc.append((window, index_of_dispersion(trace, window)))
    return BurstinessSummary(
        num_arrivals=trace.num_arrivals,
        duration=trace.duration,
        rate=trace.rate,
        mean_interarrival=float(intervals.mean()),
        scv=interarrival_scv(trace),
        autocorrelations=autocorrelations,
        idc=tuple(idc),
    )
