"""Trace replay and synthesis: traces as first-class arrival processes.

:class:`TraceArrivals` adapts an :class:`~repro.traces.trace.ArrivalTrace`
to the :class:`~repro.markov.arrival_processes.ArrivalProcess` interface, so
a measured workload drives the job-level cluster simulator exactly like any
stochastic model — except deterministically: ``sample_interarrival_times``
ignores the RNG and pages through the recorded gaps in order (cycling at the
end by default).  :func:`synthesize_trace` goes the other way, exporting a
seeded sample path of *any* arrival process as a trace — which is how the
fit layer is validated end-to-end (synthesize from a known model, fit, and
compare the replayed trace against the fitted model through the same
simulator).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.markov.arrival_processes import ArrivalProcess
from repro.traces.trace import ArrivalTrace, TraceError
from repro.utils.seeding import spawn_rngs

__all__ = ["TraceArrivals", "synthesize_trace"]


class TraceArrivals(ArrivalProcess):
    """Deterministic replay of a recorded trace through the simulators.

    Parameters
    ----------
    trace : ArrivalTrace
        At least two arrivals spanning positive time.
    rate : float, optional
        Replay the trace time-rescaled to this aggregate rate (burstiness
        statistics are scale-invariant, so only the clock changes).  The
        default replays at the trace's empirical rate.
    loop : bool
        Cycle back to the first interarrival when the trace is exhausted
        (default).  With ``loop=False`` a draw past the end raises
        :class:`~repro.traces.trace.TraceError` — use it when accidentally
        wrapping a short trace must be an error rather than a repeat.

    Notes
    -----
    Replay is deterministic: the RNG argument of
    :meth:`sample_interarrival_times` is ignored, every replication of a
    replayed workload sees the identical arrival sequence, and
    :meth:`reset` rewinds to the beginning.
    """

    def __init__(self, trace: ArrivalTrace, rate: Optional[float] = None, loop: bool = True):
        if trace.num_arrivals < 2:
            raise TraceError("trace replay needs at least two arrivals")
        intervals = trace.interarrival_times()
        total = float(intervals.sum())
        if total <= 0.0:
            raise TraceError("trace replay needs arrivals spanning positive time")
        empirical_rate = intervals.size / total
        if rate is not None:
            if rate <= 0.0:
                raise TraceError(f"replay rate must be > 0, got {rate!r}")
            intervals = intervals * (empirical_rate / rate)
        self._trace = trace
        self._intervals = intervals
        self._rate = empirical_rate if rate is None else float(rate)
        self._loop = bool(loop)
        self._position = 0

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def trace(self) -> ArrivalTrace:
        return self._trace

    @property
    def loop(self) -> bool:
        return self._loop

    @property
    def position(self) -> int:
        """Index of the next interarrival to be replayed (total draws so far)."""
        return self._position

    def is_renewal(self) -> bool:
        """A replayed trace is a fixed sample path, not an i.i.d. sequence."""
        return False

    def reset(self) -> None:
        """Rewind the replay to the first interarrival."""
        self._position = 0

    def sample_interarrival_times(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """The next ``size`` recorded interarrivals (the RNG is ignored)."""
        if size < 0:
            raise TraceError(f"size must be >= 0, got {size!r}")
        n = self._intervals.size
        start = self._position
        if not self._loop and start + size > n:
            raise TraceError(
                f"trace exhausted: {size} interarrivals requested at position {start} "
                f"of {n} (construct TraceArrivals(loop=True) to cycle)"
            )
        indices = (start + np.arange(size)) % n
        self._position = start + size
        return self._intervals[indices].copy()

    def __repr__(self) -> str:
        return (
            f"TraceArrivals({self._trace.num_arrivals} arrivals, rate={self._rate:.4g}, "
            f"loop={self._loop})"
        )


def synthesize_trace(
    arrival_process: ArrivalProcess,
    num_arrivals: int,
    seed: Optional[int] = 12345,
    start_time: float = 0.0,
    service_distribution=None,
    meta: Optional[Mapping[str, str]] = None,
) -> ArrivalTrace:
    """Export a seeded sample path of any arrival process as a trace.

    Parameters
    ----------
    arrival_process : ArrivalProcess
        The generator — Poisson, renewal, MAP, or even another
        :class:`TraceArrivals` (which re-records the replay).
    num_arrivals : int
        Number of arrivals to record.
    seed : int or None
        Seed for the arrival (and optional job-size) stream; the trace is a
        deterministic function of ``(arrival_process, num_arrivals, seed)``.
    start_time : float
        Timestamp of... the origin: the first arrival lands one interarrival
        after it.
    service_distribution : ServiceDistribution, optional
        When given, per-job sizes are sampled from it (independent stream).
    meta : mapping, optional
        Extra provenance entries; the generator and seed are always recorded.

    Returns
    -------
    ArrivalTrace
        With provenance ``source=synthesized:<process repr>`` and the seed.
    """
    if num_arrivals < 1:
        raise TraceError(f"num_arrivals must be >= 1, got {num_arrivals!r}")
    if start_time < 0.0:
        raise TraceError(f"start_time must be >= 0, got {start_time!r}")
    arrival_rng, size_rng = spawn_rngs(seed, 2)
    intervals = arrival_process.sample_interarrival_times(arrival_rng, num_arrivals)
    times = start_time + np.cumsum(intervals)
    sizes = None
    if service_distribution is not None:
        sizes = service_distribution.sample(size_rng, num_arrivals)
    provenance = {
        "source": f"synthesized:{arrival_process!r}",
        "seed": str(seed),
    }
    if service_distribution is not None:
        provenance["service"] = repr(service_distribution)
    if meta:
        provenance.update({str(k): str(v) for k, v in meta.items()})
    return ArrivalTrace(times, sizes, provenance)
