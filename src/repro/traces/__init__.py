"""repro.traces — trace-driven workloads: measure, fit, replay.

The workload layer the ROADMAP's "any scenario you can imagine" goal was
missing: arrival *measurements* as first-class citizens next to arrival
*models*.

* :class:`ArrivalTrace` (:mod:`repro.traces.trace`) — the container:
  timestamps + optional job sizes + git-style provenance, with bitwise
  CSV/JSONL/NPZ round-trips, windowing and rescaling;
* :func:`summarize_trace` (:mod:`repro.traces.stats`) — rate, interarrival
  SCV, lag-``k`` autocorrelation and the index of dispersion for counts:
  the burstiness statistics everything else keys on;
* :func:`fit_arrival` (:mod:`repro.traces.fit`) — MMPP2 / hyperexponential
  / Erlang moment matching, turning a measurement into an analyzable
  :class:`~repro.api.spec.DistributionSpec`;
* :class:`TraceArrivals` / :func:`synthesize_trace`
  (:mod:`repro.traces.replay`) — deterministic replay through the cluster
  simulator, and seeded export of any arrival process back into a trace.

The spec layer names the two new workloads ``"trace"`` (replay) and
``"mmpp2"`` (fitted model); ``repro-lb trace stats|fit|run`` drives the
whole loop from the command line, and ``docs/traces.md`` walks the raw
trace → fitted spec → bound bracket vs. replayed simulation path.
"""

from repro.traces.fit import (
    FAMILIES,
    TraceFit,
    TraceFitError,
    fit_arrival,
    fit_erlang,
    fit_hyperexponential,
    fit_mmpp2,
    fit_poisson,
)
from repro.traces.replay import TraceArrivals, synthesize_trace
from repro.traces.stats import (
    BurstinessSummary,
    index_of_dispersion,
    interarrival_scv,
    lag_autocorrelation,
    summarize_trace,
)
from repro.traces.trace import ArrivalTrace, TraceError

__all__ = [
    "ArrivalTrace",
    "TraceError",
    "BurstinessSummary",
    "summarize_trace",
    "interarrival_scv",
    "lag_autocorrelation",
    "index_of_dispersion",
    "FAMILIES",
    "TraceFit",
    "TraceFitError",
    "fit_arrival",
    "fit_mmpp2",
    "fit_hyperexponential",
    "fit_erlang",
    "fit_poisson",
    "TraceArrivals",
    "synthesize_trace",
]
