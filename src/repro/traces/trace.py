"""The :class:`ArrivalTrace` container: measured (or synthesized) workloads.

A trace is the ground truth a model is fitted against: a sorted sequence of
arrival timestamps, optionally paired with per-job sizes (service
requirements), plus a small string-valued ``meta`` mapping that records
where the trace came from and every transform applied to it — git-style
provenance, so a result file can name exactly which slice of which capture
produced it.

Three interchangeable on-disk formats round-trip bitwise:

* **CSV** — human-greppable; floats are written with ``repr`` (shortest
  round-trip representation), meta rides in ``#``-prefixed header lines;
* **JSONL** — one header object, then one object per arrival; the format
  result stores and stream processors consume;
* **NPZ** — binary numpy archive, byte-exact and fastest for large traces.

``ArrivalTrace.load`` / ``save`` dispatch on the file suffix, and
``load(save(trace)) == trace`` holds exactly (arrays compare bitwise), which
the tier-1 suite pins down across formats and platforms.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["TraceError", "ArrivalTrace"]

#: Per-process memo for :meth:`ArrivalTrace.load_cached`, keyed by resolved
#: path + mtime + size so an edited file is re-read.  Bounded: a sweep over
#: many distinct traces must not pin them all in memory.
_LOAD_CACHE: "OrderedDict[Tuple[str, int, int], ArrivalTrace]" = OrderedDict()
_LOAD_CACHE_LOCK = threading.Lock()
_LOAD_CACHE_SIZE = 8

_FORMATS = (".csv", ".jsonl", ".npz")
_CSV_MAGIC = "# repro-trace v1"
_JSONL_TYPE = "repro-trace"


class TraceError(ValidationError):
    """Raised for malformed traces, trace files, or invalid trace operations."""


def _as_times(values: Sequence[float]) -> np.ndarray:
    times = np.asarray(values, dtype=np.float64)
    if times.ndim != 1:
        raise TraceError(f"arrival times must be one-dimensional, got shape {times.shape}")
    if times.size and not np.all(np.isfinite(times)):
        raise TraceError("arrival times must be finite")
    if times.size and float(times[0]) < 0.0:
        raise TraceError(f"arrival times must be non-negative, first is {times[0]!r}")
    if times.size >= 2 and np.any(np.diff(times) < 0.0):
        raise TraceError("arrival times must be sorted in non-decreasing order")
    return times


def _as_sizes(values: Optional[Sequence[float]], count: int) -> Optional[np.ndarray]:
    if values is None:
        return None
    sizes = np.asarray(values, dtype=np.float64)
    if sizes.shape != (count,):
        raise TraceError(
            f"job sizes must match the arrival count ({count}), got shape {sizes.shape}"
        )
    if sizes.size and (not np.all(np.isfinite(sizes)) or np.any(sizes <= 0.0)):
        raise TraceError("job sizes must be finite and strictly positive")
    return sizes


def _as_meta(meta: Optional[Mapping[str, str]]) -> Dict[str, str]:
    if meta is None:
        return {}
    out = {}
    for key, value in meta.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise TraceError(
                f"trace meta must map strings to strings, got {key!r}: {value!r}"
            )
        out[key] = value
    return out


class ArrivalTrace:
    """An immutable arrival trace: timestamps, optional job sizes, provenance.

    Parameters
    ----------
    arrival_times : sequence of float
        Absolute arrival timestamps, finite, non-negative and sorted
        (ties — batch arrivals — are allowed).
    job_sizes : sequence of float, optional
        Per-job service requirements (same length, strictly positive).
    meta : mapping of str to str, optional
        Provenance: free-form string keys.  Transform methods copy it and
        append a description to the ``"transforms"`` entry.
    """

    __slots__ = ("_times", "_sizes", "_meta")

    def __init__(
        self,
        arrival_times: Sequence[float],
        job_sizes: Optional[Sequence[float]] = None,
        meta: Optional[Mapping[str, str]] = None,
    ):
        times = _as_times(arrival_times)
        sizes = _as_sizes(job_sizes, times.size)
        times.flags.writeable = False
        if sizes is not None:
            sizes.flags.writeable = False
        self._times = times
        self._sizes = sizes
        self._meta = _as_meta(meta)

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    @property
    def arrival_times(self) -> np.ndarray:
        """Read-only timestamp array."""
        return self._times

    @property
    def job_sizes(self) -> Optional[np.ndarray]:
        """Read-only job-size array, or ``None`` for timestamp-only traces."""
        return self._sizes

    @property
    def has_sizes(self) -> bool:
        return self._sizes is not None

    @property
    def meta(self) -> Dict[str, str]:
        """A copy of the provenance mapping."""
        return dict(self._meta)

    @property
    def num_arrivals(self) -> int:
        return int(self._times.size)

    def __len__(self) -> int:
        return self.num_arrivals

    @property
    def duration(self) -> float:
        """Time spanned from the first to the last arrival."""
        if self.num_arrivals < 2:
            return 0.0
        return float(self._times[-1] - self._times[0])

    @property
    def rate(self) -> float:
        """Empirical arrival rate ``(n - 1) / duration`` (interval-based)."""
        if self.num_arrivals < 2 or self.duration <= 0.0:
            raise TraceError(
                "the empirical rate needs at least two arrivals spanning positive time"
            )
        return (self.num_arrivals - 1) / self.duration

    def interarrival_times(self) -> np.ndarray:
        """Consecutive interarrival times (length ``n - 1``)."""
        return np.diff(self._times)

    # ------------------------------------------------------------------ #
    # Transforms (each returns a new trace with provenance appended)
    # ------------------------------------------------------------------ #
    def _derived(
        self,
        transform: str,
        times: np.ndarray,
        sizes: Optional[np.ndarray],
    ) -> "ArrivalTrace":
        meta = dict(self._meta)
        previous = meta.get("transforms")
        meta["transforms"] = transform if not previous else f"{previous} | {transform}"
        return ArrivalTrace(times, sizes, meta)

    def window(self, start: float, stop: float) -> "ArrivalTrace":
        """Arrivals with ``start <= t < stop`` (timestamps are kept absolute)."""
        if not stop > start:
            raise TraceError(f"window needs stop > start, got [{start!r}, {stop!r})")
        mask = (self._times >= start) & (self._times < stop)
        sizes = None if self._sizes is None else self._sizes[mask]
        return self._derived(f"window[{start:g},{stop:g})", self._times[mask], sizes)

    def head(self, count: int) -> "ArrivalTrace":
        """The first ``count`` arrivals."""
        if count < 0:
            raise TraceError(f"head needs count >= 0, got {count!r}")
        sizes = None if self._sizes is None else self._sizes[:count]
        return self._derived(f"head[{count}]", self._times[:count], sizes)

    def shifted(self, origin: float = 0.0) -> "ArrivalTrace":
        """Re-anchor the first arrival at ``origin`` (default 0)."""
        if self.num_arrivals == 0:
            return self._derived(f"shift[{origin:g}]", self._times, self._sizes)
        return self._derived(
            f"shift[{origin:g}]", self._times - self._times[0] + origin, self._sizes
        )

    def rescaled(self, rate: float) -> "ArrivalTrace":
        """Time-rescale so the empirical rate becomes ``rate``.

        Scaling timestamps preserves every dimensionless burstiness
        statistic (SCV, lag correlations, IDC); it is how a measured trace
        is laid onto a spec's utilization.
        """
        if rate <= 0.0:
            raise TraceError(f"target rate must be > 0, got {rate!r}")
        factor = self.rate / rate
        return self._derived(f"rescale[rate={rate:g}]", self._times * factor, self._sizes)

    # ------------------------------------------------------------------ #
    # Equality / display
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrivalTrace):
            return NotImplemented
        if self._meta != other._meta:
            return False
        if not np.array_equal(self._times, other._times):
            return False
        if (self._sizes is None) != (other._sizes is None):
            return False
        return self._sizes is None or np.array_equal(self._sizes, other._sizes)

    def __repr__(self) -> str:
        sized = "with sizes" if self.has_sizes else "timestamps only"
        return (
            f"ArrivalTrace({self.num_arrivals} arrivals over {self.duration:.6g} "
            f"time units, {sized})"
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace to ``path``; format chosen by suffix (.csv/.jsonl/.npz)."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix not in _FORMATS:
            raise TraceError(
                f"unknown trace format {suffix!r} for {path} (supported: {', '.join(_FORMATS)})"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        if suffix == ".csv":
            path.write_text(self._to_csv(), encoding="utf-8")
        elif suffix == ".jsonl":
            path.write_text(self._to_jsonl(), encoding="utf-8")
        else:
            arrays: Dict[str, np.ndarray] = {
                "arrival_times": self._times,
                "meta_json": np.array(json.dumps(self._meta, sort_keys=True)),
            }
            if self._sizes is not None:
                arrays["job_sizes"] = self._sizes
            with path.open("wb") as handle:
                np.savez(handle, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """Read a trace written by :meth:`save` (format chosen by suffix)."""
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        suffix = path.suffix.lower()
        if suffix == ".csv":
            return cls._from_csv(path.read_text(encoding="utf-8"), path)
        if suffix == ".jsonl":
            return cls._from_jsonl(path.read_text(encoding="utf-8"), path)
        if suffix == ".npz":
            try:
                with np.load(path, allow_pickle=False) as archive:
                    meta = json.loads(str(archive["meta_json"]))
                    sizes = archive["job_sizes"] if "job_sizes" in archive.files else None
                    return cls(archive["arrival_times"], sizes, meta)
            except TraceError:
                raise
            except Exception as error:
                raise TraceError(f"{path}: not a readable trace NPZ archive: {error}") from None
        raise TraceError(
            f"unknown trace format {suffix!r} for {path} (supported: {', '.join(_FORMATS)})"
        )

    @classmethod
    def load_cached(cls, path: Union[str, Path]) -> "ArrivalTrace":
        """:meth:`load` through a per-process memo.

        Replicated runs re-resolve the same trace file once per replication
        (the spec only carries the path); traces are immutable once
        constructed, so sharing one instance is safe.  The memo key includes
        the file's mtime and size, so a rewritten file is re-read.
        """
        path = Path(path)
        if not path.exists():
            raise TraceError(f"trace file not found: {path}")
        stat = path.stat()
        key = (str(path.resolve()), stat.st_mtime_ns, stat.st_size)
        with _LOAD_CACHE_LOCK:
            cached = _LOAD_CACHE.get(key)
            if cached is not None:
                _LOAD_CACHE.move_to_end(key)
                return cached
        trace = cls.load(path)
        with _LOAD_CACHE_LOCK:
            _LOAD_CACHE[key] = trace
            _LOAD_CACHE.move_to_end(key)
            while len(_LOAD_CACHE) > _LOAD_CACHE_SIZE:
                _LOAD_CACHE.popitem(last=False)
        return trace

    # -- CSV ----------------------------------------------------------- #
    def _to_csv(self) -> str:
        lines = [_CSV_MAGIC, f"# meta {json.dumps(self._meta, sort_keys=True)}"]
        if self._sizes is None:
            lines.append("arrival_time")
            lines.extend(repr(float(t)) for t in self._times)
        else:
            lines.append("arrival_time,job_size")
            lines.extend(
                f"{float(t)!r},{float(s)!r}" for t, s in zip(self._times, self._sizes)
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def _from_csv(cls, text: str, path: Path) -> "ArrivalTrace":
        lines = text.splitlines()
        if not lines or lines[0].strip() != _CSV_MAGIC:
            raise TraceError(f"{path}: not a repro trace CSV (missing '{_CSV_MAGIC}' header)")
        meta: Dict[str, str] = {}
        body: list = []
        header = None
        for line in lines[1:]:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("# meta "):
                try:
                    meta = json.loads(stripped[len("# meta "):])
                except json.JSONDecodeError as error:
                    raise TraceError(f"{path}: malformed meta header: {error}") from None
                continue
            if stripped.startswith("#"):
                continue
            if header is None:
                header = stripped
                continue
            body.append(stripped)
        if header not in ("arrival_time", "arrival_time,job_size"):
            raise TraceError(f"{path}: unexpected CSV column header {header!r}")
        try:
            if header == "arrival_time":
                return cls([float(row) for row in body], None, meta)
            pairs = [row.split(",") for row in body]
            if any(len(pair) != 2 for pair in pairs):
                raise TraceError(f"{path}: malformed CSV row (expected 'arrival_time,job_size')")
            return cls(
                [float(pair[0]) for pair in pairs],
                [float(pair[1]) for pair in pairs],
                meta,
            )
        except ValueError as error:
            raise TraceError(f"{path}: malformed CSV value: {error}") from None

    # -- JSONL --------------------------------------------------------- #
    def _to_jsonl(self) -> str:
        header = {
            "type": _JSONL_TYPE,
            "version": 1,
            "num_arrivals": self.num_arrivals,
            "has_sizes": self.has_sizes,
            "meta": dict(sorted(self._meta.items())),
        }
        lines = [json.dumps(header, sort_keys=True)]
        if self._sizes is None:
            lines.extend(json.dumps({"t": float(t)}) for t in self._times)
        else:
            lines.extend(
                json.dumps({"size": float(s), "t": float(t)}, sort_keys=True)
                for t, s in zip(self._times, self._sizes)
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def _from_jsonl(cls, text: str, path: Path) -> "ArrivalTrace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceError(f"{path}: empty JSONL trace file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise TraceError(f"{path}: malformed JSONL header: {error}") from None
        if not isinstance(header, dict) or header.get("type") != _JSONL_TYPE:
            raise TraceError(f"{path}: not a repro trace JSONL (missing header object)")
        try:
            records = [json.loads(line) for line in lines[1:]]
            times = [record["t"] for record in records]
            if header.get("has_sizes"):
                sizes: Optional[list] = [record["size"] for record in records]
            else:
                sizes = None
        except json.JSONDecodeError as error:
            raise TraceError(f"{path}: malformed JSONL row: {error}") from None
        except (KeyError, TypeError) as error:
            raise TraceError(f"{path}: JSONL row missing field {error}") from None
        declared = header.get("num_arrivals")
        if declared is not None and declared != len(times):
            raise TraceError(
                f"{path}: header declares {declared} arrivals but {len(times)} rows follow"
            )
        return cls(times, sizes, header.get("meta", {}))
