"""Command-line interface for the library.

Installed as the ``repro-lb`` console script; also runnable as
``python -m repro.cli``.  Subcommands:

* ``analyze``   — bounds / asymptotics / optional simulation for one configuration,
* ``figure9``   — regenerate one panel of the paper's Figure 9,
* ``figure10``  — regenerate one panel of the paper's Figure 10,
* ``sweep``     — run a custom parameter sweep and export CSV/JSON.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.analysis import analyze_sqd
from repro.experiments.figure9 import Figure9Config, run_figure9
from repro.experiments.figure10 import panel_config, run_figure10
from repro.experiments.runner import SweepConfig, run_sweep
from repro.utils.tables import format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Finite-regime delay bounds for SQ(d) randomized load balancing (ICDCS 2016 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser("analyze", help="bounds and baselines for one configuration")
    analyze.add_argument("--servers", "-N", type=int, required=True, help="number of servers N")
    analyze.add_argument("--choices", "-d", type=int, default=2, help="number of polled servers d")
    analyze.add_argument("--utilization", "-u", type=float, required=True, help="per-server load rho")
    analyze.add_argument("--threshold", "-T", type=int, default=3, help="imbalance threshold T of the bound models")
    analyze.add_argument("--simulate", action="store_true", help="also run a CTMC simulation")
    analyze.add_argument("--events", type=int, default=200_000, help="simulated events when --simulate is given")
    analyze.add_argument("--exact", action="store_true", help="also solve the truncated exact chain (small N only)")

    figure9 = subparsers.add_parser("figure9", help="relative error of the asymptotic delay vs simulation")
    figure9.add_argument("--utilization", "-u", type=float, default=0.95, help="per-server load rho")
    figure9.add_argument("--choices", type=int, nargs="+", default=[2, 5, 10, 25, 50])
    figure9.add_argument("--servers", type=int, nargs="+", default=[10, 25, 50, 100, 175, 250])
    figure9.add_argument("--events", type=int, default=120_000, help="simulated events per point")

    figure10 = subparsers.add_parser("figure10", help="average delay vs utilization for SQ(2)")
    figure10.add_argument("--panel", choices=["a", "b", "c", "d"], default="a", help="paper panel: a=(3,2) b=(3,3) c=(6,3) d=(12,3)")
    figure10.add_argument("--events", type=int, default=120_000, help="simulated events per point")
    figure10.add_argument("--no-simulation", action="store_true", help="skip the simulation curve")

    sweep = subparsers.add_parser("sweep", help="custom (N, d, rho, T) sweep with CSV/JSON export")
    sweep.add_argument("--servers", type=int, nargs="+", default=[3, 6])
    sweep.add_argument("--choices", type=int, nargs="+", default=[2])
    sweep.add_argument("--utilizations", type=float, nargs="+", default=[0.5, 0.7, 0.9])
    sweep.add_argument("--thresholds", type=int, nargs="+", default=[2])
    sweep.add_argument("--simulate", action="store_true")
    sweep.add_argument("--events", type=int, default=100_000)
    sweep.add_argument("--csv", type=str, default=None, help="write results to this CSV file")
    sweep.add_argument("--json", type=str, default=None, help="write results to this JSON file")

    return parser


def _command_analyze(args: argparse.Namespace) -> int:
    analysis = analyze_sqd(
        num_servers=args.servers,
        d=args.choices,
        utilization=args.utilization,
        threshold=args.threshold,
        run_simulation=args.simulate,
        simulation_events=args.events,
        compute_exact=args.exact,
    )
    rows = [
        ["asymptotic (Eq. 16)", analysis.asymptotic_delay],
        ["lower bound (Thm 3)", analysis.lower_delay],
    ]
    if analysis.exact_delay is not None:
        rows.append(["exact (truncated)", analysis.exact_delay])
    if analysis.simulated_delay is not None:
        rows.append(["simulation", analysis.simulated_delay])
    rows.append(
        ["upper bound (Thm 1)", analysis.upper_delay if analysis.upper_delay is not None else "unstable"]
    )
    title = (
        f"SQ({args.choices}) with N={args.servers}, rho={args.utilization}, T={args.threshold}: "
        "mean delay (sojourn time)"
    )
    print(format_table(["method", "mean delay"], rows, title=title))
    return 0


def _command_figure9(args: argparse.Namespace) -> int:
    config = Figure9Config(
        utilization=args.utilization,
        choices=tuple(args.choices),
        server_counts=tuple(args.servers),
        num_events=args.events,
    )
    print(run_figure9(config).as_table())
    return 0


def _command_figure10(args: argparse.Namespace) -> int:
    config = panel_config(args.panel, simulation_events=args.events)
    if args.no_simulation:
        config = type(config)(
            num_servers=config.num_servers,
            threshold=config.threshold,
            utilizations=config.utilizations,
            simulation_events=config.simulation_events,
            run_simulation=False,
        )
    print(run_figure10(config).as_table())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    config = SweepConfig(
        server_counts=tuple(args.servers),
        choices=tuple(args.choices),
        utilizations=tuple(args.utilizations),
        thresholds=tuple(args.thresholds),
        run_simulation=args.simulate,
        simulation_events=args.events,
    )
    result = run_sweep(config)
    print(result.as_table(title="SQ(d) finite-regime sweep"))
    if args.csv:
        print(f"wrote {result.to_csv(args.csv)}")
    if args.json:
        print(f"wrote {result.to_json(args.json)}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-lb`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _command_analyze,
        "figure9": _command_figure9,
        "figure10": _command_figure10,
        "sweep": _command_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
