"""Command-line interface for the library.

Installed as the ``repro-lb`` console script; also runnable as
``python -m repro.cli``.  Subcommands:

* ``run``       — execute a JSON experiment spec on any registered backend,
* ``backends``  — list the registered backends and their capabilities,
* ``analyze``   — bounds / asymptotics / optional simulation for one configuration,
* ``figure9``   — regenerate one panel of the paper's Figure 9,
* ``figure10``  — regenerate one panel of the paper's Figure 10,
* ``sweep``     — run a custom parameter sweep and export CSV/JSON,
* ``fleet``     — occupancy-based large-N simulation vs the mean-field limit,
* ``ensemble``  — parallel replications of a fleet/scenario run with
  confidence intervals and optional JSONL persistence,
* ``trace``     — trace-driven workloads: ``trace stats`` (burstiness
  summary of a trace file), ``trace fit`` (fit an analyzable arrival model
  and emit a runnable spec), ``trace run`` (replay a trace through the
  cluster simulator),
* ``campaign``  — durable, resumable sweep campaigns: ``campaign run``
  (create a campaign directory and drive it), ``campaign status``
  (read-only progress snapshot), ``campaign resume`` (finish an
  interrupted campaign; results are bitwise identical to an
  uninterrupted run).

``run``, ``analyze`` and ``fleet`` all accept ``--json <path>`` and export
through one shared serialization helper (:mod:`repro.api.serialize`), so
every machine-readable result file follows the same dialect.

Every line of simulation output is a deterministic function of the seed;
wall-clock diagnostics (events/s, elapsed seconds) are printed on separate
lines prefixed ``wall-clock`` so scripted comparisons can filter them.
"""

from __future__ import annotations

import argparse
import math
import signal
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.api import (
    DistributionSpec,
    ExperimentSpec,
    SpecError,
    WorkloadSpec,
    backend_capabilities,
    run,
    write_json,
)
from repro.core.analysis import analyze_sqd
from repro.core.asymptotic import asymptotic_delay, relative_error_percent
from repro.ensemble.results import ResultStore, provenance
from repro.ensemble.runner import EnsembleConfig, run_ensemble
from repro.experiments.figure9 import Figure9Config, run_figure9
from repro.experiments.figure10 import panel_config, run_figure10
from repro.experiments.runner import SweepConfig, run_sweep
from repro.fleet.engine import run_scenario, simulate_fleet
from repro.fleet.meanfield import meanfield_delay
from repro.fleet.scenarios import available_scenarios, get_scenario
from repro.kernels import available_kernels
from repro.utils.tables import format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lb",
        description="Finite-regime delay bounds for SQ(d) randomized load balancing (ICDCS 2016 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="execute a JSON experiment spec on any registered backend"
    )
    run_parser.add_argument("--spec", type=str, required=True,
                            help="path to an ExperimentSpec JSON file (see docs/api.md)")
    run_parser.add_argument("--backend", type=str, default="auto",
                            help="backend name, or 'auto' for the cheapest capable engine")
    run_parser.add_argument("--replications", "-K", type=int, default=None,
                            help="independent replications (>= 2 adds confidence intervals)")
    run_parser.add_argument("--workers", "-w", type=int, default=1, help="worker processes")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the spec's seed for this run")
    run_parser.add_argument("--kernel", choices=["auto"] + available_kernels(), default=None,
                            help="override the spec's event kernel (fleet backend)")
    run_parser.add_argument("--confidence", type=float, default=0.95, help="two-sided CI level")
    run_parser.add_argument("--json", type=str, default=None,
                            help="write the full RunResult to this JSON file")

    subparsers.add_parser("backends", help="list registered backends and their capabilities")

    analyze = subparsers.add_parser("analyze", help="bounds and baselines for one configuration")
    analyze.add_argument("--servers", "-N", type=int, required=True, help="number of servers N")
    analyze.add_argument("--choices", "-d", type=int, default=2, help="number of polled servers d")
    analyze.add_argument("--utilization", "-u", type=float, required=True, help="per-server load rho")
    analyze.add_argument("--threshold", "-T", type=int, default=3, help="imbalance threshold T of the bound models")
    analyze.add_argument("--simulate", action="store_true", help="also run a CTMC simulation")
    analyze.add_argument("--events", type=int, default=200_000, help="simulated events when --simulate is given")
    analyze.add_argument("--exact", action="store_true", help="also solve the truncated exact chain (small N only)")
    analyze.add_argument("--seed", type=int, default=12345, help="simulation seed for reproducible runs")
    analyze.add_argument("--arrival", choices=["poisson", "erlang", "hyperexponential", "mmpp2"],
                         default="poisson",
                         help="arrival process for the Theorem 2 asymptotics "
                              "(sigma root, decay factor, improved lower bound)")
    analyze.add_argument("--arrival-param", action="append", default=[], metavar="KEY=VALUE",
                         help="arrival shape parameter, repeatable — e.g. "
                              "--arrival-param stages=4, or the mmpp2 shape "
                              "rate_high/rate_low/switch_to_low/switch_to_high")
    analyze.add_argument("--json", type=str, default=None,
                         help="also write the analysis to this JSON file")

    figure9 = subparsers.add_parser("figure9", help="relative error of the asymptotic delay vs simulation")
    figure9.add_argument("--utilization", "-u", type=float, default=0.95, help="per-server load rho")
    figure9.add_argument("--choices", type=int, nargs="+", default=[2, 5, 10, 25, 50])
    figure9.add_argument("--servers", type=int, nargs="+", default=[10, 25, 50, 100, 175, 250])
    figure9.add_argument("--events", type=int, default=120_000, help="simulated events per point")
    figure9.add_argument("--replications", type=int, default=1,
                         help="independent replications per point (>= 2 adds CI half-widths)")
    figure9.add_argument("--workers", type=int, default=1, help="worker processes for the replications")

    figure10 = subparsers.add_parser("figure10", help="average delay vs utilization for SQ(2)")
    figure10.add_argument("--panel", choices=["a", "b", "c", "d"], default="a", help="paper panel: a=(3,2) b=(3,3) c=(6,3) d=(12,3)")
    figure10.add_argument("--events", type=int, default=120_000, help="simulated events per point")
    figure10.add_argument("--no-simulation", action="store_true", help="skip the simulation curve")
    figure10.add_argument("--replications", type=int, default=1,
                          help="independent replications per point (>= 2 adds CI half-widths)")
    figure10.add_argument("--workers", type=int, default=1, help="worker processes for the replications")

    sweep = subparsers.add_parser("sweep", help="custom (N, d, rho, T) sweep with CSV/JSON export")
    sweep.add_argument("--servers", type=int, nargs="+", default=[3, 6])
    sweep.add_argument("--choices", type=int, nargs="+", default=[2])
    sweep.add_argument("--utilizations", type=float, nargs="+", default=[0.5, 0.7, 0.9])
    sweep.add_argument("--thresholds", type=int, nargs="+", default=[2])
    sweep.add_argument("--simulate", action="store_true")
    sweep.add_argument("--events", type=int, default=100_000)
    sweep.add_argument("--csv", type=str, default=None, help="write results to this CSV file")
    sweep.add_argument("--json", type=str, default=None, help="write results to this JSON file")
    sweep.add_argument("--seed", type=int, default=20160627, help="base simulation seed for reproducible runs")

    fleet = subparsers.add_parser("fleet", help="occupancy-based large-N fleet simulation vs the mean-field limit")
    fleet.add_argument("--servers", "-N", type=int, required=True, help="number of servers N (up to ~10^6)")
    fleet.add_argument("--choices", "-d", type=int, default=2, help="number of polled servers d")
    fleet.add_argument("--utilization", "-u", type=float, default=None,
                       help="per-server load rho (required unless --scenario is given)")
    fleet.add_argument("--policy", choices=["sqd", "jsq", "random"], default="sqd", help="dispatching policy")
    fleet.add_argument("--events", type=int, default=None, help="simulated events (default scales with N)")
    fleet.add_argument("--scenario", choices=available_scenarios(), default=None,
                       help="play a time-varying scenario instead of a stationary run")
    fleet.add_argument("--cold-start", action="store_true",
                       help="start from an empty cluster instead of the mean-field profile")
    fleet.add_argument("--kernel", choices=["auto"] + available_kernels(), default="auto",
                       help="event kernel for the hot loop (auto picks the fastest capable one)")
    fleet.add_argument("--seed", type=int, default=12345, help="simulation seed for reproducible runs")
    fleet.add_argument("--json", type=str, default=None,
                       help="also write the fleet result to this JSON file")

    ensemble = subparsers.add_parser(
        "ensemble",
        help="parallel replications of a fleet or scenario run, with confidence intervals",
    )
    ensemble.add_argument("--servers", "-N", type=int, required=True, help="number of servers N")
    ensemble.add_argument("--choices", "-d", type=int, default=2, help="number of polled servers d")
    ensemble.add_argument("--utilization", "-u", type=float, default=None,
                          help="per-server load rho (required unless --scenario is given)")
    ensemble.add_argument("--policy", choices=["sqd", "jsq", "random"], default="sqd", help="dispatching policy")
    ensemble.add_argument("--events", type=int, default=None,
                          help="simulated events per replication (default scales with N)")
    ensemble.add_argument("--scenario", choices=available_scenarios(), default=None,
                          help="replicate a time-varying scenario instead of a stationary run")
    ensemble.add_argument("--replications", "-K", type=int, default=8, help="independent replications")
    ensemble.add_argument("--workers", "-w", type=int, default=1, help="worker processes")
    ensemble.add_argument("--seed", type=int, default=12345, help="ensemble seed (replication seeds are derived)")
    ensemble.add_argument("--confidence", type=float, default=0.95, help="two-sided CI level")
    ensemble.add_argument("--target-precision", type=float, default=None,
                          help="relative CI half-width to stop at (adds replications adaptively)")
    ensemble.add_argument("--max-replications", type=int, default=64,
                          help="replication cap for --target-precision")
    ensemble.add_argument("--jsonl", type=str, default=None,
                          help="append every replication record to this JSONL store")

    trace = subparsers.add_parser(
        "trace",
        help="trace-driven workloads: burstiness statistics, model fitting, replay",
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    trace_stats = trace_commands.add_parser(
        "stats", help="burstiness summary of a trace file (rate, SCV, autocorrelation, IDC)"
    )
    trace_stats.add_argument("--trace", type=str, required=True,
                             help="trace file (.csv, .jsonl or .npz; see docs/traces.md)")
    trace_stats.add_argument("--lags", type=int, nargs="+", default=[1, 2, 5, 10],
                             help="autocorrelation lags to report")
    trace_stats.add_argument("--json", type=str, default=None,
                             help="also write the summary to this JSON file")

    trace_fit = trace_commands.add_parser(
        "fit", help="fit an analyzable arrival model and emit a runnable experiment spec"
    )
    trace_fit.add_argument("--trace", type=str, required=True, help="trace file to fit")
    trace_fit.add_argument("--family", choices=["auto", "mmpp2", "hyperexponential", "erlang", "poisson"],
                           default="auto", help="arrival family (auto picks by burstiness)")
    trace_fit.add_argument("--servers", "-N", type=int, required=True,
                           help="pool size N of the emitted spec")
    trace_fit.add_argument("--choices", "-d", type=int, default=2, help="polled servers d")
    trace_fit.add_argument("--policy", default="sqd", help="dispatching policy of the spec")
    trace_fit.add_argument("--service-rate", type=float, default=1.0,
                           help="per-server service rate mu (sets rho = rate / (N mu))")
    trace_fit.add_argument("--jobs", type=int, default=None,
                           help="job horizon stored in the spec (cluster backend)")
    trace_fit.add_argument("--seed", type=int, default=12345, help="seed stored in the spec")
    trace_fit.add_argument("--spec-out", type=str, default=None,
                           help="write the fitted ExperimentSpec JSON here "
                                "(ready for `repro-lb run --spec`)")
    trace_fit.add_argument("--json", type=str, default=None,
                           help="also write the fit diagnostics to this JSON file")

    trace_run = trace_commands.add_parser(
        "run", help="replay a trace through the cluster simulator via repro.run"
    )
    trace_run.add_argument("--trace", type=str, required=True, help="trace file to replay")
    trace_run.add_argument("--servers", "-N", type=int, required=True, help="pool size N")
    trace_run.add_argument("--choices", "-d", type=int, default=2, help="polled servers d")
    trace_run.add_argument("--policy", default="sqd", help="dispatching policy")
    trace_run.add_argument("--utilization", "-u", type=float, default=None,
                           help="replay rescaled to this per-server load "
                                "(default: the load the trace's own rate implies)")
    trace_run.add_argument("--service-rate", type=float, default=1.0,
                           help="per-server service rate mu")
    trace_run.add_argument("--jobs", type=int, default=None, help="jobs to simulate")
    trace_run.add_argument("--replications", "-K", type=int, default=None,
                           help="independent replications (service/policy streams re-seeded; "
                                "the arrival sequence is the trace, replayed identically)")
    trace_run.add_argument("--workers", "-w", type=int, default=1, help="worker processes")
    trace_run.add_argument("--seed", type=int, default=12345, help="base seed")
    trace_run.add_argument("--json", type=str, default=None,
                           help="write the full RunResult to this JSON file")

    campaign = subparsers.add_parser(
        "campaign",
        help="durable, resumable sweep campaigns with adaptive replication allocation",
    )
    campaign_commands = campaign.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_commands.add_parser(
        "run", help="create a campaign directory for a sweep grid and drive it"
    )
    campaign_run.add_argument("--dir", type=str, required=True,
                              help="campaign directory (manifest, journal, records)")
    campaign_run.add_argument("--servers", "-N", type=int, nargs="+", default=[100, 1000],
                              help="swept pool sizes N")
    campaign_run.add_argument("--choices", "-d", type=int, nargs="+", default=[2],
                              help="swept poll counts d")
    campaign_run.add_argument("--utilizations", "-u", type=float, nargs="+", default=[0.9],
                              help="swept per-server loads rho")
    campaign_run.add_argument("--policy", choices=["sqd", "jsq", "random"], default="sqd",
                              help="dispatching policy for every point")
    campaign_run.add_argument("--events", type=int, default=200_000,
                              help="simulated events per replication")
    campaign_run.add_argument("--replications", "-K", type=int, default=4,
                              help="initial replications per grid point")
    campaign_run.add_argument("--workers", "-w", type=int, default=1, help="worker processes")
    campaign_run.add_argument("--seed", type=int, default=12345,
                              help="grid seed (per-point seeds are content-derived)")
    campaign_run.add_argument("--confidence", type=float, default=0.95,
                              help="two-sided CI level of the per-point intervals")
    campaign_run.add_argument("--target-precision", type=float, default=None,
                              help="per-point relative CI half-width to stop at "
                                   "(extra replications go where intervals are widest)")
    campaign_run.add_argument("--max-replications", type=int, default=64,
                              help="per-point replication cap for --target-precision")
    campaign_run.add_argument("--batch-size", type=int, default=4,
                              help="replications enqueued per adaptive extension round")
    campaign_run.add_argument("--max-tasks", type=int, default=None,
                              help="stop (durably) after this many task completions; "
                                   "finish later with `campaign resume`")
    campaign_run.add_argument("--task-timeout", type=float, default=None,
                              help="per-task wall-clock watchdog in seconds: a worker "
                                   "silent past this while holding tasks is presumed "
                                   "hung, killed, and its tasks re-queued (default: off)")
    campaign_run.add_argument("--quarantine-after", type=int, default=3,
                              help="a task that kills its worker this many times is "
                                   "quarantined and the campaign completes degraded "
                                   "instead of crash-looping")

    campaign_status_parser = campaign_commands.add_parser(
        "status", help="read-only progress snapshot of a campaign directory"
    )
    campaign_status_parser.add_argument("--dir", type=str, required=True, help="campaign directory")
    campaign_status_parser.add_argument("--json", type=str, default=None,
                                        help="also write the snapshot to this JSON file")

    campaign_resume = campaign_commands.add_parser(
        "resume", help="resume an interrupted campaign from its directory"
    )
    campaign_resume.add_argument("--dir", type=str, required=True, help="campaign directory")
    campaign_resume.add_argument("--workers", "-w", type=int, default=None,
                                 help="worker processes (default: the manifest's)")
    campaign_resume.add_argument("--max-tasks", type=int, default=None,
                                 help="stop again after this many task completions")

    return parser


def _command_run(args: argparse.Namespace) -> int:
    spec_path = Path(args.spec)
    if not spec_path.exists():
        raise SystemExit(f"repro-lb run: spec file not found: {spec_path}")
    try:
        spec = ExperimentSpec.from_json(spec_path.read_text(encoding="utf-8"))
        if args.kernel is not None:
            # Fold the override into the spec so the RunResult's provenance
            # (and any --json export) reproduces exactly what ran.
            spec = replace(spec, options={**dict(spec.options), "kernel": args.kernel})
        result = run(
            spec,
            backend=args.backend,
            replications=args.replications,
            workers=args.workers,
            confidence=args.confidence,
            seed=args.seed,
        )
    except SpecError as error:
        raise SystemExit(f"repro-lb run: {error}")
    print(result.as_table())
    print(f"mean delay {result}")
    if args.json:
        print(f"wrote {result.write_json(args.json)}")
    print(f"wall-clock: {result.wall_seconds:.2f}s on {args.workers} worker(s)")
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    rows = []
    for name, capabilities in backend_capabilities().items():
        n_range = f"{capabilities.min_servers}..{capabilities.max_servers or 'inf'}"
        rows.append(
            [
                name,
                capabilities.answer,
                "yes" if capabilities.deterministic else "no",
                "yes" if capabilities.supports_scenarios else "no",
                n_range,
                " ".join(capabilities.policies),
                " ".join(capabilities.arrivals),
                " ".join(capabilities.services),
            ]
        )
    print(
        format_table(
            ["backend", "answer", "deterministic", "scenarios", "N range", "policies",
             "arrivals", "services"],
            rows,
            title="registered backends (auto picks the cheapest capable estimator)",
        )
    )
    return 0


def _parse_param_pairs(pairs: Sequence[str], what: str) -> dict:
    """``KEY=VALUE`` flags into a params dict (ints, then floats, then strings)."""
    params = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key.strip():
            raise SystemExit(f"{what}: expected KEY=VALUE, got {pair!r}")
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key.strip()] = value
    return params


def _arrival_asymptotics(args: argparse.Namespace) -> dict:
    """Theorem 2 asymptotics of a non-Poisson arrival spec (``analyze --arrival``).

    Builds the arrival process exactly as the engines would — through the
    workload spec layer — then reports the GI/M/1-type sigma root, the
    ``sigma^N`` decay factor, the improved lower bound it induces, and (for
    MAPs) the analytic burstiness statistics.
    """
    from repro.api.engines import build_arrival_process
    from repro.core.improved_lower import solve_improved_lower_bound
    from repro.core.model import SQDModel
    from repro.markov.arrival_processes import (
        MarkovianArrivalProcess,
        beta_coefficients,
        solve_sigma,
    )

    from repro.linalg.logarithmic_reduction import QBDSolveError
    from repro.utils.validation import ValidationError

    params = _parse_param_pairs(args.arrival_param, "repro-lb analyze --arrival-param")
    try:
        workload = WorkloadSpec(arrival=DistributionSpec(args.arrival, params))
        total_rate = args.utilization * args.servers
        process = build_arrival_process(workload.arrival, total_rate)
        sigma = solve_sigma(process, service_rate=float(args.servers))
        decay = sigma ** args.servers
        betas = beta_coefficients(process, service_rate=float(args.servers), max_k=8)
    except ValidationError as error:
        # SpecError subclasses ValidationError; shape params that pass spec
        # validation can still fail at process construction (e.g. stages=0).
        raise SystemExit(f"repro-lb analyze: {error}")
    model = SQDModel(num_servers=args.servers, d=args.choices, utilization=args.utilization)
    try:
        improved = solve_improved_lower_bound(model, args.threshold, decay_factor=decay)
        lower_bound = improved.mean_delay
    except QBDSolveError:
        # Bursty inputs can push the decay factor beyond where the scalar-
        # geometric boundary solve keeps positivity — report the root and
        # flag the bound instead of crashing.
        lower_bound = None
    rows = [
        ["sigma (Thm 2 root)", sigma],
        ["decay factor sigma^N", decay],
        [
            "improved lower bound (Thm 2)",
            "not computable (boundary solve fails at this decay)"
            if lower_bound is None
            else lower_bound,
        ],
    ]
    payload = {
        "arrival": workload.arrival.to_dict(),
        "sigma": sigma,
        "decay_factor": decay,
        "improved_lower_bound": lower_bound,
        "beta_coefficients": betas,
    }
    if isinstance(process, MarkovianArrivalProcess):
        rows.extend(
            [
                ["interarrival SCV", process.interarrival_scv],
                ["lag-1 autocorrelation", process.lag_autocorrelation(1)],
                ["IDC (limit)", process.asymptotic_idc()],
            ]
        )
        payload.update(
            {
                "interarrival_scv": process.interarrival_scv,
                "lag1_autocorrelation": process.lag_autocorrelation(1),
                "asymptotic_idc": process.asymptotic_idc(),
            }
        )
    print(
        format_table(
            ["statistic", "value"],
            rows,
            title=f"{args.arrival} arrivals: Theorem 2 asymptotics (renewal "
            "approximation for MAPs)",
        )
    )
    return payload


def _command_analyze(args: argparse.Namespace) -> int:
    analysis = analyze_sqd(
        num_servers=args.servers,
        d=args.choices,
        utilization=args.utilization,
        threshold=args.threshold,
        run_simulation=args.simulate,
        simulation_events=args.events,
        simulation_seed=args.seed,
        compute_exact=args.exact,
    )
    rows = [
        ["asymptotic (Eq. 16)", analysis.asymptotic_delay],
        ["lower bound (Thm 3)", analysis.lower_delay],
    ]
    if analysis.exact_delay is not None:
        rows.append(["exact (truncated)", analysis.exact_delay])
    if analysis.simulated_delay is not None:
        rows.append(["simulation", analysis.simulated_delay])
    rows.append(
        ["upper bound (Thm 1)", analysis.upper_delay if analysis.upper_delay is not None else "unstable"]
    )
    title = (
        f"SQ({args.choices}) with N={args.servers}, rho={args.utilization}, T={args.threshold}: "
        "mean delay (sojourn time)"
    )
    print(format_table(["method", "mean delay"], rows, title=title))
    arrival_payload = None
    if args.arrival != "poisson" or args.arrival_param:
        arrival_payload = _arrival_asymptotics(args)
    if args.json:
        payload = {
            "command": "analyze",
            "parameters": {
                "num_servers": args.servers,
                "d": args.choices,
                "utilization": args.utilization,
                "threshold": args.threshold,
                "seed": args.seed if args.simulate else None,
                "simulation_events": args.events if args.simulate else None,
            },
            "results": analysis.summary_row(),
            "upper_bound_unstable": analysis.upper_bound_unstable,
            "provenance": provenance(),
        }
        if arrival_payload is not None:
            payload["arrival_asymptotics"] = arrival_payload
        print(f"wrote {write_json(args.json, payload)}")
    return 0


def _command_figure9(args: argparse.Namespace) -> int:
    config = Figure9Config(
        utilization=args.utilization,
        choices=tuple(args.choices),
        server_counts=tuple(args.servers),
        num_events=args.events,
        replications=args.replications,
        workers=args.workers,
    )
    print(run_figure9(config).as_table())
    return 0


def _command_figure10(args: argparse.Namespace) -> int:
    config = panel_config(
        args.panel,
        simulation_events=args.events,
        replications=args.replications,
        workers=args.workers,
    )
    if args.no_simulation:
        config = replace(config, run_simulation=False)
    print(run_figure10(config).as_table())
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    config = SweepConfig(
        server_counts=tuple(args.servers),
        choices=tuple(args.choices),
        utilizations=tuple(args.utilizations),
        thresholds=tuple(args.thresholds),
        run_simulation=args.simulate,
        simulation_events=args.events,
        seed=args.seed,
    )
    result = run_sweep(config)
    print(result.as_table(title="SQ(d) finite-regime sweep"))
    if args.csv:
        print(f"wrote {result.to_csv(args.csv)}")
    if args.json:
        print(f"wrote {result.to_json(args.json)}")
    return 0


def _command_fleet(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        # Scenarios carry their own loads, horizon and warm start; reject
        # flags that would otherwise be silently ignored.
        ignored = [
            name
            for name, given in [
                ("--utilization", args.utilization is not None),
                ("--events", args.events is not None),
                ("--cold-start", args.cold_start),
            ]
            if given
        ]
        if ignored:
            raise SystemExit(
                f"repro-lb fleet: {', '.join(ignored)} cannot be combined with --scenario "
                "(the scenario defines its own load, duration and warm-up)"
            )
        scenario = get_scenario(args.scenario)
        result = run_scenario(
            scenario,
            num_servers=args.servers,
            d=args.choices,
            policy=args.policy,
            seed=args.seed,
            kernel=args.kernel,
        )
        print(result.as_table())
        print(
            f"overall mean delay {result.overall_mean_delay:.4f} over "
            f"{result.total_events} events ({result.total_time:.1f} simulated time units, "
            f"{result.kernel} kernel)"
        )
        if args.json:
            payload = {
                "command": "fleet",
                "parameters": {
                    "num_servers": args.servers,
                    "d": args.choices,
                    "policy": args.policy,
                    "scenario": args.scenario,
                    "seed": args.seed,
                    "kernel": result.kernel,
                },
                "results": {
                    "mean_delay": result.overall_mean_delay,
                    "total_events": result.total_events,
                    "total_time": result.total_time,
                    "phases": [
                        {
                            "label": label,
                            "utilization": phase.utilization,
                            "num_servers": phase.num_servers,
                            "mean_delay": phase.mean_sojourn_time,
                            "mean_queue_length": phase.mean_queue_length,
                            "num_events": phase.num_events,
                        }
                        for label, phase in zip(result.labels, result.phases)
                    ],
                },
                "provenance": provenance(),
            }
            print(f"wrote {write_json(args.json, payload)}")
        return 0

    if args.utilization is None:
        raise SystemExit("repro-lb fleet: --utilization is required for stationary runs")
    num_events = args.events if args.events is not None else max(400_000, 10 * args.servers)
    result = simulate_fleet(
        num_servers=args.servers,
        d=args.choices,
        utilization=args.utilization,
        num_events=num_events,
        seed=args.seed,
        policy=args.policy,
        start="empty" if args.cold_start else "stationary",
        kernel=args.kernel,
    )
    # Mean-field (N -> infinity) prediction per policy: power-of-d fixed
    # point for sqd/random; under JSQ queues vanish in the limit, so the
    # delay tends to the bare service time.
    meanfield = 1.0 if args.policy == "jsq" else meanfield_delay(args.utilization, result.d)
    rows = [
        ["fleet simulation", result.mean_delay],
        ["mean-field limit", meanfield],
    ]
    if args.policy == "sqd":
        asymptote = asymptotic_delay(args.utilization, args.choices)
        rows.append(["asymptotic (Eq. 16)", asymptote])
        rows.append(["relative error vs asymptotic (%)", relative_error_percent(result.mean_delay, asymptote)])
    # Wall-clock throughput is deliberately NOT part of the table: everything
    # above the "wall-clock" line must be bitwise identical across runs with
    # the same --seed (see tests/test_determinism.py).
    title = (
        f"fleet: {args.policy} with N={args.servers}, d={result.d}, rho={args.utilization} — "
        f"{result.num_events} events, {result.kernel} kernel"
    )
    print(format_table(["method", "mean delay"], rows, title=title))
    print(
        f"mean queue length {result.mean_queue_length:.4f} jobs/server over "
        f"{result.simulated_time:.2f} simulated time units"
    )
    if args.json:
        payload = {
            "command": "fleet",
            "parameters": {
                "num_servers": args.servers,
                "d": result.d,
                "utilization": args.utilization,
                "policy": args.policy,
                "num_events": num_events,
                "cold_start": args.cold_start,
                "seed": args.seed,
                "kernel": result.kernel,
            },
            "results": {
                "mean_delay": result.mean_delay,
                "mean_waiting_time": result.mean_waiting_time,
                "mean_queue_length": result.mean_queue_length,
                "mean_jobs_in_system": result.mean_jobs_in_system,
                "simulated_time": result.simulated_time,
                "num_events": result.num_events,
                "meanfield_delay": meanfield,
            },
            "provenance": provenance(),
        }
        print(f"wrote {write_json(args.json, payload)}")
    print(f"wall-clock: {result.wall_seconds:.2f}s ({result.events_per_second:,.0f} events/s)")
    return 0


def _command_ensemble(args: argparse.Namespace) -> int:
    if args.scenario is not None:
        ignored = [
            name
            for name, given in [
                ("--utilization", args.utilization is not None),
                ("--events", args.events is not None),
            ]
            if given
        ]
        if ignored:
            raise SystemExit(
                f"repro-lb ensemble: {', '.join(ignored)} cannot be combined with --scenario "
                "(the scenario defines its own load and duration)"
            )
        stationary = False
        spec = ExperimentSpec.create(
            num_servers=args.servers,
            d=args.choices,
            policy=args.policy,
            scenario=args.scenario,
            seed=args.seed if args.seed is not None else 12345,
        )
    else:
        if args.utilization is None:
            raise SystemExit("repro-lb ensemble: --utilization is required for stationary runs")
        stationary = True
        spec = ExperimentSpec.create(
            num_servers=args.servers,
            d=args.choices,
            utilization=args.utilization,
            num_events=args.events if args.events is not None else max(400_000, 10 * args.servers),
            policy=args.policy,
            seed=args.seed if args.seed is not None else 12345,
        )

    result = run_ensemble(
        config=EnsembleConfig(
            spec=spec,
            backend="fleet",
            replications=args.replications,
            workers=args.workers,
            seed=args.seed,
            confidence=args.confidence,
            target_relative_half_width=args.target_precision,
            max_replications=args.max_replications,
        )
    )
    print(result.as_table())
    delay = result.delay
    print(f"mean delay {delay}")
    if stationary and args.policy in ("sqd", "random"):
        d = 1 if args.policy == "random" else args.choices
        limit = meanfield_delay(args.utilization, d)
        low, high = delay.confidence_interval()
        if math.isfinite(low) and math.isfinite(high):
            verdict = "inside" if low <= limit <= high else "outside"
            print(
                f"mean-field limit {limit:.6g} — {verdict} the {delay.confidence:.0%} CI "
                f"[{low:.6g}, {high:.6g}]"
            )
        else:
            print(
                f"mean-field limit {limit:.6g} — no CI with a single replication "
                "(use --replications 2 or more)"
            )
    if args.jsonl:
        store = ResultStore(args.jsonl)
        written = store.append_ensemble(result)
        print(f"wrote {written} replication records to {store.path}")
    print(
        f"wall-clock: {result.wall_seconds:.2f}s for {result.replications} replications "
        f"on {args.workers} worker(s)"
    )
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.traces import (
        ArrivalTrace,
        TraceError,
        TraceFitError,
        fit_arrival,
        summarize_trace,
    )

    try:
        trace = ArrivalTrace.load(args.trace)
    except TraceError as error:
        raise SystemExit(f"repro-lb trace {args.trace_command}: {error}")
    trace_path = Path(args.trace).resolve()

    if args.trace_command == "stats":
        try:
            summary = summarize_trace(trace, lags=args.lags)
        except TraceError as error:
            raise SystemExit(f"repro-lb trace stats: {error}")
        print(summary.as_table(title=f"{trace_path.name}: burstiness summary"))
        if trace.meta:
            for key in sorted(trace.meta):
                print(f"meta {key}: {trace.meta[key]}")
        if args.json:
            payload = {
                "command": "trace stats",
                "trace": str(trace_path),
                "meta": trace.meta,
                "results": summary.to_dict(),
                "provenance": provenance(),
            }
            print(f"wrote {write_json(args.json, payload)}")
        return 0

    if args.trace_command == "fit":
        try:
            fit = fit_arrival(trace, family=args.family)
            spec = fit.experiment_spec(
                num_servers=args.servers,
                d=args.choices,
                policy=args.policy,
                service_rate=args.service_rate,
                num_jobs=args.jobs,
                seed=args.seed,
            )
        except (TraceFitError, TraceError, SpecError) as error:
            raise SystemExit(f"repro-lb trace fit: {error}")
        print(fit.as_table())
        print(f"spec: {spec.describe()} (rho = {spec.system.utilization:.6g})")
        if args.spec_out:
            spec_path = Path(args.spec_out)
            spec_path.parent.mkdir(parents=True, exist_ok=True)
            spec_path.write_text(spec.to_json(indent=2) + "\n", encoding="utf-8")
            print(f"wrote {spec_path}")
        if args.json:
            payload = {
                "command": "trace fit",
                "trace": str(trace_path),
                "family": fit.family,
                "converged": fit.converged,
                "target": dict(fit.target),
                "achieved": dict(fit.achieved),
                "spec": spec.to_dict(),
                "provenance": provenance(),
            }
            print(f"wrote {write_json(args.json, payload)}")
        return 0

    # trace run: replay through the cluster DES via repro.run.
    mu = args.service_rate
    if args.utilization is not None:
        utilization = args.utilization
    else:
        try:
            utilization = trace.rate / (args.servers * mu)
        except TraceError as error:
            raise SystemExit(f"repro-lb trace run: {error}")
        if not 0.0 < utilization < 1.0:
            raise SystemExit(
                f"repro-lb trace run: the trace's rate implies rho = {utilization:.4g} "
                f"on N={args.servers} at mu={mu:g}; pass --utilization (the replay is "
                "rescaled) or resize the pool"
            )
    try:
        spec = ExperimentSpec.create(
            num_servers=args.servers,
            d=args.choices,
            utilization=utilization,
            service_rate=mu,
            arrival="trace",
            arrival_params={"path": str(trace_path)},
            policy=args.policy,
            num_jobs=args.jobs,
            seed=args.seed,
        )
        result = run(
            spec,
            backend="cluster",
            replications=args.replications,
            workers=args.workers,
        )
    except SpecError as error:
        raise SystemExit(f"repro-lb trace run: {error}")
    print(result.as_table())
    print(f"mean delay {result}")
    if args.json:
        print(f"wrote {result.write_json(args.json)}")
    print(f"wall-clock: {result.wall_seconds:.2f}s on {args.workers} worker(s)")
    return 0


def _raise_keyboard_interrupt(signum, frame):  # noqa: ARG001 - handler shape
    raise KeyboardInterrupt


def _command_campaign(args: argparse.Namespace) -> int:
    from repro.campaigns import (
        CampaignError,
        campaign_status,
        resume_campaign,
        run_campaign,
    )
    from repro.campaigns.manifest import MANIFEST_FILENAME
    from repro.ensemble.grid import GridConfig

    directory = Path(args.dir)
    if args.campaign_command in ("run", "resume"):
        # SIGTERM (systemd stop, `timeout`, a batch scheduler preemption)
        # gets the same graceful path as Ctrl-C: the scheduler stops
        # feeding, workers finish their task in flight, and the campaign
        # directory is left cleanly resumable.
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    try:
        if args.campaign_command == "run":
            if (directory / MANIFEST_FILENAME).exists():
                raise SystemExit(
                    f"repro-lb campaign run: {directory} already holds a campaign — "
                    "use `repro-lb campaign resume --dir ...` to continue it, or pick "
                    "a fresh directory"
                )
            grid = GridConfig(
                server_counts=tuple(args.servers),
                choices=tuple(args.choices),
                utilizations=tuple(args.utilizations),
                policy=args.policy,
                num_events=args.events,
                replications=args.replications,
                workers=args.workers,
                seed=args.seed,
                confidence=args.confidence,
            )
            result = run_campaign(
                grid=grid,
                directory=directory,
                target_relative_half_width=args.target_precision,
                max_replications=args.max_replications,
                batch_size=args.batch_size,
                task_timeout_seconds=args.task_timeout,
                quarantine_after=args.quarantine_after,
                max_tasks=args.max_tasks,
            )
        elif args.campaign_command == "resume":
            result = resume_campaign(
                directory, workers=args.workers, max_tasks=args.max_tasks
            )
        else:  # status
            snapshot = campaign_status(directory)
            print(snapshot.as_table())
            if args.json:
                payload = {
                    "directory": str(snapshot.directory),
                    "grid_digest": snapshot.grid_digest,
                    "counts": dict(snapshot.counts),
                    "complete": snapshot.complete,
                    "status": snapshot.status,
                    "quarantined": list(snapshot.quarantined),
                    "points": [point.summary_row() for point in snapshot.points],
                }
                print(f"wrote {write_json(args.json, payload)}")
            return 0
    except (SpecError, CampaignError) as error:
        raise SystemExit(f"repro-lb campaign {args.campaign_command}: {error}")
    print(result.as_table())
    if not result.complete:
        print(
            f"interrupted after {result.executed_tasks} task(s); "
            f"resume with: repro-lb campaign resume --dir {directory}"
        )
    elif result.quarantined:
        print(
            f"degraded: {len(result.quarantined)} poison task(s) quarantined "
            f"(details in {directory / 'quarantined.jsonl'})"
        )
    print(f"wall-clock: {result.wall_seconds:.2f}s")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-lb`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _command_run,
        "backends": _command_backends,
        "analyze": _command_analyze,
        "figure9": _command_figure9,
        "figure10": _command_figure10,
        "sweep": _command_sweep,
        "fleet": _command_fleet,
        "ensemble": _command_ensemble,
        "trace": _command_trace,
        "campaign": _command_campaign,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
