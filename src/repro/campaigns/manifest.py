"""Campaign manifest: the durable identity of a sweep campaign.

``manifest.json`` is written once, atomically, when a campaign directory is
created, and is the *only* input a resume needs besides the journal and the
record store: it carries the full grid configuration (so the content-
addressed task set can be regenerated), the adaptive-replication policy, a
digest of the grid (so a resume against a *different* grid fails loudly
instead of silently mixing two experiments), and provenance (git describe,
package version, python, creation timestamp).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.api.serialize import atomic_write_json, jsonable
from repro.api.spec import SpecError, WorkloadSpec
from repro.faults import maybe_fire
from repro.ensemble.grid import GridConfig

__all__ = [
    "CampaignManifest",
    "MANIFEST_FILENAME",
    "grid_digest",
    "grid_from_dict",
    "grid_to_dict",
]

MANIFEST_FILENAME = "manifest.json"

#: Manifest schema version; bump on incompatible layout changes.
CAMPAIGN_FORMAT = 1


def grid_to_dict(config: GridConfig) -> Dict[str, Any]:
    """A JSON-round-trippable view of a :class:`GridConfig`."""
    return {
        "server_counts": [int(n) for n in config.server_counts],
        "choices": [int(d) for d in config.choices],
        "utilizations": [float(u) for u in config.utilizations],
        "scenarios": list(config.scenarios),
        "policy": config.policy,
        "num_events": config.num_events,
        "replications": config.replications,
        "workers": config.workers,
        "seed": config.seed,
        "confidence": config.confidence,
        "bounds": config.bounds,
        "threshold": config.threshold,
        "kernel": config.kernel,
        "workloads": [workload.to_dict() for workload in config.workloads],
        "num_jobs": config.num_jobs,
    }


def grid_from_dict(payload: Mapping[str, Any]) -> GridConfig:
    """Rebuild a :class:`GridConfig` from :func:`grid_to_dict` output."""
    kwargs = dict(payload)
    kwargs["server_counts"] = tuple(kwargs.get("server_counts", ()))
    kwargs["choices"] = tuple(kwargs.get("choices", ()))
    kwargs["utilizations"] = tuple(kwargs.get("utilizations", ()))
    kwargs["scenarios"] = tuple(kwargs.get("scenarios", ()))
    kwargs["workloads"] = tuple(
        WorkloadSpec.from_dict(workload) for workload in kwargs.get("workloads", ())
    )
    return GridConfig(**kwargs)


def grid_digest(config: GridConfig) -> str:
    """Content digest of the grid: the campaign's experiment identity.

    Deliberately excludes ``workers`` — how many processes chew on the queue
    is an operational knob, not part of what is being measured, and a resume
    may legitimately use a different worker count.
    """
    payload = grid_to_dict(config)
    payload.pop("workers", None)
    canonical = json.dumps(jsonable(payload), sort_keys=True).encode()
    return hashlib.sha256(canonical).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignManifest:
    """Everything a resume needs to regenerate the campaign's task set."""

    grid: Dict[str, Any]
    grid_digest: str
    target_relative_half_width: Optional[float] = None
    max_replications: int = 64
    batch_size: int = 4
    lease_seconds: float = 300.0
    task_timeout_seconds: Optional[float] = None
    quarantine_after: int = 3
    provenance: Dict[str, Any] = field(default_factory=dict)
    format: int = CAMPAIGN_FORMAT

    def grid_config(self, workers: Optional[int] = None) -> GridConfig:
        """The reconstructed grid (optionally overriding the worker count)."""
        payload = dict(self.grid)
        if workers is not None:
            payload["workers"] = workers
        return grid_from_dict(payload)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "grid": self.grid,
            "grid_digest": self.grid_digest,
            "target_relative_half_width": self.target_relative_half_width,
            "max_replications": self.max_replications,
            "batch_size": self.batch_size,
            "lease_seconds": self.lease_seconds,
            "task_timeout_seconds": self.task_timeout_seconds,
            "quarantine_after": self.quarantine_after,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignManifest":
        if payload.get("format", CAMPAIGN_FORMAT) > CAMPAIGN_FORMAT:
            raise SpecError(
                f"campaign manifest format {payload.get('format')} is newer than "
                f"this package understands ({CAMPAIGN_FORMAT}); upgrade repro"
            )
        return cls(
            grid=dict(payload["grid"]),
            grid_digest=payload["grid_digest"],
            target_relative_half_width=payload.get("target_relative_half_width"),
            max_replications=int(payload.get("max_replications", 64)),
            batch_size=int(payload.get("batch_size", 4)),
            lease_seconds=float(payload.get("lease_seconds", 300.0)),
            task_timeout_seconds=(
                None
                if payload.get("task_timeout_seconds") is None
                else float(payload["task_timeout_seconds"])
            ),
            quarantine_after=int(payload.get("quarantine_after", 3)),
            provenance=dict(payload.get("provenance", {})),
            format=int(payload.get("format", CAMPAIGN_FORMAT)),
        )

    def write(self, directory: Union[str, Path]) -> Path:
        """Atomically write ``manifest.json`` through the shared
        write-fsync-rename helper, so a crash at any instant leaves either
        no manifest or a complete one — never a half-written file."""
        directory = Path(directory)
        target = directory / MANIFEST_FILENAME
        maybe_fire("manifest.write", key=self.grid_digest)
        return atomic_write_json(target, self.to_dict())

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "CampaignManifest":
        target = Path(directory) / MANIFEST_FILENAME
        if not target.exists():
            raise SpecError(
                f"no campaign manifest at {target} — "
                "is this a campaign directory created by `repro-lb campaign run`?"
            )
        return cls.from_dict(json.loads(target.read_text(encoding="utf-8")))
