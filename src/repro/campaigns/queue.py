"""Durable work queue: an append-only journal of task-state transitions.

The queue never stores task *payloads* — a campaign task is content-
addressed (``"<point digest>:<replication>"``, see
:class:`repro.ensemble.grid.PointTask`), so the journal only records ids and
transitions, and the scheduler regenerates specs and seeds deterministically
from the campaign manifest on every (re)start.  Four event kinds:

``enqueue``
    The task exists and is runnable.
``lease``
    A worker claimed it, with a heartbeat-stamped deadline.  Leases are
    *advisory*: a live worker past its deadline keeps its task (simulations
    legitimately run long); a dead or expired-and-presumed-dead worker's
    leases are reclaimed and re-enqueued at the front of the queue.
``done``
    The task's record was durably appended to the record store.  The record
    append always happens *before* the ``done`` event, so a crash between
    the two merely re-runs the task — producing a duplicate record with
    identical simulation content (content-addressed seeds), which readers
    de-duplicate.
``release``
    A lease was reclaimed; the task is runnable again.
``quarantine``
    The task was declared poison (it killed too many workers) and removed
    from circulation without a record: it is neither pending nor done, and
    the campaign that owns it completes ``degraded``.

State is rebuilt by replaying the journal.  A torn trailing line (crash
mid-append) is repaired on open (:func:`repro.ensemble.results.repair_jsonl`);
every lease held when a previous process died is stale by construction and
is reclaimed during replay on request.

Journal appends are wrapped in seeded-backoff retries
(:mod:`repro.utils.retry`): a transient I/O error costs a few milliseconds,
not the campaign.  Each append passes through the ``"journal.append"``
fault-injection hook (:mod:`repro.faults`), a no-op unless a chaos plan is
armed.
"""

from __future__ import annotations

import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.api.serialize import jsonl_line
from repro.ensemble.results import iter_jsonl, repair_jsonl
from repro.faults import maybe_fire
from repro.utils.retry import RetryPolicy, retry_call

__all__ = ["QueueError", "TaskQueue"]


class QueueError(RuntimeError):
    """An impossible task-state transition (double lease, unknown id, ...)."""


class TaskQueue:
    """Durable FIFO task queue with advisory leases, backed by one journal.

    Parameters
    ----------
    journal_path : str or Path
        The append-only journal.  Created (with parents) on first use; an
        existing journal is repaired (torn tail truncated) and replayed.
    reclaim_stale : bool
        Reclaim every lease found during replay (the resume path: leases of
        a dead process are stale by definition).  Default ``True``.
    read_only : bool
        Replay the journal without repairing or opening it for append — the
        inspection path (``repro-lb campaign status``) must never write to a
        campaign directory it does not own.
    """

    def __init__(
        self,
        journal_path: Union[str, Path],
        reclaim_stale: bool = True,
        read_only: bool = False,
    ):
        self.path = Path(journal_path)
        self.read_only = read_only
        self._pending: Deque[str] = deque()
        self._leases: Dict[str, Tuple[str, float]] = {}
        self._done: Set[str] = set()
        self._known: Set[str] = set()
        self._quarantined: Set[str] = set()
        self._retry = RetryPolicy()
        self._handle = None
        if not read_only:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            repair_jsonl(self.path)
        if self.path.exists():
            self._replay()
        if not read_only:
            self._handle = self.path.open("a", encoding="utf-8")
        if reclaim_stale and not read_only and self._leases:
            for task_id in list(self._leases):
                self.release(task_id)

    # ------------------------------------------------------------------ #
    # Journal plumbing
    # ------------------------------------------------------------------ #
    def _replay(self) -> None:
        for event in iter_jsonl(self.path):
            kind = event.get("event")
            task_id = event.get("task")
            if kind == "enqueue":
                # Idempotent: a retried append may have journaled the same
                # enqueue twice (the write landed, the flush reported an
                # error); the task must still be pending exactly once.
                if task_id in self._known:
                    continue
                self._known.add(task_id)
                self._pending.append(task_id)
            elif kind == "lease":
                if task_id in self._pending:
                    self._pending.remove(task_id)
                self._leases[task_id] = (event.get("worker", "?"), float(event.get("deadline", 0.0)))
            elif kind == "done":
                self._leases.pop(task_id, None)
                if task_id in self._pending:
                    self._pending.remove(task_id)
                # A completion that raced a quarantine proves the task was
                # not poison after all: done wins, the sets stay disjoint.
                self._quarantined.discard(task_id)
                self._done.add(task_id)
            elif kind == "release":
                if self._leases.pop(task_id, None) is not None:
                    self._pending.appendleft(task_id)
            elif kind == "quarantine":
                self._leases.pop(task_id, None)
                if task_id in self._pending:
                    self._pending.remove(task_id)
                self._quarantined.add(task_id)
            # Unknown event kinds are skipped: newer writers must not brick
            # older readers of a long-lived campaign directory.

    def _journal(self, payload: Dict[str, Any]) -> None:
        if self._handle is None:
            if self.read_only:
                raise QueueError("read-only queue: state transitions are not allowed")
            raise QueueError("queue is closed")
        line = jsonl_line(payload) + "\n"

        def append() -> None:
            maybe_fire(
                "journal.append",
                key=str(payload.get("task", "")),
                handle=self._handle,
                line=line,
            )
            self._handle.write(line)
            self._handle.flush()

        retry_call(append, policy=self._retry, describe="journal append")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TaskQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def enqueue(self, task_ids: Iterable[str]) -> int:
        """Make tasks runnable (ids already seen — even done — are skipped,
        which is what lets a resume idempotently re-enqueue the initial
        batch)."""
        added = 0
        for task_id in task_ids:
            if task_id in self._known:
                continue
            self._known.add(task_id)
            self._journal({"event": "enqueue", "task": task_id})
            self._pending.append(task_id)
            added += 1
        return added

    def lease(
        self,
        worker: str,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> Optional[str]:
        """Claim the next runnable task for ``worker``; ``None`` when drained."""
        if not self._pending:
            return None
        now = time.time() if now is None else now
        task_id = self._pending.popleft()
        deadline = now + lease_seconds
        self._journal(
            {"event": "lease", "task": task_id, "worker": worker, "deadline": deadline}
        )
        self._leases[task_id] = (worker, deadline)
        return task_id

    def heartbeat(
        self, worker: str, lease_seconds: float, now: Optional[float] = None
    ) -> None:
        """Extend every lease ``worker`` holds (in memory only — heartbeats
        are liveness hints, not durable state; a resumed campaign treats all
        previous leases as stale regardless)."""
        now = time.time() if now is None else now
        for task_id, (holder, _) in self._leases.items():
            if holder == worker:
                self._leases[task_id] = (holder, now + lease_seconds)

    def complete(self, task_id: str) -> None:
        """Mark a task done (its record must already be durably stored)."""
        if task_id in self._done:
            return
        if task_id not in self._known:
            raise QueueError(f"complete() of unknown task {task_id!r}")
        self._journal({"event": "done", "task": task_id})
        self._leases.pop(task_id, None)
        if task_id in self._pending:
            self._pending.remove(task_id)
        self._quarantined.discard(task_id)
        self._done.add(task_id)

    def release(self, task_id: str) -> None:
        """Reclaim one lease: the task goes back to the *front* of the queue
        (it was enqueued before everything currently pending)."""
        if self._leases.pop(task_id, None) is None:
            raise QueueError(f"release() of unleased task {task_id!r}")
        self._journal({"event": "release", "task": task_id})
        self._pending.appendleft(task_id)

    def quarantine(self, task_id: str) -> None:
        """Remove a poison task from circulation (neither pending nor done).

        Idempotent.  The task keeps its journal history, so a resume knows
        it was quarantined rather than lost; it will never be leased again
        and never counts as outstanding.
        """
        if task_id in self._quarantined:
            return
        if task_id not in self._known:
            raise QueueError(f"quarantine() of unknown task {task_id!r}")
        if task_id in self._done:
            raise QueueError(f"quarantine() of completed task {task_id!r}")
        self._journal({"event": "quarantine", "task": task_id})
        self._leases.pop(task_id, None)
        if task_id in self._pending:
            self._pending.remove(task_id)
        self._quarantined.add(task_id)

    def reclaim(
        self,
        now: Optional[float] = None,
        dead_workers: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Reclaim leases that expired or belong to dead workers.

        Returns the reclaimed task ids (re-enqueued at the front).  This is
        the work-stealing path: an idle worker leases reclaimed tasks before
        anything else.
        """
        now = time.time() if now is None else now
        dead = set(dead_workers or ())
        expired = [
            task_id
            for task_id, (worker, deadline) in self._leases.items()
            if worker in dead or deadline < now
        ]
        for task_id in expired:
            self.release(task_id)
        return expired

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def is_done(self, task_id: str) -> bool:
        return task_id in self._done

    def is_quarantined(self, task_id: str) -> bool:
        return task_id in self._quarantined

    def quarantined_ids(self) -> Set[str]:
        """Tasks removed from circulation as poison (a copy)."""
        return set(self._quarantined)

    def known_ids(self) -> Set[str]:
        """Every task id ever enqueued (a copy; includes done tasks)."""
        return set(self._known)

    def lease_of(self, task_id: str) -> Optional[Tuple[str, float]]:
        """``(worker, deadline)`` of a leased task, else ``None``."""
        return self._leases.get(task_id)

    def leased_by(self, worker: str) -> List[str]:
        return [task_id for task_id, (holder, _) in self._leases.items() if holder == worker]

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def leased_count(self) -> int:
        return len(self._leases)

    @property
    def done_count(self) -> int:
        return len(self._done)

    @property
    def quarantined_count(self) -> int:
        return len(self._quarantined)

    @property
    def outstanding(self) -> int:
        """Tasks still owed work (pending + leased; quarantined tasks are
        out of circulation and owed nothing)."""
        return len(self._pending) + len(self._leases)

    def counts(self) -> Dict[str, int]:
        return {
            "pending": self.pending_count,
            "leased": self.leased_count,
            "done": self.done_count,
            "quarantined": self.quarantined_count,
            "total": len(self._known),
        }
