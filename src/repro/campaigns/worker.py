"""Campaign worker processes: lease, simulate, report, heartbeat.

A worker is a plain ``multiprocessing.Process`` running
:func:`worker_loop`: it pulls ``(PointTask, attempt)`` items from its inbox,
executes each replication through the registered backend (exactly the code
path :mod:`repro.ensemble.runner` uses, so a campaign record is bitwise
identical to an ensemble record of the same seed), and reports ``claim`` /
``done`` messages on the shared outbox.  The ``claim`` message doubles as
the heartbeat: the scheduler stamps the lease deadline from it.

Workers receive only picklable plain data (frozen specs, integer seeds) and
never open the journal or the record store — all durable writes go through
the scheduler process, which keeps the on-disk state single-writer and
crash-consistent.

**Graceful shutdown.**  SIGTERM and SIGINT set a stop flag instead of
killing the process mid-task: the replication in flight runs to completion
and is reported, then the worker says ``bye`` and exits cleanly.  The
scheduler releases any leases a departed worker still held, so a Ctrl-C'd
campaign resumes without losing (or double-counting) work.

**Fault injection.**  Three hook sites bracket the task lifecycle —
``worker.claim`` (after dequeue, before the claim message), ``worker.task``
(before the simulation) and ``worker.done`` (after the simulation, before
the completion message).  Hook keys are attempt-stamped
(``"<task_id>#<attempt>"``), so a chaos plan can kill the first attempt of
a task deterministically while letting its retry through — fault budgets
(``times=``) live in per-process memory and do not survive the respawn.

**Backend degradation.**  :func:`execute_task` walks the same fallback
chain as :func:`repro.api.runner.run`: a typed runtime failure (never a
``SpecError``) degrades to the next capable estimator backend, and the
record carries ``degraded_from`` so the ensemble JSONL preserves what
actually ran.

Test hooks (environment variables, inert in production):

``REPRO_CAMPAIGN_TASK_DELAY``
    Float seconds slept before each task — widens the window an
    interruption test needs to land a SIGKILL mid-sweep.
``REPRO_CAMPAIGN_CRASH_AFTER`` / ``REPRO_CAMPAIGN_CRASH_WORKER``
    Makes the matching worker (default ``"w0"``) SIGKILL itself after
    executing N tasks — *after* the simulation but *before* reporting, the
    worst-case window the lease-reclaim machinery must cover.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import time
from typing import Any, Dict, Optional

from repro.ensemble.grid import PointTask
from repro.faults import installed_from_env, maybe_fire

__all__ = ["execute_task", "worker_loop"]

#: Outbox message kinds (tuples keep the queue payloads picklable and tiny).
MSG_CLAIM = "claim"
MSG_DONE = "done"
MSG_BYE = "bye"


def execute_task(task: PointTask) -> Dict[str, Any]:
    """Run one replication task; returns the plain replication record.

    Identical record shape to
    :func:`repro.ensemble.runner._execute_replication` — replication index,
    derived seed, every scalar metric, wall seconds — plus the task's content
    address, so the record can be routed back to its grid point by readers
    that only see the JSONL store.

    When the task's backend raises a recoverable runtime failure (the QBD
    bound model turning unstable, a linear solve breaking down) the task
    degrades along :func:`repro.api.backends.fallback_chain`; the record
    then carries the backend that actually produced it plus a
    ``degraded_from`` trail.
    """
    from repro.api.backends import fallback_chain, get_backend, recoverable_backend_errors

    started = time.perf_counter()
    engine = get_backend(task.backend)
    recoverable = recoverable_backend_errors()
    degraded = []
    while True:
        try:
            metrics = engine.run_once(task.spec, task.seed)
            break
        except recoverable:
            chain = fallback_chain(task.spec, exclude={engine.name, *degraded})
            if not chain:
                raise
            degraded.append(engine.name)
            engine = chain[0]
    record: Dict[str, Any] = {"replication": task.replication, "seed": task.seed}
    record.update(metrics)
    if degraded:
        record["backend"] = engine.name
        record["degraded_from"] = ",".join(degraded)
    record["wall_seconds"] = time.perf_counter() - started
    return record


def _test_hooks(worker_id: str):
    """Resolve the crash/delay test hooks once per worker."""
    delay = float(os.environ.get("REPRO_CAMPAIGN_TASK_DELAY", "0") or 0)
    crash_after: Optional[int] = None
    raw = os.environ.get("REPRO_CAMPAIGN_CRASH_AFTER")
    if raw and worker_id == os.environ.get("REPRO_CAMPAIGN_CRASH_WORKER", "w0"):
        crash_after = int(raw)
    return delay, crash_after


def worker_loop(worker_id: str, inbox, outbox) -> None:
    """Process tasks until a ``None`` sentinel (or a termination signal).

    Parameters
    ----------
    worker_id : str
        Stable name used in lease journal entries and outbox messages.
    inbox : multiprocessing.Queue
        This worker's private task queue (``(PointTask, attempt)`` pairs or
        ``None``).
    outbox : multiprocessing.Queue
        Shared result queue back to the scheduler.
    """
    # Re-resolve REPRO_FAULT_PLAN: under a spawn start method the parent's
    # installed plan is not inherited, and chaos must reach workers too.
    installed_from_env()

    stopping = []

    def request_stop(signum, frame):  # noqa: ARG001 - signal handler shape
        stopping.append(signum)

    signal.signal(signal.SIGTERM, request_stop)
    signal.signal(signal.SIGINT, request_stop)

    delay, crash_after = _test_hooks(worker_id)
    executed = 0
    while True:
        if stopping:
            # Graceful exit: the task in flight (if any) already completed
            # and was reported; leases we still hold are released by the
            # scheduler when it sees the bye (or reaps the dead process).
            outbox.put((MSG_BYE, worker_id))
            return
        try:
            item = inbox.get(timeout=0.2)
        except queue_module.Empty:
            continue
        if item is None:
            outbox.put((MSG_BYE, worker_id))
            return
        task, attempt = item
        fault_key = f"{task.task_id}#{attempt}"
        maybe_fire("worker.claim", key=fault_key)
        outbox.put((MSG_CLAIM, worker_id, task.task_id))
        if delay:
            time.sleep(delay)
        maybe_fire("worker.task", key=fault_key)
        record = execute_task(task)
        executed += 1
        if crash_after is not None and executed >= crash_after:
            # Die the hard way, mid-window: work done, completion unreported.
            os.kill(os.getpid(), signal.SIGKILL)
        maybe_fire("worker.done", key=fault_key)
        outbox.put((MSG_DONE, worker_id, task.task_id, record))
