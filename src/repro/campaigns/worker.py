"""Campaign worker processes: lease, simulate, report, heartbeat.

A worker is a plain ``multiprocessing.Process`` running
:func:`worker_loop`: it pulls :class:`~repro.ensemble.grid.PointTask` items
from its inbox, executes each replication through the registered backend
(exactly the code path :mod:`repro.ensemble.runner` uses, so a campaign
record is bitwise identical to an ensemble record of the same seed), and
reports ``claim`` / ``done`` messages on the shared outbox.  The ``claim``
message doubles as the heartbeat: the scheduler stamps the lease deadline
from it.

Workers receive only picklable plain data (frozen specs, integer seeds) and
never open the journal or the record store — all durable writes go through
the scheduler process, which keeps the on-disk state single-writer and
crash-consistent.

Test hooks (environment variables, inert in production):

``REPRO_CAMPAIGN_TASK_DELAY``
    Float seconds slept before each task — widens the window an
    interruption test needs to land a SIGKILL mid-sweep.
``REPRO_CAMPAIGN_CRASH_AFTER`` / ``REPRO_CAMPAIGN_CRASH_WORKER``
    Makes the matching worker (default ``"w0"``) SIGKILL itself after
    executing N tasks — *after* the simulation but *before* reporting, the
    worst-case window the lease-reclaim machinery must cover.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Dict, Optional

from repro.ensemble.grid import PointTask

__all__ = ["execute_task", "worker_loop"]

#: Outbox message kinds (tuples keep the queue payloads picklable and tiny).
MSG_CLAIM = "claim"
MSG_DONE = "done"
MSG_BYE = "bye"


def execute_task(task: PointTask) -> Dict[str, Any]:
    """Run one replication task; returns the plain replication record.

    Identical record shape to
    :func:`repro.ensemble.runner._execute_replication` — replication index,
    derived seed, every scalar metric, wall seconds — plus the task's content
    address, so the record can be routed back to its grid point by readers
    that only see the JSONL store.
    """
    from repro.api.backends import get_backend

    started = time.perf_counter()
    metrics = get_backend(task.backend).run_once(task.spec, task.seed)
    record: Dict[str, Any] = {"replication": task.replication, "seed": task.seed}
    record.update(metrics)
    record["wall_seconds"] = time.perf_counter() - started
    return record


def _test_hooks(worker_id: str):
    """Resolve the crash/delay test hooks once per worker."""
    delay = float(os.environ.get("REPRO_CAMPAIGN_TASK_DELAY", "0") or 0)
    crash_after: Optional[int] = None
    raw = os.environ.get("REPRO_CAMPAIGN_CRASH_AFTER")
    if raw and worker_id == os.environ.get("REPRO_CAMPAIGN_CRASH_WORKER", "w0"):
        crash_after = int(raw)
    return delay, crash_after


def worker_loop(worker_id: str, inbox, outbox) -> None:
    """Process tasks until a ``None`` sentinel arrives.

    Parameters
    ----------
    worker_id : str
        Stable name used in lease journal entries and outbox messages.
    inbox : multiprocessing.Queue
        This worker's private task queue (``PointTask`` items or ``None``).
    outbox : multiprocessing.Queue
        Shared result queue back to the scheduler.
    """
    delay, crash_after = _test_hooks(worker_id)
    executed = 0
    while True:
        task = inbox.get()
        if task is None:
            outbox.put((MSG_BYE, worker_id))
            return
        outbox.put((MSG_CLAIM, worker_id, task.task_id))
        if delay:
            time.sleep(delay)
        record = execute_task(task)
        executed += 1
        if crash_after is not None and executed >= crash_after:
            # Die the hard way, mid-window: work done, completion unreported.
            os.kill(os.getpid(), signal.SIGKILL)
        outbox.put((MSG_DONE, worker_id, task.task_id, record))
