"""Durable, sharded, resumable sweep campaigns.

``repro.campaigns`` turns a :class:`~repro.ensemble.grid.GridConfig` into a
durable on-disk work queue of content-addressed replication tasks, drives it
with leased worker processes, folds results through constant-memory
streaming accumulators, and applies the relative-precision stopping rule
*per grid point* — extra replications go where confidence intervals are
widest, converged points retire early.  A campaign interrupted at any
instant (including SIGKILL) resumes from its directory and finishes with
results bitwise identical to an uninterrupted run.

See ``docs/campaigns.md`` for the full story, ``repro-lb campaign --help``
for the CLI.
"""

from repro.campaigns.accumulators import PointAccumulator, StreamingMoments
from repro.campaigns.manifest import (
    CampaignManifest,
    grid_digest,
    grid_from_dict,
    grid_to_dict,
)
from repro.campaigns.queue import QueueError, TaskQueue
from repro.campaigns.scheduler import (
    CampaignConfig,
    CampaignError,
    CampaignPoint,
    CampaignResult,
    CampaignStatus,
    campaign_fingerprint,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.campaigns.worker import execute_task, worker_loop

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignManifest",
    "CampaignPoint",
    "CampaignResult",
    "CampaignStatus",
    "PointAccumulator",
    "QueueError",
    "StreamingMoments",
    "TaskQueue",
    "campaign_fingerprint",
    "campaign_status",
    "execute_task",
    "grid_digest",
    "grid_from_dict",
    "grid_to_dict",
    "resume_campaign",
    "run_campaign",
    "worker_loop",
]
