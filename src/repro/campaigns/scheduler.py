"""Campaign scheduler: durable, sharded, resumable sweeps with adaptive
replication allocation.

A *campaign* is a :class:`~repro.ensemble.grid.GridConfig` turned into a
durable on-disk work queue of content-addressed ``(point, replication)``
tasks and driven to completion by worker processes.  The campaign directory
is the single source of truth::

    <directory>/
        manifest.json      grid config + digest, adaptive policy, provenance
        journal.jsonl      append-only task-state transitions (the queue)
        records.jsonl      append-only replication records (the results)
        quarantined.jsonl  poison-task details (only written when degraded)

Three properties the flat in-memory grid runner cannot offer:

* **Durability / resumability.**  Every state transition and every record is
  appended (and flushed) before it is acted on, so a campaign killed at any
  instant — including SIGKILL mid-append — resumes from what is on disk:
  done tasks are skipped, stale leases reclaimed, a torn trailing line
  repaired, and the re-run of an in-flight task regenerates the *identical*
  record from its content-addressed seed.  The final per-point estimates of
  an interrupted-and-resumed campaign are bitwise identical to an
  uninterrupted run.

* **Adaptive replication allocation.**  With a target relative precision,
  the per-point Student-t stopping rule (the same rule
  :mod:`repro.ensemble.runner` applies to one ensemble) decides *per grid
  point* whether to retire it or enqueue another batch — replications are
  spent where confidence intervals are widest (high-``rho`` points, bursty
  workloads) instead of uniformly.

* **O(points) memory.**  Records are folded through constant-memory
  streaming accumulators (:mod:`repro.campaigns.accumulators`) the moment
  they arrive; no per-job list ever exists, so the reachable campaign size
  is bounded by disk, not RAM.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.api.serialize import jsonl_line
from repro.api.spec import SpecError
from repro.campaigns.accumulators import PointAccumulator
from repro.campaigns.manifest import CampaignManifest, grid_digest, grid_to_dict
from repro.campaigns.queue import TaskQueue
from repro.campaigns.worker import MSG_BYE, MSG_CLAIM, MSG_DONE, execute_task, worker_loop
from repro.faults import maybe_fire
from repro.ensemble.grid import GridConfig, PointTask, point_digest, point_seed, point_tasks, task_id_for
from repro.ensemble.results import ResultStore, provenance, repair_jsonl
from repro.ensemble.runner import DEFAULT_BATCH_SIZE
from repro.utils.tables import format_table
from repro.utils.validation import check_integer, check_positive

__all__ = [
    "CampaignConfig",
    "CampaignError",
    "CampaignPoint",
    "CampaignResult",
    "CampaignStatus",
    "campaign_fingerprint",
    "campaign_status",
    "resume_campaign",
    "run_campaign",
]

JOURNAL_FILENAME = "journal.jsonl"
RECORDS_FILENAME = "records.jsonl"
QUARANTINE_FILENAME = "quarantined.jsonl"

#: Tasks kept in flight per worker: one executing, one queued behind it so a
#: worker never idles waiting for the scheduler's next lease round-trip.
PREFETCH = 2

#: The scheduler gives up after this many worker deaths per started worker —
#: a crash *loop* is a bug, not an operational hiccup.
MAX_RESPAWNS_PER_WORKER = 3


class CampaignError(RuntimeError):
    """Unrecoverable campaign failure (crash loops, directory mismatch)."""


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: a sweep grid, a directory, and an allocation policy.

    Parameters
    ----------
    grid : GridConfig
        The swept experiment axes.  ``grid.replications`` is the *initial*
        batch per point; ``grid.workers`` the worker process count.
    directory : Path
        Campaign home (manifest, journal, records).  Created on first run;
        must not already hold a different campaign.
    target_relative_half_width : float or None
        Per-point relative-precision target.  ``None`` runs exactly the
        initial batch everywhere (a durable, resumable plain grid).
    max_replications : int
        Per-point replication cap for the adaptive mode.
    batch_size : int
        Replications enqueued per adaptive extension round.
    lease_seconds : float
        Advisory lease duration stamped on worker claims.
    task_timeout_seconds : float or None
        Per-task wall-clock watchdog.  A worker that makes no progress
        (no claim, no completion) for longer than this while holding tasks
        is presumed hung, killed, and its leases re-queued; the task it was
        chewing on is blamed for the death.  ``None`` (the default)
        disables the watchdog — simulations may legitimately run long.
    quarantine_after : int
        A task whose execution kills its worker this many times is poison:
        it is quarantined (removed from circulation, recorded in
        ``quarantined.jsonl``) and the campaign completes ``degraded``
        instead of crash-looping into :class:`CampaignError`.
    """

    grid: GridConfig
    directory: Path
    target_relative_half_width: Optional[float] = None
    max_replications: int = 64
    batch_size: int = DEFAULT_BATCH_SIZE
    lease_seconds: float = 300.0
    task_timeout_seconds: Optional[float] = None
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "directory", Path(self.directory))
        check_integer("batch_size", self.batch_size, minimum=1)
        check_positive("lease_seconds", self.lease_seconds)
        if self.task_timeout_seconds is not None:
            check_positive("task_timeout_seconds", self.task_timeout_seconds)
        check_integer("quarantine_after", self.quarantine_after, minimum=1)
        if self.target_relative_half_width is not None:
            check_positive("target_relative_half_width", self.target_relative_half_width)
            check_integer(
                "max_replications", self.max_replications, minimum=self.grid.replications
            )
        else:
            check_integer("max_replications", self.max_replications, minimum=1)

    def manifest(self) -> CampaignManifest:
        return CampaignManifest(
            grid=grid_to_dict(self.grid),
            grid_digest=grid_digest(self.grid),
            target_relative_half_width=self.target_relative_half_width,
            max_replications=self.max_replications,
            batch_size=self.batch_size,
            lease_seconds=self.lease_seconds,
            task_timeout_seconds=self.task_timeout_seconds,
            quarantine_after=self.quarantine_after,
            provenance=provenance(),
        )


@dataclass(frozen=True)
class CampaignPoint:
    """Final streamed summary of one grid point (no per-record state)."""

    labels: Mapping[str, Any]
    digest: str
    replications: int
    converged: bool
    metrics: Mapping[str, Mapping[str, Any]]

    def summary_row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = dict(self.labels)
        delay = self.metrics.get("mean_delay", {})
        row["mean_delay"] = delay.get("mean", float("nan"))
        row["delay_half_width"] = delay.get("half_width", float("nan"))
        row["replications"] = self.replications
        row["converged"] = self.converged
        return row


@dataclass(frozen=True)
class CampaignResult:
    """Per-point streamed summaries of one campaign run (or partial run)."""

    directory: Path
    grid_digest: str
    points: Tuple[CampaignPoint, ...]
    complete: bool
    executed_tasks: int
    wall_seconds: float = float("nan")
    quarantined: Tuple[str, ...] = ()

    @property
    def status(self) -> str:
        """``"complete"``, ``"degraded"`` (finished, but poison tasks were
        quarantined) or ``"interrupted"`` (resume to finish)."""
        if not self.complete:
            return "interrupted"
        return "degraded" if self.quarantined else "complete"

    @property
    def total_replications(self) -> int:
        return sum(point.replications for point in self.points)

    def records(self) -> List[Dict[str, Any]]:
        """One flat summary record per grid point (CSV/JSONL-friendly)."""
        return [point.summary_row() for point in self.points]

    def as_table(self) -> str:
        rows = self.records()
        if not rows:
            return "(empty campaign)"
        headers = list(rows[0].keys())
        status = {
            "complete": "complete",
            "degraded": f"DEGRADED ({len(self.quarantined)} tasks quarantined)",
            "interrupted": "INTERRUPTED (resume to finish)",
        }[self.status]
        title = (
            f"campaign {self.grid_digest} — {len(self.points)} points, "
            f"{self.total_replications} replications, {status}"
        )
        return format_table(headers, [[row.get(h, "-") for h in headers] for row in rows], title=title)


@dataclass(frozen=True)
class CampaignStatus:
    """Read-only snapshot of a campaign directory."""

    directory: Path
    grid_digest: str
    counts: Mapping[str, int]
    points: Tuple[CampaignPoint, ...]
    complete: bool
    quarantined: Tuple[str, ...] = ()

    @property
    def status(self) -> str:
        """``"complete"``, ``"degraded"`` or ``"resumable"``."""
        if not self.complete:
            return "resumable"
        return "degraded" if self.quarantined else "complete"

    def as_table(self) -> str:
        rows = [point.summary_row() for point in self.points]
        headers = list(rows[0].keys()) if rows else []
        counts = self.counts
        quarantined = (
            f", {counts['quarantined']} quarantined" if counts.get("quarantined") else ""
        )
        title = (
            f"campaign {self.grid_digest} at {self.directory}: "
            f"{counts['done']}/{counts['total']} tasks done, "
            f"{counts['pending']} pending, {counts['leased']} leased"
            f"{quarantined} — {self.status}"
        )
        return format_table(headers, [[row.get(h, "-") for h in headers] for row in rows], title=title)


# --------------------------------------------------------------------- #
# Internal per-point scheduler state: O(points) total, never O(jobs).
# --------------------------------------------------------------------- #
class _PointState:
    __slots__ = (
        "point",
        "digest",
        "seed",
        "allocated",
        "abandoned",
        "accumulator",
        "retired",
        "converged",
    )

    def __init__(self, point: Mapping[str, Any], confidence: float):
        self.point = point
        self.digest = point_digest(point["labels"])
        self.seed = None
        self.allocated = 0
        self.abandoned = 0  # quarantined replications: allocated, never recorded
        self.accumulator = PointAccumulator(confidence=confidence)
        self.retired = False
        self.converged = False


class _Campaign:
    """One scheduling session over a campaign directory (create or resume)."""

    def __init__(
        self,
        manifest: CampaignManifest,
        directory: Path,
        workers: Optional[int] = None,
    ):
        self.manifest = manifest
        self.directory = Path(directory)
        self.grid = manifest.grid_config(workers=workers)
        self.workers = self.grid.workers
        self.store = ResultStore(self.directory / RECORDS_FILENAME)
        repair_jsonl(self.store.path)
        self.queue = TaskQueue(self.directory / JOURNAL_FILENAME, reclaim_stale=True)
        self.executed = 0
        self.interrupted = False
        self.states: Dict[str, _PointState] = {}
        self.order: List[str] = []
        for point in self.grid.points():
            state = _PointState(point, self.grid.confidence)
            state.seed = point_seed(self.grid.seed, point["labels"])
            if state.digest in self.states:
                raise CampaignError(f"duplicate grid point digest {state.digest}")
            self.states[state.digest] = state
            self.order.append(state.digest)
        self._restore()

    # -------------------------------------------------------------- #
    # Durable-state restoration (no-op on a fresh directory)
    # -------------------------------------------------------------- #
    def _restore(self) -> None:
        # Allocation counts: tasks are enqueued with contiguous replication
        # indices, so allocation = highest known index + 1 per point.
        for task_id in self.queue.known_ids():
            digest, _, replication = task_id.rpartition(":")
            state = self.states.get(digest)
            if state is None:
                raise CampaignError(
                    f"journal task {task_id!r} does not belong to this grid — "
                    "the directory holds a different campaign"
                )
            state.allocated = max(state.allocated, int(replication) + 1)
        # Seed (or idempotently re-seed) the initial batch everywhere.
        for digest in self.order:
            state = self.states[digest]
            self.queue.enqueue(
                task_id_for(digest, index) for index in range(self.grid.replications)
            )
            state.allocated = max(state.allocated, self.grid.replications)
        # Fold what is already on disk.  Records may be out of order
        # (many workers) or duplicated (completion marker lost in a crash);
        # the ordered accumulator handles both.
        for record in self.store.stream():
            state = self.states.get(record.get("point", ""))
            if state is None:
                continue
            state.accumulator.add(record["replication"], record)
        # Quarantined tasks were allocated but will never produce a record:
        # skip their fold slots so the ordered accumulator can advance past
        # the permanent holes, and count them as abandoned per point.
        for task_id in self.queue.quarantined_ids():
            digest, _, replication = task_id.rpartition(":")
            state = self.states.get(digest)
            if state is not None:
                state.accumulator.skip(int(replication))
                state.abandoned += 1
        # Re-run the allocation decisions that completed records imply.  This
        # recovers a crash that landed after the last record of a batch but
        # before the extension was enqueued — and, because decisions are a
        # deterministic function of the (deterministic) record values, it
        # always reproduces exactly the decisions the uninterrupted run took.
        for digest in self.order:
            self._decide(self.states[digest])

    # -------------------------------------------------------------- #
    # Task plumbing
    # -------------------------------------------------------------- #
    def _task_for(self, task_id: str) -> PointTask:
        digest, _, replication = task_id.rpartition(":")
        state = self.states[digest]
        return point_tasks(self.grid, state.point, count=1, start=int(replication))[0]

    def _shared_line(self, state: _PointState) -> Dict[str, Any]:
        spec = state.point["spec"]
        if state.seed is not None:
            spec = spec.with_seed(state.seed)
        return {
            "spec": spec.to_dict(),
            "backend": state.point["backend"],
            "campaign": self.manifest.grid_digest,
            "point": state.digest,
            "labels": dict(state.point["labels"]),
            "ensemble_seed": state.seed,
            "confidence": self.grid.confidence,
        }

    def _handle_done(self, task_id: str, record: Dict[str, Any]) -> None:
        digest, _, _ = task_id.rpartition(":")
        state = self.states[digest]
        # Record first, completion marker second: a crash between the two
        # merely re-runs the task into a duplicate record with identical
        # simulation content, which the ordered fold ignores.
        line = self._shared_line(state)
        line.update(record)
        self.store.extend([line])
        self.queue.complete(task_id)
        state.accumulator.add(record["replication"], record)
        self.executed += 1
        self._decide(state)

    def _decide(self, state: _PointState) -> None:
        """Retire a point or enqueue its next replication batch.

        Called whenever the point *might* have all allocated records folded.
        A deterministic function of the folded record values alone — never
        of scheduling order, worker count, or interruption history.
        """
        if state.retired or state.accumulator.count + state.abandoned < state.allocated:
            return
        target = self.manifest.target_relative_half_width
        if target is None:
            state.retired = True
            state.converged = state.abandoned == 0
            return
        if state.abandoned:
            # A poisoned point cannot honestly chase its precision target:
            # retire it unconverged rather than spend replications papering
            # over a hole in the sample.
            state.retired = True
            state.converged = False
            return
        if state.accumulator.precision_reached(target):
            state.retired = True
            state.converged = True
            return
        if state.allocated >= self.manifest.max_replications:
            state.retired = True
            state.converged = False
            return
        count = min(
            self.manifest.batch_size, self.manifest.max_replications - state.allocated
        )
        self.queue.enqueue(
            task_id_for(state.digest, state.allocated + index) for index in range(count)
        )
        state.allocated += count

    def _quarantine(self, task_id: str, deaths: int, reason: str) -> None:
        """Retire a poison task: journal it, detail it, unblock its point.

        The detail line in ``quarantined.jsonl`` is diagnostic (it carries a
        wall-clock timestamp and the death count), never part of the
        campaign's deterministic content.
        """
        digest, _, replication = task_id.rpartition(":")
        self.queue.quarantine(task_id)
        detail = {
            "task": task_id,
            "point": digest,
            "replication": int(replication),
            "deaths": deaths,
            "reason": reason,
            "time": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        path = self.directory / QUARANTINE_FILENAME
        with path.open("a", encoding="utf-8") as handle:
            handle.write(jsonl_line(detail) + "\n")
            handle.flush()
        state = self.states.get(digest)
        if state is not None:
            state.accumulator.skip(int(replication))
            state.abandoned += 1
            self._decide(state)

    @property
    def finished(self) -> bool:
        return self.queue.outstanding == 0 and all(
            state.retired for state in self.states.values()
        )

    # -------------------------------------------------------------- #
    # Drivers
    # -------------------------------------------------------------- #
    def drive(self, max_tasks: Optional[int] = None) -> None:
        try:
            if self.workers <= 1:
                self._drive_inline(max_tasks)
            else:
                self._drive_pool(max_tasks)
        except KeyboardInterrupt:
            # Ctrl-C is an operator interruption, not a failure: everything
            # durable is already on disk, so stop feeding, let the teardown
            # path retire the workers, and report the campaign resumable.
            self.interrupted = True

    def _drive_inline(self, max_tasks: Optional[int]) -> None:
        while not self.finished:
            if max_tasks is not None and self.executed >= max_tasks:
                return
            task_id = self.queue.lease("inline", self.manifest.lease_seconds)
            if task_id is None:
                raise CampaignError(
                    "campaign wedged: nothing runnable but points not retired"
                )
            self._handle_done(task_id, execute_task(self._task_for(task_id)))

    def _drive_pool(self, max_tasks: Optional[int]) -> None:
        context = multiprocessing.get_context()
        outbox = context.Queue()
        inboxes: Dict[str, Any] = {}
        processes: Dict[str, Any] = {}
        in_flight: Dict[str, set] = {}
        # Liveness and blame bookkeeping (all per scheduling session):
        last_progress: Dict[str, float] = {}  # last spawn/claim/done, per worker
        claimed: Dict[str, Optional[str]] = {}  # task last claimed, per worker
        attempts: Dict[str, int] = {}  # dispatch count per task (fault keys)
        deaths: Dict[str, int] = {}  # workers killed, per blamed task
        departed: set = set()  # workers that said bye (graceful, not a crash)
        next_worker = 0
        respawns = 0

        def spawn() -> str:
            nonlocal next_worker
            worker_id = f"w{next_worker}"
            next_worker += 1
            inbox = context.Queue()
            process = context.Process(
                target=worker_loop, args=(worker_id, inbox, outbox), daemon=True
            )
            process.start()
            inboxes[worker_id] = inbox
            processes[worker_id] = process
            in_flight[worker_id] = set()
            last_progress[worker_id] = time.time()
            claimed[worker_id] = None
            return worker_id

        def feed(worker_id: str) -> None:
            while len(in_flight[worker_id]) < PREFETCH:
                task_id = self.queue.lease(worker_id, self.manifest.lease_seconds)
                if task_id is None:
                    return
                in_flight[worker_id].add(task_id)
                attempt = attempts.get(task_id, 0)
                attempts[task_id] = attempt + 1
                inboxes[worker_id].put((self._task_for(task_id), attempt))

        def reap(worker_id: str) -> None:
            """Retire one dead/departed worker: blame, quarantine, respawn."""
            nonlocal respawns
            graceful = worker_id in departed
            blamed = claimed.pop(worker_id, None)
            quarantined_now = False
            if not graceful:
                held = self.queue.leased_by(worker_id)
                if blamed is None and len(held) == 1:
                    # Died before its claim message got out; with a single
                    # lease the culprit is unambiguous anyway.
                    blamed = held[0]
                if blamed is not None and not self.queue.is_done(blamed):
                    deaths[blamed] = deaths.get(blamed, 0) + 1
                    if deaths[blamed] >= self.manifest.quarantine_after:
                        self._quarantine(
                            blamed, deaths[blamed], reason="killed its worker"
                        )
                        quarantined_now = True
            for task_id in self.queue.leased_by(worker_id):
                self.queue.release(task_id)
            del processes[worker_id], inboxes[worker_id], in_flight[worker_id]
            last_progress.pop(worker_id, None)
            departed.discard(worker_id)
            if not self.finished:
                # A graceful exit is not a crash, and a quarantine just
                # *removed* the crash cause — neither feeds the crash-loop
                # cap, which exists to catch unexplained repeated deaths.
                if not (graceful or quarantined_now):
                    respawns += 1
                    if respawns > MAX_RESPAWNS_PER_WORKER * self.workers:
                        raise CampaignError(
                            f"giving up after {respawns} worker deaths — "
                            "workers are crash-looping (see records/journal "
                            f"in {self.directory})"
                        )
                spawn()

        timeout = self.manifest.task_timeout_seconds
        for _ in range(self.workers):
            spawn()
        try:
            while not self.finished:
                if max_tasks is not None and self.executed >= max_tasks:
                    return
                for worker_id in list(processes):
                    feed(worker_id)
                try:
                    message = outbox.get(timeout=0.2)
                except queue_module.Empty:
                    message = None
                if message is not None:
                    kind = message[0]
                    if kind == MSG_CLAIM:
                        _, worker_id, task_id = message
                        last_progress[worker_id] = time.time()
                        claimed[worker_id] = task_id
                        # The claim doubles as a heartbeat: re-stamp every
                        # lease the worker holds.  (A chaos plan can drop or
                        # stall the re-stamp here; leases then expire and are
                        # reclaimed, which must never change the results.)
                        if not maybe_fire("scheduler.heartbeat", key=worker_id):
                            self.queue.heartbeat(worker_id, self.manifest.lease_seconds)
                    elif kind == MSG_DONE:
                        _, worker_id, task_id, record = message
                        last_progress[worker_id] = time.time()
                        if claimed.get(worker_id) == task_id:
                            claimed[worker_id] = None
                        in_flight.get(worker_id, set()).discard(task_id)
                        self._handle_done(task_id, record)
                        if worker_id in processes:
                            feed(worker_id)
                    elif kind == MSG_BYE:
                        _, worker_id = message
                        departed.add(worker_id)
                # Watchdog: a worker holding tasks but silent past the
                # per-task wall-clock budget is presumed hung.  Kill it —
                # the reaper below blames its claimed task and re-leases.
                if timeout is not None:
                    now = time.time()
                    for worker_id, process in list(processes.items()):
                        if not process.is_alive() or worker_id in departed:
                            continue
                        if in_flight[worker_id] and now - last_progress[worker_id] > timeout:
                            process.kill()
                            process.join(timeout=5.0)
                # Liveness: reclaim from the dead and departed, respawn.
                for worker_id, process in list(processes.items()):
                    if process.is_alive() and worker_id not in departed:
                        continue
                    if process.is_alive():
                        # Said bye but still winding down; let it finish.
                        process.join(timeout=5.0)
                        if process.is_alive():  # pragma: no cover - wedged exit
                            process.terminate()
                            process.join(timeout=1.0)
                    reap(worker_id)
        finally:
            for worker_id, inbox in inboxes.items():
                try:
                    inbox.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
            deadline = time.time() + 5.0
            for process in processes.values():
                process.join(timeout=max(0.1, deadline - time.time()))
                if process.is_alive():
                    process.terminate()
            outbox.close()

    # -------------------------------------------------------------- #
    # Results
    # -------------------------------------------------------------- #
    def result(self, wall_seconds: float) -> CampaignResult:
        points = tuple(
            CampaignPoint(
                labels=dict(self.states[digest].point["labels"]),
                digest=digest,
                replications=self.states[digest].accumulator.count,
                converged=self.states[digest].converged,
                metrics=self.states[digest].accumulator.summary(),
            )
            for digest in self.order
        )
        return CampaignResult(
            directory=self.directory,
            grid_digest=self.manifest.grid_digest,
            points=points,
            complete=self.finished,
            executed_tasks=self.executed,
            wall_seconds=wall_seconds,
            quarantined=tuple(sorted(self.queue.quarantined_ids())),
        )

    def close(self) -> None:
        self.queue.close()


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #
def run_campaign(
    grid: Optional[GridConfig] = None,
    directory: Union[str, Path, None] = None,
    target_relative_half_width: Optional[float] = None,
    max_replications: int = 64,
    batch_size: int = DEFAULT_BATCH_SIZE,
    lease_seconds: float = 300.0,
    task_timeout_seconds: Optional[float] = None,
    quarantine_after: int = 3,
    config: Optional[CampaignConfig] = None,
    max_tasks: Optional[int] = None,
) -> CampaignResult:
    """Create a campaign directory and drive it (to completion by default).

    Parameters
    ----------
    grid, directory :
        The sweep and its durable home — or pass a prebuilt ``config``.
    target_relative_half_width, max_replications, batch_size, lease_seconds,
    task_timeout_seconds, quarantine_after :
        See :class:`CampaignConfig`.
    max_tasks : int, optional
        Stop (gracefully, durably) after this many task completions — the
        deterministic way to interrupt a campaign in tests, examples and CI;
        finish it later with :func:`resume_campaign`.

    Returns
    -------
    CampaignResult
        Streamed per-point summaries; ``complete`` is ``False`` when
        interrupted, and ``status`` is ``"degraded"`` when poison tasks had
        to be quarantined.
    """
    if config is None:
        if grid is None or directory is None:
            raise SpecError("run_campaign needs grid= and directory= (or config=)")
        config = CampaignConfig(
            grid=grid,
            directory=Path(directory),
            target_relative_half_width=target_relative_half_width,
            max_replications=max_replications,
            batch_size=batch_size,
            lease_seconds=lease_seconds,
            task_timeout_seconds=task_timeout_seconds,
            quarantine_after=quarantine_after,
        )
    directory = Path(config.directory)
    manifest = config.manifest()
    existing = directory / "manifest.json"
    if existing.exists():
        stored = CampaignManifest.load(directory)
        if stored.grid_digest != manifest.grid_digest:
            raise CampaignError(
                f"{directory} already holds campaign {stored.grid_digest}, "
                f"which differs from the requested grid ({manifest.grid_digest}); "
                "use a fresh directory or resume_campaign() the existing one"
            )
        manifest = stored  # the stored policy wins: the campaign is durable
    else:
        manifest.write(directory)
    return _drive_session(manifest, directory, workers=None, max_tasks=max_tasks)


def resume_campaign(
    directory: Union[str, Path],
    workers: Optional[int] = None,
    max_tasks: Optional[int] = None,
) -> CampaignResult:
    """Resume an interrupted campaign from its directory.

    Skips done tasks, reclaims stale leases, repairs torn trailing lines,
    re-runs any task whose completion was lost, and continues the adaptive
    allocation exactly where the records on disk imply it stood.  Resuming a
    *finished* campaign is a cheap no-op that just recomputes the summaries.
    """
    directory = Path(directory)
    manifest = CampaignManifest.load(directory)
    return _drive_session(manifest, directory, workers=workers, max_tasks=max_tasks)


def _drive_session(
    manifest: CampaignManifest,
    directory: Path,
    workers: Optional[int],
    max_tasks: Optional[int],
) -> CampaignResult:
    started = time.perf_counter()
    session = _Campaign(manifest, directory, workers=workers)
    try:
        session.drive(max_tasks=max_tasks)
        return session.result(time.perf_counter() - started)
    finally:
        session.close()


def campaign_status(directory: Union[str, Path]) -> CampaignStatus:
    """Read-only snapshot: task counts plus per-point progress.

    Never writes to the directory, so it is safe to point at a campaign
    another process is driving (the snapshot is then merely a little stale).
    """
    directory = Path(directory)
    manifest = CampaignManifest.load(directory)
    grid = manifest.grid_config()
    task_queue = TaskQueue(
        directory / JOURNAL_FILENAME, reclaim_stale=False, read_only=True
    )
    states: Dict[str, _PointState] = {}
    order: List[str] = []
    for point in grid.points():
        state = _PointState(point, grid.confidence)
        states[state.digest] = state
        order.append(state.digest)
    for task_id in task_queue.known_ids():
        digest, _, replication = task_id.rpartition(":")
        if digest in states:
            states[digest].allocated = max(states[digest].allocated, int(replication) + 1)
    store = ResultStore(directory / RECORDS_FILENAME)
    for record in store.stream():
        state = states.get(record.get("point", ""))
        if state is not None:
            state.accumulator.add(record["replication"], record)
    for task_id in task_queue.quarantined_ids():
        digest, _, replication = task_id.rpartition(":")
        state = states.get(digest)
        if state is not None:
            state.accumulator.skip(int(replication))
            state.abandoned += 1
    target = manifest.target_relative_half_width
    points = []
    for digest in order:
        state = states[digest]
        done = state.accumulator.count + state.abandoned >= state.allocated
        converged = (
            done
            and state.abandoned == 0
            and (target is None or state.accumulator.precision_reached(target))
        )
        points.append(
            CampaignPoint(
                labels=dict(state.point["labels"]),
                digest=digest,
                replications=state.accumulator.count,
                converged=converged,
                metrics=state.accumulator.summary(),
            )
        )
    counts = task_queue.counts()
    return CampaignStatus(
        directory=directory,
        grid_digest=manifest.grid_digest,
        counts=counts,
        points=tuple(points),
        complete=(
            counts["total"] > 0
            and counts["done"] + counts["quarantined"] == counts["total"]
        ),
        quarantined=tuple(sorted(task_queue.quarantined_ids())),
    )


def campaign_fingerprint(directory: Union[str, Path]) -> Dict[str, Any]:
    """Canonical, comparison-safe digest of a campaign's *deterministic* content.

    Two campaigns of the same grid — one uninterrupted, one SIGKILLed and
    resumed, regardless of worker counts — must produce equal fingerprints:
    per-point streamed estimates plus every de-duplicated simulation record
    with wall-clock noise stripped.  Non-finite floats are stringified
    (``"nan"`` never compares equal to itself as a float), so plain ``==``
    works.
    """
    from repro.api.serialize import jsonable
    from repro.ensemble.runner import EnsembleResult

    directory = Path(directory)
    manifest = CampaignManifest.load(directory)
    grid = manifest.grid_config()
    accumulators: Dict[str, PointAccumulator] = {}
    labels: Dict[str, Mapping[str, Any]] = {}
    order: List[str] = []
    for point in grid.points():
        digest = point_digest(point["labels"])
        accumulators[digest] = PointAccumulator(confidence=grid.confidence)
        labels[digest] = dict(point["labels"])
        order.append(digest)
    noise = set(EnsembleResult.TIMING_KEYS) | {"provenance"}
    seen = set()
    records: List[Tuple[str, int, str]] = []
    store = ResultStore(directory / RECORDS_FILENAME)
    for record in store.stream():
        digest = record.get("point", "")
        accumulator = accumulators.get(digest)
        if accumulator is None:
            continue
        replication = int(record["replication"])
        if (digest, replication) in seen:
            continue
        seen.add((digest, replication))
        accumulator.add(replication, record)
        core = {key: value for key, value in record.items() if key not in noise}
        records.append((digest, replication, json.dumps(jsonable(core), sort_keys=True)))
    records.sort()
    return {
        "grid": manifest.grid_digest,
        "points": {
            digest: jsonable(
                {
                    "labels": labels[digest],
                    "replications": accumulators[digest].count,
                    "metrics": accumulators[digest].summary(),
                }
            )
            for digest in order
        },
        "records": [line for _, _, line in records],
    }
