"""Constant-memory streaming statistics for campaign-scale sweeps.

A million-job campaign cannot afford the per-job lists the ensemble layer
keeps (`ReplicationStatistics.samples`): folding each replication record into
Welford-updated running moments keeps the scheduler's footprint at
``O(points)``, independent of how many replications each point accumulates.

Two layers:

* :class:`StreamingMoments` — one scalar metric: count, Welford mean/M2,
  min/max.  Confidence intervals route through
  :func:`repro.ensemble.stats.t_half_width`, the same Student-t math the
  batch path uses, so streaming and batch summaries agree to floating-point
  round-off (the unit tests pin 1e-12).

* :class:`PointAccumulator` — all metrics of one grid point, folded in
  **replication order**.  Records may arrive from workers in any order; the
  accumulator buffers out-of-order arrivals (bounded by the in-flight batch,
  not by the campaign size) and feeds the moments strictly as replication
  0, 1, 2, ...  A fixed fold order is what makes the final campaign
  estimates *bitwise identical* no matter how tasks were scheduled, how many
  workers ran, or how often the campaign was interrupted and resumed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.ensemble.stats import t_half_width
from repro.utils.validation import ValidationError, check_positive

__all__ = ["PointAccumulator", "StreamingMoments"]

#: Record keys that are bookkeeping or wall-clock noise, never metrics.
NON_METRIC_KEYS = frozenset(
    {
        "replication",
        "seed",
        "wall_seconds",
        "events_per_second",
        "kernel",
        "spec",
        "backend",
        "kind",
        "parameters",
        "labels",
        "point",
        "campaign",
        "ensemble_seed",
        "confidence",
        "provenance",
    }
)


class StreamingMoments:
    """Welford running mean/variance of one scalar metric, O(1) memory."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation (Welford's update — no catastrophic
        cancellation, unlike the naive sum-of-squares form)."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Unbiased sample variance (ddof=1); ``nan`` below two observations."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation; ``nan`` below two observations."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")

    @property
    def standard_error(self) -> float:
        """Standard error of the mean, ``s / sqrt(K)``."""
        if self.count < 1:
            return float("nan")
        return self.std / math.sqrt(self.count)

    def half_width(self, confidence: float = 0.95) -> float:
        """Student-t CI half-width (same math as the batch path)."""
        return t_half_width(self.count, self.variance, confidence)

    def relative_half_width(self, confidence: float = 0.95) -> float:
        """Half-width over |mean| — what the per-point stopping rule targets."""
        if self.mean == 0.0:
            return float("inf")
        return self.half_width(confidence) / abs(self.mean)

    def precision_reached(self, target: float, confidence: float = 0.95) -> bool:
        """The relative-precision stopping rule, streaming form.

        ``False`` below two observations (no variance estimate yet), exactly
        like :meth:`ReplicationStatistics.precision_reached`.
        """
        check_positive("target", target)
        relative = self.relative_half_width(confidence)
        return relative == relative and relative <= target

    def to_dict(self, confidence: float = 0.95) -> Dict[str, Any]:
        """Flat summary (count, mean, variance, CI, extremes) for export."""
        return {
            "n": self.count,
            "mean": self.mean,
            "variance": self.variance,
            "std": self.std,
            "half_width": self.half_width(confidence),
            "min": self.minimum if self.count else float("nan"),
            "max": self.maximum if self.count else float("nan"),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingMoments(n={self.count}, mean={self.mean:.6g})"


class PointAccumulator:
    """All metric moments of one grid point, folded in replication order.

    ``add`` accepts records in *any* arrival order and returns whether the
    record was fresh; duplicates (a task re-run after a crash that lost the
    completion marker but not the record) are ignored, which is safe because
    content-addressed seeds make a re-run's metrics identical anyway.
    """

    __slots__ = ("confidence", "metrics", "next_index", "folded", "_pending", "_skipped")

    def __init__(self, confidence: float = 0.95) -> None:
        if not (0.0 < confidence < 1.0):
            raise ValidationError(f"confidence must be in (0, 1), got {confidence!r}")
        self.confidence = confidence
        self.metrics: Dict[str, StreamingMoments] = {}
        self.next_index = 0  # replication index the ordered fold expects next
        self.folded = 0  # records actually folded (skipped holes excluded)
        self._pending: Dict[int, Dict[str, float]] = {}
        self._skipped: set = set()

    @staticmethod
    def metric_values(record: Mapping[str, Any]) -> Dict[str, float]:
        """The foldable scalar metrics of one replication record."""
        values = {}
        for key, value in record.items():
            if key in NON_METRIC_KEYS or isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                values[key] = float(value)
        return values

    def add(self, replication: int, record: Mapping[str, Any]) -> bool:
        """Fold one record; returns ``False`` for duplicates."""
        replication = int(replication)
        if (
            replication < self.next_index
            or replication in self._pending
            or replication in self._skipped
        ):
            return False
        self._pending[replication] = self.metric_values(record)
        self._advance()
        return True

    def skip(self, replication: int) -> bool:
        """Advance the ordered fold past a hole that will never fill.

        A quarantined poison task produces no record, ever; without a skip
        the contiguous fold would stall at its index and every later record
        of the point would buffer forever.  Skipped indices contribute no
        observations — they only unblock the fold.
        """
        replication = int(replication)
        if replication < self.next_index or replication in self._skipped:
            return False
        self._skipped.add(replication)
        self._advance()
        return True

    def _advance(self) -> None:
        while True:
            if self.next_index in self._pending:
                for key, value in self._pending.pop(self.next_index).items():
                    moments = self.metrics.get(key)
                    if moments is None:
                        moments = self.metrics[key] = StreamingMoments()
                    moments.add(value)
                self.folded += 1
                self.next_index += 1
            elif self.next_index in self._skipped:
                self._skipped.discard(self.next_index)
                self.next_index += 1
            else:
                return

    @property
    def count(self) -> int:
        """Replications folded so far (records only; skipped holes excluded)."""
        return self.folded

    @property
    def buffered(self) -> int:
        """Out-of-order records waiting for a predecessor (bounded by the
        in-flight window, not the campaign size)."""
        return len(self._pending)

    def statistics(self, metric: str = "mean_delay") -> StreamingMoments:
        """Moments of one metric (an empty accumulator if never observed)."""
        return self.metrics.get(metric, StreamingMoments())

    def precision_reached(self, target: Optional[float], metric: str = "mean_delay") -> bool:
        """Per-point stopping rule on the headline metric."""
        if target is None:
            return False
        return self.statistics(metric).precision_reached(target, self.confidence)

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-metric flat summaries, metric names sorted."""
        return {
            name: self.metrics[name].to_dict(self.confidence)
            for name in sorted(self.metrics)
        }

    def metric_names(self) -> List[str]:
        return sorted(self.metrics)

    def mean_and_half_width(self, metric: str = "mean_delay") -> Tuple[float, float]:
        moments = self.statistics(metric)
        return moments.mean, moments.half_width(self.confidence)
