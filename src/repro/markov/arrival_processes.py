"""Arrival processes and the mixed-Poisson coefficients of the paper's Eq. (19).

The improved lower bound (Theorem 2) holds for a general renewal arrival
process with interarrival distribution ``A``; the geometric decay factor is
``sigma^N`` where ``sigma`` is the unique root in ``(0, 1)`` of

.. math::  x = \\sum_{k \\ge 0} x^k \\beta_k,
           \\qquad \\beta_k = \\int_0^\\infty \\frac{(\\mu t)^k}{k!} e^{-\\mu t} \\, dA(t).

Because ``sum_k x^k beta_k`` equals the Laplace–Stieltjes transform of ``A``
evaluated at ``mu (1 - x)``, the fixed-point equation is the classical GI/M/1
root equation; for Poisson arrivals the root is simply the traffic intensity
``rho`` (Theorem 3).

Every arrival process here also knows how to *sample* interarrival times, so
the same objects drive both the analytical lower bound and the simulators.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np
from scipy import integrate, optimize

from repro.utils.validation import ValidationError, check_positive, check_probability


class ArrivalProcess(ABC):
    """Abstract base class for arrival processes used across the library."""

    @property
    @abstractmethod
    def rate(self) -> float:
        """Long-run arrival rate (jobs per unit time)."""

    @abstractmethod
    def sample_interarrival_times(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` consecutive interarrival times."""

    def mean_interarrival_time(self) -> float:
        return 1.0 / self.rate

    def is_renewal(self) -> bool:
        """True when interarrival times are independent and identically distributed."""
        return True

    def interarrival_lst(self, s: float) -> float:
        """Laplace–Stieltjes transform ``E[e^{-s U}]`` of the interarrival time.

        Subclasses with closed forms override this; the default integrates the
        sampled density numerically and is only used by exotic processes.
        """
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Poisson process with the given rate (exponential interarrival times)."""

    def __init__(self, rate: float):
        self._rate = check_positive("rate", rate)

    @property
    def rate(self) -> float:
        return self._rate

    def sample_interarrival_times(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1.0 / self._rate, size=size)

    def interarrival_lst(self, s: float) -> float:
        return self._rate / (self._rate + s)

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self._rate})"


class RenewalArrivals(ArrivalProcess):
    """Renewal arrival process with a pluggable interarrival distribution.

    The interarrival distribution is provided as a
    :class:`repro.markov.service_distributions.ServiceDistribution` (any
    non-negative distribution object with ``mean``, ``sample`` and ``lst``),
    which keeps a single catalogue of distributions for both arrivals and
    services.
    """

    def __init__(self, interarrival_distribution) -> None:
        mean = interarrival_distribution.mean
        if mean <= 0:
            raise ValidationError("interarrival distribution must have positive mean")
        self._distribution = interarrival_distribution

    @property
    def rate(self) -> float:
        return 1.0 / self._distribution.mean

    @property
    def interarrival_distribution(self):
        return self._distribution

    def sample_interarrival_times(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._distribution.sample(rng, size)

    def interarrival_lst(self, s: float) -> float:
        return self._distribution.lst(s)

    def __repr__(self) -> str:
        return f"RenewalArrivals({self._distribution!r})"


class MarkovianArrivalProcess(ArrivalProcess):
    """Markovian Arrival Process (MAP) defined by matrices ``D0`` and ``D1``.

    ``D0`` holds the rates of phase transitions without an arrival and ``D1``
    the rates of transitions that trigger an arrival; ``D0 + D1`` must be a
    conservative generator.  MAPs cover the correlated/bursty traffic the
    paper names as the main extension beyond Poisson input.
    """

    def __init__(self, D0: Sequence[Sequence[float]], D1: Sequence[Sequence[float]]):
        D0 = np.asarray(D0, dtype=float)
        D1 = np.asarray(D1, dtype=float)
        if D0.ndim != 2 or D0.shape[0] != D0.shape[1] or D0.shape != D1.shape:
            raise ValidationError("D0 and D1 must be square matrices of the same size")
        if np.any(D1 < -1e-12):
            raise ValidationError("D1 must be non-negative")
        off_diag = D0 - np.diag(np.diag(D0))
        if np.any(off_diag < -1e-12):
            raise ValidationError("off-diagonal entries of D0 must be non-negative")
        generator = D0 + D1
        if not np.allclose(generator.sum(axis=1), 0.0, atol=1e-8):
            raise ValidationError("D0 + D1 must have zero row sums")
        self._D0 = D0
        self._D1 = D1
        from repro.linalg.solvers import stationary_from_generator

        self._phase_distribution = stationary_from_generator(generator)
        self._rate = float(self._phase_distribution @ D1 @ np.ones(D0.shape[0]))
        if self._rate <= 0:
            raise ValidationError("MAP has zero arrival rate")

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def D0(self) -> np.ndarray:
        return self._D0.copy()

    @property
    def D1(self) -> np.ndarray:
        return self._D1.copy()

    @property
    def num_phases(self) -> int:
        return self._D0.shape[0]

    def is_renewal(self) -> bool:
        return self.num_phases == 1

    def stationary_phase_distribution(self) -> np.ndarray:
        return self._phase_distribution.copy()

    # ------------------------------------------------------------------ #
    # Stationary interarrival-time structure (Palm calculus)
    # ------------------------------------------------------------------ #
    def embedded_transition_matrix(self) -> np.ndarray:
        """Phase-transition matrix ``P = (-D0)^{-1} D1`` at arrival epochs."""
        return np.linalg.solve(-self._D0, self._D1)

    def arrival_phase_distribution(self) -> np.ndarray:
        """Stationary phase distribution just after an arrival.

        The left eigenvector of the embedded chain ``P = (-D0)^{-1} D1``,
        equivalently ``pi D1 / rate`` with ``pi`` the time-stationary phase
        distribution — the Palm distribution under which the interarrival
        moments below are taken.
        """
        weights = self._phase_distribution @ self._D1
        return weights / weights.sum()

    def interarrival_moment(self, order: int) -> float:
        """``E[T^k]`` of the stationary interarrival time, ``k = order``.

        Closed form ``k! pi_a (-D0)^{-k} 1`` from the stationary-interval
        LST ``pi_a (sI - D0)^{-1} D1 1``.
        """
        if order < 1:
            raise ValidationError("moment order must be >= 1")
        vector = np.ones(self.num_phases)
        for _ in range(order):
            vector = np.linalg.solve(-self._D0, vector)
        return float(math.factorial(order) * (self.arrival_phase_distribution() @ vector))

    @property
    def interarrival_scv(self) -> float:
        """Squared coefficient of variation of the stationary interarrival time."""
        mean = self.interarrival_moment(1)
        return self.interarrival_moment(2) / mean ** 2 - 1.0

    def lag_autocovariance(self, lag: int) -> float:
        """``Cov[T_0, T_lag]`` between interarrival times ``lag`` apart.

        ``E[T_0 T_k] = pi_a (-D0)^{-1} P^k (-D0)^{-1} 1`` with ``P`` the
        embedded phase chain; a renewal MAP (one phase) has zero covariance
        at every positive lag.
        """
        if lag < 1:
            raise ValidationError("lag must be >= 1")
        transition = self.embedded_transition_matrix()
        vector = np.linalg.solve(-self._D0, np.ones(self.num_phases))
        vector = np.linalg.matrix_power(transition, lag) @ vector
        left = self.arrival_phase_distribution() @ np.linalg.inv(-self._D0)
        joint = float(left @ vector)
        return joint - self.interarrival_moment(1) ** 2

    def lag_autocorrelation(self, lag: int) -> float:
        """Lag-``k`` autocorrelation of the stationary interarrival sequence."""
        mean = self.interarrival_moment(1)
        variance = self.interarrival_moment(2) - mean ** 2
        if variance <= 0.0:
            return 0.0
        return self.lag_autocovariance(lag) / variance

    def asymptotic_idc(self) -> float:
        """Limiting index of dispersion for counts ``lim_t Var[N(t)] / E[N(t)]``.

        ``1 + 2 (pi D1 (1 pi - Q)^{-1} D1 1) / rate - 2 rate`` with
        ``Q = D0 + D1``; equals 1 for Poisson input and grows with
        burstiness (for MMPP2 it reduces to the classical
        ``1 + 2 s1 s2 (r1 - r2)^2 / ((s1 + s2)^2 (s2 r1 + s1 r2))``).
        """
        n = self.num_phases
        pi = self._phase_distribution
        ones = np.ones(n)
        fundamental = np.linalg.solve(np.outer(ones, pi) - (self._D0 + self._D1), self._D1 @ ones)
        return float(1.0 + 2.0 * (pi @ self._D1 @ fundamental) / self._rate - 2.0 * self._rate)

    def interarrival_lst(self, s: float) -> float:
        """LST of the *stationary* interarrival time, ``pi_a (sI - D0)^{-1} D1 1``.

        Exact for the marginal interval of any MAP; for a non-renewal MAP,
        feeding it to :func:`solve_sigma` yields the renewal approximation
        of the decay root (intervals are treated as i.i.d., their
        correlation is ignored).
        """
        matrix = s * np.eye(self.num_phases) - self._D0
        vector = np.linalg.solve(matrix, self._D1 @ np.ones(self.num_phases))
        return float(self.arrival_phase_distribution() @ vector)

    def rescaled(self, rate: float) -> "MarkovianArrivalProcess":
        """The same MAP with time rescaled so the aggregate rate is ``rate``.

        Multiplying ``D0`` and ``D1`` by a positive constant preserves every
        dimensionless burstiness statistic (SCV, lag correlations, IDC) —
        it is how a fitted shape is laid onto a spec's total arrival rate.
        """
        check_positive("rate", rate)
        factor = rate / self._rate
        return MarkovianArrivalProcess(self._D0 * factor, self._D1 * factor)

    def sample_interarrival_times(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample consecutive interarrival times by simulating the phase process."""
        num_phases = self.num_phases
        # The total exit rate of phase i is the negated diagonal of D0 (which
        # already accounts for both silent and arrival-generating transitions).
        total_rates = -np.diag(self._D0)
        phase = int(rng.choice(num_phases, p=self._phase_distribution))
        samples = np.empty(size)
        for k in range(size):
            elapsed = 0.0
            while True:
                rate = total_rates[phase]
                elapsed += rng.exponential(1.0 / rate)
                # Decide whether this phase change carries an arrival.
                arrival_weight = self._D1[phase].sum()
                silent_weights = self._D0[phase].copy()
                silent_weights[phase] = 0.0
                silent_weight = silent_weights.sum()
                if rng.random() < arrival_weight / (arrival_weight + silent_weight):
                    probabilities = self._D1[phase] / arrival_weight
                    phase = int(rng.choice(num_phases, p=probabilities))
                    samples[k] = elapsed
                    break
                probabilities = silent_weights / silent_weight
                phase = int(rng.choice(num_phases, p=probabilities))
        return samples

    def __repr__(self) -> str:
        return f"MarkovianArrivalProcess(phases={self.num_phases}, rate={self._rate:.4g})"

    @classmethod
    def mmpp2(cls, rate_high: float, rate_low: float, switch_to_low: float, switch_to_high: float) -> "MarkovianArrivalProcess":
        """Two-state Markov-Modulated Poisson Process — a standard bursty-traffic model."""
        check_positive("rate_high", rate_high)
        check_positive("rate_low", rate_low, strict=False)
        check_positive("switch_to_low", switch_to_low)
        check_positive("switch_to_high", switch_to_high)
        D1 = np.array([[rate_high, 0.0], [0.0, rate_low]])
        D0 = np.array(
            [
                [-(rate_high + switch_to_low), switch_to_low],
                [switch_to_high, -(rate_low + switch_to_high)],
            ]
        )
        return cls(D0, D1)


# --------------------------------------------------------------------------- #
# beta_k coefficients and the sigma root (Theorems 2-3)
# --------------------------------------------------------------------------- #
def beta_coefficients(arrival_process: ArrivalProcess, service_rate: float, max_k: int) -> List[float]:
    """Coefficients ``beta_k`` of Eq. (19) for ``k = 0 .. max_k``.

    ``beta_k`` is the probability that exactly ``k`` events of a Poisson
    process with rate ``service_rate`` fall inside one interarrival time.
    For Poisson arrivals with rate ``lambda`` the closed form
    ``beta_k = rho / (1 + rho)^{k+1}`` of the paper's appendix is used;
    otherwise the integral is evaluated numerically against the sampled
    interarrival density via Gauss quadrature on the LST derivatives.
    """
    check_positive("service_rate", service_rate)
    if max_k < 0:
        raise ValidationError("max_k must be non-negative")

    if isinstance(arrival_process, PoissonArrivals):
        rho = arrival_process.rate / service_rate
        return [rho / (1.0 + rho) ** (k + 1) for k in range(max_k + 1)]

    if isinstance(arrival_process, MarkovianArrivalProcess):
        # Stationary-interval density pi_a e^{D0 t} D1 1 gives the closed form
        # beta_k = mu^k pi_a (mu I - D0)^{-(k+1)} D1 1 — no quadrature needed.
        n = arrival_process.num_phases
        matrix = service_rate * np.eye(n) - arrival_process.D0
        vector = arrival_process.D1 @ np.ones(n)
        pi_a = arrival_process.arrival_phase_distribution()
        coefficients = []
        vector = np.linalg.solve(matrix, vector)
        for k in range(max_k + 1):
            coefficients.append(float(service_rate ** k * (pi_a @ vector)))
            vector = np.linalg.solve(matrix, vector)
        return coefficients

    distribution = getattr(arrival_process, "interarrival_distribution", None)
    if distribution is not None and hasattr(distribution, "pdf"):
        coefficients = []
        for k in range(max_k + 1):
            def integrand(t: float, k: int = k) -> float:
                if t <= 0:
                    return 0.0
                log_term = k * math.log(service_rate * t) - service_rate * t - math.lgamma(k + 1)
                return math.exp(log_term) * distribution.pdf(t)

            value, _ = integrate.quad(integrand, 0.0, np.inf, limit=200)
            coefficients.append(float(value))
        return coefficients

    if distribution is not None and hasattr(distribution, "atoms"):
        # Discrete (e.g. deterministic) interarrival distributions.
        coefficients = []
        for k in range(max_k + 1):
            value = 0.0
            for time, weight in distribution.atoms():
                log_term = k * math.log(service_rate * time) - service_rate * time - math.lgamma(k + 1) if time > 0 else (-math.inf if k > 0 else 0.0)
                value += weight * (math.exp(log_term) if log_term != -math.inf else 0.0)
            coefficients.append(float(value))
        return coefficients

    raise ValidationError(
        "beta coefficients require a Poisson process or a renewal process with a density/atomic interarrival distribution"
    )


def solve_sigma(arrival_process: ArrivalProcess, service_rate: float = 1.0, tolerance: float = 1e-12) -> float:
    """Solve the fixed-point equation of Theorem 2 for ``sigma`` in ``(0, 1)``.

    Uses the identity ``sum_k x^k beta_k = LST_A(service_rate * (1 - x))`` so
    the equation becomes the classical GI/M/1 root equation
    ``x = A*(mu (1 - x))``.  Requires the stability condition
    ``arrival rate < service_rate``.
    """
    check_positive("service_rate", service_rate)
    rho = arrival_process.rate / service_rate
    if rho >= 1.0:
        raise ValidationError(f"sigma only exists under stability (rho = {rho:.4f} >= 1)")
    if isinstance(arrival_process, PoissonArrivals):
        return rho

    # Memoize LST evaluations for the duration of the solve: brentq and the
    # fallback iteration revisit bracket endpoints, and each evaluation can
    # cost a scipy quadrature for interarrival laws without closed forms.
    lst_cache: dict = {}

    def cached_lst(s: float) -> float:
        value = lst_cache.get(s)
        if value is None:
            value = lst_cache[s] = arrival_process.interarrival_lst(s)
        return value

    def fixed_point_gap(x: float) -> float:
        return cached_lst(service_rate * (1.0 - x)) - x

    # fixed_point_gap(0) = A*(mu) > 0 and fixed_point_gap(1) = 0; the root in
    # (0, 1) is the unique point where the convex transform crosses x.
    upper = 1.0 - 1e-12
    if fixed_point_gap(upper) > 0:
        # Transform still above the diagonal just below 1 would contradict
        # stability; fall back to iteration from rho.
        x = rho
        for _ in range(10_000):
            next_x = cached_lst(service_rate * (1.0 - x))
            if abs(next_x - x) < tolerance:
                return float(next_x)
            x = next_x
        raise ValidationError("sigma fixed-point iteration did not converge")
    # Bisection bracket: move the lower end up until the gap changes sign.
    probe = rho / 2 if rho > 0 else 0.25
    while fixed_point_gap(probe) <= 0 and probe > 1e-15:
        probe /= 2
    lower = probe if fixed_point_gap(probe) > 0 else 0.0
    root = optimize.brentq(fixed_point_gap, lower, upper, xtol=tolerance)
    return float(root)
