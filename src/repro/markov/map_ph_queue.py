"""MAP/PH/1 queue solved with the same QBD machinery as the SQ(d) bounds.

The paper's conclusion singles out one extension of its methodology:

    "a potential and significant advantage of the matrix-geometric
    methodology employed in this paper is that it can be extended to the
    broad class of Markov Arrival Processes (MAP) and Phase-Type (PH)
    service distributions"

This module realizes that extension for the single-server building block:
a MAP/PH/1 queue.  Its generator is a textbook level-independent QBD whose
phase is the pair (arrival phase, service phase):

* ``A0 = D1 ⊗ I``          — an arrival moves up one level,
* ``A1 = D0 ⊗ I + I ⊗ S``  — phase evolution without level change,
* ``A2 = I ⊗ (s0 · β)``    — a service completion moves down one level and
  restarts service in phase ``β`` (``s0 = -S·1`` are the absorption rates).

The boundary level (empty queue) only carries the arrival phase.  The solver
reuses :mod:`repro.linalg.logarithmic_reduction` — the same algorithms used
for the SQ(d) bound models — and is validated in the tests against the M/M/1
and M/G/1 (Pollaczek–Khinchine) formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.blocks import geometric_block_sum
from repro.linalg.logarithmic_reduction import (
    is_qbd_positive_recurrent,
    rate_matrix_from_G,
    solve_G_logarithmic_reduction,
)
from repro.linalg.solvers import solve_constrained_left_nullspace, stationary_from_generator
from repro.markov.arrival_processes import ArrivalProcess, MarkovianArrivalProcess, PoissonArrivals
from repro.markov.service_distributions import (
    ErlangService,
    ExponentialService,
    PhaseTypeService,
    ServiceDistribution,
)
from repro.utils.validation import ValidationError


@dataclass(frozen=True)
class MAPPHQueueSolution:
    """Stationary performance of a MAP/PH/1 queue."""

    arrival_rate: float
    service_mean: float
    utilization: float
    mean_jobs_in_system: float
    mean_queue_length: float
    mean_sojourn_time: float
    mean_waiting_time: float
    probability_empty: float
    decay_radius: float


def _arrival_matrices(arrival_process: ArrivalProcess) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(arrival_process, MarkovianArrivalProcess):
        return arrival_process.D0, arrival_process.D1
    if isinstance(arrival_process, PoissonArrivals):
        rate = arrival_process.rate
        return np.array([[-rate]]), np.array([[rate]])
    raise ValidationError(
        "MAP/PH/1 analysis needs a MarkovianArrivalProcess or PoissonArrivals input "
        f"(got {type(arrival_process).__name__}); renewal processes can be represented as MAPs "
        "when their interarrival distribution is phase-type"
    )


def _service_representation(service: ServiceDistribution) -> tuple[np.ndarray, np.ndarray]:
    if isinstance(service, PhaseTypeService):
        return service.initial_distribution, service.subgenerator
    if isinstance(service, ExponentialService):
        phase_type = PhaseTypeService.from_exponential(1.0 / service.mean)
        return phase_type.initial_distribution, phase_type.subgenerator
    if isinstance(service, ErlangService):
        phase_type = PhaseTypeService.from_erlang(service.stages, service.mean)
        return phase_type.initial_distribution, phase_type.subgenerator
    raise ValidationError(
        "MAP/PH/1 analysis needs a phase-type-representable service distribution "
        f"(got {type(service).__name__}); use PhaseTypeService, ExponentialService or ErlangService, "
        "or convert with PhaseTypeService.from_hyperexponential / an explicit (alpha, S) pair"
    )


def solve_map_ph_1(arrival_process: ArrivalProcess, service: ServiceDistribution) -> MAPPHQueueSolution:
    """Solve a MAP/PH/1 queue for its stationary mean performance metrics.

    Raises
    ------
    ValidationError
        If the queue is unstable (``rho >= 1``) or the inputs are not of
        MAP / phase-type form.
    """
    D0, D1 = _arrival_matrices(arrival_process)
    beta, S = _service_representation(service)
    arrival_rate = arrival_process.rate
    service_mean = service.mean
    utilization = arrival_rate * service_mean
    if utilization >= 1.0:
        raise ValidationError(f"MAP/PH/1 queue is unstable: rho = {utilization:.4f} >= 1")

    num_arrival_phases = D0.shape[0]
    num_service_phases = S.shape[0]
    identity_a = np.eye(num_arrival_phases)
    identity_s = np.eye(num_service_phases)
    absorption = -S @ np.ones(num_service_phases)

    A0 = np.kron(D1, identity_s)
    A1 = np.kron(D0, identity_s) + np.kron(identity_a, S)
    A2 = np.kron(identity_a, np.outer(absorption, beta))

    if not is_qbd_positive_recurrent(A0, A1, A2):
        raise ValidationError("MAP/PH/1 QBD drift condition failed despite rho < 1 (check the input matrices)")

    g_result = solve_G_logarithmic_reduction(A0, A1, A2)
    R = rate_matrix_from_G(A0, A1, g_result.G)

    # Boundary: level 0 has only the arrival phase.  Transitions:
    #   level0 -> level0 : D0
    #   level0 -> level1 : D1 ⊗ beta  (arrival starts a service in phase beta)
    #   level1 -> level0 : I ⊗ s0     (service completes, no restart)
    B00 = D0
    B01 = np.kron(D1, beta.reshape(1, -1))
    B10 = np.kron(identity_a, absorption.reshape(-1, 1))

    phase_size = num_arrival_phases * num_service_phases
    total = num_arrival_phases + phase_size
    balance = np.zeros((total, total))
    balance[:num_arrival_phases, :num_arrival_phases] = B00
    balance[:num_arrival_phases, num_arrival_phases:] = B01
    balance[num_arrival_phases:, :num_arrival_phases] = B10
    balance[num_arrival_phases:, num_arrival_phases:] = A1 + R @ A2

    weights = np.concatenate(
        [np.ones(num_arrival_phases), geometric_block_sum(R, np.ones(phase_size))]
    )
    solution = solve_constrained_left_nullspace(balance, weights)
    solution = np.clip(solution, 0.0, None)
    pi0 = solution[:num_arrival_phases]
    pi1 = solution[num_arrival_phases:]

    inverse = np.linalg.inv(np.eye(phase_size) - R)
    ones = np.ones(phase_size)
    # Mean number in system: sum_{n>=1} n pi_n e with pi_n = pi1 R^{n-1}.
    mean_jobs = float(pi1 @ inverse @ inverse @ ones)
    probability_empty = float(pi0.sum())
    mean_sojourn = mean_jobs / arrival_rate
    mean_waiting = mean_sojourn - service_mean
    mean_queue = mean_jobs - utilization

    return MAPPHQueueSolution(
        arrival_rate=arrival_rate,
        service_mean=service_mean,
        utilization=utilization,
        mean_jobs_in_system=mean_jobs,
        mean_queue_length=float(mean_queue),
        mean_sojourn_time=float(mean_sojourn),
        mean_waiting_time=float(mean_waiting),
        probability_empty=probability_empty,
        decay_radius=float(np.max(np.abs(np.linalg.eigvals(R)))),
    )


def mg1_pollaczek_khinchine_waiting_time(arrival_rate: float, service: ServiceDistribution) -> float:
    """Mean waiting time of an M/G/1 queue (Pollaczek–Khinchine) — validation oracle."""
    utilization = arrival_rate * service.mean
    if utilization >= 1.0:
        raise ValidationError("M/G/1 queue is unstable")
    second_moment = service.variance + service.mean ** 2
    return arrival_rate * second_moment / (2.0 * (1.0 - utilization))
