"""Service-time (and interarrival-time) distributions.

The paper's base model uses exponential unit-mean service; its future-work
section points at phase-type (PH) service and non-Poisson arrivals.  The
catalogue here provides exponential, Erlang, hyperexponential, deterministic
and general phase-type distributions with a uniform interface: ``mean``,
``variance``, ``scv`` (squared coefficient of variation), ``sample`` and the
Laplace–Stieltjes transform ``lst`` used by the GI/M/1-type sigma root of
Theorem 2.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.validation import ValidationError, check_positive, check_probability


class ServiceDistribution(ABC):
    """Abstract base class for non-negative distributions."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Variance."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` independent samples."""

    @abstractmethod
    def lst(self, s: float) -> float:
        """Laplace–Stieltjes transform ``E[e^{-s X}]`` for ``s >= 0``."""

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``Var[X] / E[X]^2``."""
        return self.variance / self.mean ** 2

    @property
    def rate(self) -> float:
        """Reciprocal of the mean (service rate when used as a service time)."""
        return 1.0 / self.mean


class ExponentialService(ServiceDistribution):
    """Exponential distribution with the given rate (mean ``1/rate``)."""

    def __init__(self, rate: float = 1.0):
        self._rate = check_positive("rate", rate)

    @property
    def mean(self) -> float:
        return 1.0 / self._rate

    @property
    def variance(self) -> float:
        return 1.0 / self._rate ** 2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(1.0 / self._rate, size=size)

    def lst(self, s: float) -> float:
        return self._rate / (self._rate + s)

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return self._rate * math.exp(-self._rate * t)

    def __repr__(self) -> str:
        return f"ExponentialService(rate={self._rate})"


class ErlangService(ServiceDistribution):
    """Erlang distribution: sum of ``stages`` exponentials, total mean ``mean``."""

    def __init__(self, stages: int, mean: float = 1.0):
        if stages < 1:
            raise ValidationError("stages must be at least 1")
        self._stages = int(stages)
        self._mean = check_positive("mean", mean)
        self._stage_rate = self._stages / self._mean

    @property
    def stages(self) -> int:
        return self._stages

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._stages / self._stage_rate ** 2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(shape=self._stages, scale=1.0 / self._stage_rate, size=size)

    def lst(self, s: float) -> float:
        return (self._stage_rate / (self._stage_rate + s)) ** self._stages

    def pdf(self, t: float) -> float:
        if t <= 0:
            return 0.0
        k, rate = self._stages, self._stage_rate
        return rate ** k * t ** (k - 1) * math.exp(-rate * t) / math.factorial(k - 1)

    def __repr__(self) -> str:
        return f"ErlangService(stages={self._stages}, mean={self._mean})"


class HyperexponentialService(ServiceDistribution):
    """Mixture of exponentials: with probability ``p_i`` the sample is Exp(rate_i)."""

    def __init__(self, probabilities: Sequence[float], rates: Sequence[float]):
        if len(probabilities) != len(rates) or not probabilities:
            raise ValidationError("probabilities and rates must be non-empty and of equal length")
        total = sum(probabilities)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
            raise ValidationError(f"mixture probabilities must sum to 1, got {total}")
        self._probabilities = [check_probability(f"probabilities[{i}]", p) for i, p in enumerate(probabilities)]
        self._rates = [check_positive(f"rates[{i}]", r) for i, r in enumerate(rates)]

    @property
    def mean(self) -> float:
        return sum(p / r for p, r in zip(self._probabilities, self._rates))

    @property
    def variance(self) -> float:
        second_moment = sum(2.0 * p / r ** 2 for p, r in zip(self._probabilities, self._rates))
        return second_moment - self.mean ** 2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        branches = rng.choice(len(self._rates), size=size, p=self._probabilities)
        scales = np.array([1.0 / r for r in self._rates])
        return rng.exponential(scales[branches])

    def lst(self, s: float) -> float:
        return sum(p * r / (r + s) for p, r in zip(self._probabilities, self._rates))

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        return sum(p * r * math.exp(-r * t) for p, r in zip(self._probabilities, self._rates))

    @classmethod
    def balanced_two_phase(cls, mean: float, scv: float) -> "HyperexponentialService":
        """Two-phase hyperexponential with balanced means matching ``mean`` and ``scv >= 1``."""
        check_positive("mean", mean)
        if scv < 1.0:
            raise ValidationError("a hyperexponential distribution requires scv >= 1")
        p = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        rate1 = 2.0 * p / mean
        rate2 = 2.0 * (1.0 - p) / mean
        return cls([p, 1.0 - p], [rate1, rate2])

    def __repr__(self) -> str:
        return f"HyperexponentialService(probabilities={self._probabilities}, rates={self._rates})"


class DeterministicService(ServiceDistribution):
    """Degenerate distribution concentrated at a single value."""

    def __init__(self, value: float):
        self._value = check_positive("value", value)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def variance(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self._value)

    def lst(self, s: float) -> float:
        return math.exp(-s * self._value)

    def atoms(self) -> List[Tuple[float, float]]:
        """Support points and weights (used by the beta_k integrals)."""
        return [(self._value, 1.0)]

    def __repr__(self) -> str:
        return f"DeterministicService(value={self._value})"


class PhaseTypeService(ServiceDistribution):
    """General (continuous) phase-type distribution ``PH(alpha, S)``.

    ``alpha`` is the initial phase distribution and ``S`` the sub-generator of
    the transient phases; absorption rates are ``-S @ 1``.
    """

    def __init__(self, alpha: Sequence[float], S: Sequence[Sequence[float]]):
        alpha = np.asarray(alpha, dtype=float)
        S = np.asarray(S, dtype=float)
        if alpha.ndim != 1 or S.shape != (alpha.size, alpha.size):
            raise ValidationError("alpha must be a vector and S a matching square matrix")
        if not math.isclose(alpha.sum(), 1.0, abs_tol=1e-9):
            raise ValidationError("alpha must sum to 1")
        if np.any(alpha < -1e-12):
            raise ValidationError("alpha must be non-negative")
        off_diag = S - np.diag(np.diag(S))
        if np.any(off_diag < -1e-12):
            raise ValidationError("off-diagonal entries of S must be non-negative")
        exit_rates = -S.sum(axis=1)
        if np.any(exit_rates < -1e-9):
            raise ValidationError("S must have non-positive row sums (valid sub-generator)")
        self._alpha = np.clip(alpha, 0.0, None)
        self._alpha = self._alpha / self._alpha.sum()
        self._S = S
        self._exit_rates = np.clip(exit_rates, 0.0, None)
        self._mean = float(-self._alpha @ np.linalg.solve(S, np.ones(alpha.size)))
        inverse = np.linalg.inv(S)
        self._second_moment = float(2.0 * self._alpha @ inverse @ inverse @ np.ones(alpha.size))

    @property
    def num_phases(self) -> int:
        return self._alpha.size

    @property
    def initial_distribution(self) -> np.ndarray:
        """The initial phase distribution ``alpha``."""
        return self._alpha.copy()

    @property
    def subgenerator(self) -> np.ndarray:
        """The transient-phase sub-generator ``S``."""
        return self._S.copy()

    @property
    def absorption_rates(self) -> np.ndarray:
        """Absorption (service-completion) rates ``s0 = -S 1``."""
        return self._exit_rates.copy()

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._second_moment - self._mean ** 2

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        samples = np.empty(size)
        total_rates = -np.diag(self._S)
        for k in range(size):
            phase = int(rng.choice(self.num_phases, p=self._alpha))
            elapsed = 0.0
            while True:
                rate = total_rates[phase]
                elapsed += rng.exponential(1.0 / rate)
                absorb_weight = self._exit_rates[phase]
                move_weights = self._S[phase].copy()
                move_weights[phase] = 0.0
                move_total = move_weights.sum()
                if rng.random() < absorb_weight / (absorb_weight + move_total):
                    samples[k] = elapsed
                    break
                phase = int(rng.choice(self.num_phases, p=move_weights / move_total))
        return samples

    def lst(self, s: float) -> float:
        n = self.num_phases
        matrix = s * np.eye(n) - self._S
        return float(self._alpha @ np.linalg.solve(matrix, self._exit_rates))

    def pdf(self, t: float) -> float:
        if t < 0:
            return 0.0
        from scipy.linalg import expm

        return float(self._alpha @ expm(self._S * t) @ self._exit_rates)

    @classmethod
    def from_erlang(cls, stages: int, mean: float = 1.0) -> "PhaseTypeService":
        """Phase-type representation of an Erlang distribution (cross-check helper)."""
        if stages < 1:
            raise ValidationError("stages must be at least 1")
        rate = stages / mean
        alpha = np.zeros(stages)
        alpha[0] = 1.0
        S = np.zeros((stages, stages))
        for i in range(stages):
            S[i, i] = -rate
            if i + 1 < stages:
                S[i, i + 1] = rate
        return cls(alpha, S)

    @classmethod
    def from_exponential(cls, rate: float) -> "PhaseTypeService":
        """Single-phase representation of an exponential distribution."""
        check_positive("rate", rate)
        return cls(np.array([1.0]), np.array([[-rate]]))

    @classmethod
    def from_hyperexponential(cls, probabilities: Sequence[float], rates: Sequence[float]) -> "PhaseTypeService":
        """Phase-type representation of a hyperexponential mixture."""
        hyper = HyperexponentialService(probabilities, rates)
        alpha = np.array(hyper._probabilities)  # validated by the constructor above
        S = -np.diag(hyper._rates)
        return cls(alpha, S)

    def __repr__(self) -> str:
        return f"PhaseTypeService(phases={self.num_phases}, mean={self._mean:.4g})"
