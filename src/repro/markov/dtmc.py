"""A generic finite discrete-time Markov chain (DTMC)."""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

import numpy as np

from repro.linalg.solvers import stationary_from_transition_matrix

State = Hashable


class DiscreteTimeMarkovChain:
    """Finite DTMC defined by a state list and a dense transition matrix."""

    def __init__(self, states: Sequence[State], transition_matrix: np.ndarray):
        self._states: List[State] = list(states)
        if len(set(self._states)) != len(self._states):
            raise ValueError("states must be unique")
        matrix = np.asarray(transition_matrix, dtype=float)
        n = len(self._states)
        if matrix.shape != (n, n):
            raise ValueError(f"transition matrix must be {n}x{n}, got {matrix.shape}")
        if np.any(matrix < -1e-12):
            raise ValueError("transition probabilities must be non-negative")
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-8):
            raise ValueError("transition matrix rows must sum to 1")
        self._matrix = np.clip(matrix, 0.0, None)
        self._index: Dict[State, int] = {state: i for i, state in enumerate(self._states)}

    @property
    def states(self) -> List[State]:
        return list(self._states)

    @property
    def num_states(self) -> int:
        return len(self._states)

    @property
    def transition_matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def index_of(self, state: State) -> int:
        return self._index[state]

    def probability(self, source: State, target: State) -> float:
        return float(self._matrix[self._index[source], self._index[target]])

    def stationary_distribution(self) -> Dict[State, float]:
        """Stationary distribution as a state-keyed dict (requires irreducibility)."""
        pi = stationary_from_transition_matrix(self._matrix)
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def step_distribution(self, distribution: Dict[State, float], steps: int = 1) -> Dict[State, float]:
        """Propagate a distribution ``steps`` transitions forward."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        vector = np.zeros(self.num_states)
        for state, probability in distribution.items():
            vector[self._index[state]] = probability
        for _ in range(steps):
            vector = vector @ self._matrix
        return {state: float(vector[i]) for i, state in enumerate(self._states)}
