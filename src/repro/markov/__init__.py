"""Markov-chain substrate: generic CTMC/DTMC containers and stochastic processes.

This subpackage provides the probabilistic building blocks the SQ(d)
analysis sits on: finite continuous- and discrete-time Markov chains with
stationary solvers, arrival processes (Poisson, renewal, Markovian Arrival
Processes) together with the mixed-Poisson integrals ``beta_k`` of the
paper's Eq. (19), and service-time distributions (exponential, Erlang,
hyperexponential, deterministic and general phase-type).
"""

from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.markov.dtmc import DiscreteTimeMarkovChain
from repro.markov.arrival_processes import (
    ArrivalProcess,
    PoissonArrivals,
    RenewalArrivals,
    MarkovianArrivalProcess,
    beta_coefficients,
    solve_sigma,
)
from repro.markov.service_distributions import (
    ServiceDistribution,
    ExponentialService,
    ErlangService,
    HyperexponentialService,
    DeterministicService,
    PhaseTypeService,
)
from repro.markov.map_ph_queue import (
    MAPPHQueueSolution,
    mg1_pollaczek_khinchine_waiting_time,
    solve_map_ph_1,
)

__all__ = [
    "MAPPHQueueSolution",
    "solve_map_ph_1",
    "mg1_pollaczek_khinchine_waiting_time",
    "ContinuousTimeMarkovChain",
    "DiscreteTimeMarkovChain",
    "ArrivalProcess",
    "PoissonArrivals",
    "RenewalArrivals",
    "MarkovianArrivalProcess",
    "beta_coefficients",
    "solve_sigma",
    "ServiceDistribution",
    "ExponentialService",
    "ErlangService",
    "HyperexponentialService",
    "DeterministicService",
    "PhaseTypeService",
]
