"""A generic finite continuous-time Markov chain (CTMC).

The chain is described by an arbitrary hashable state set and a sparse
transition-rate map.  It offers stationary analysis (via dense linear
algebra), uniformization into a DTMC, expected-reward evaluation and
conversion to a NumPy generator matrix.  The exact SQ(d) oracle of
:mod:`repro.core.exact` and several tests are built on top of this class.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.linalg.solvers import stationary_from_generator
from repro.markov.dtmc import DiscreteTimeMarkovChain

State = Hashable


class ContinuousTimeMarkovChain:
    """Finite CTMC over an explicit list of states.

    Parameters
    ----------
    states:
        The state list; order defines the indexing of all vectors/matrices.
    rates:
        Mapping ``(source, target) -> rate`` with positive rates for
        ``source != target``.  Missing pairs have rate zero.  Diagonal
        entries are derived automatically.
    """

    def __init__(self, states: Sequence[State], rates: Mapping[Tuple[State, State], float]):
        self._states: List[State] = list(states)
        if len(set(self._states)) != len(self._states):
            raise ValueError("states must be unique")
        self._index: Dict[State, int] = {state: i for i, state in enumerate(self._states)}
        self._rates: Dict[Tuple[State, State], float] = {}
        for (source, target), rate in rates.items():
            if source not in self._index or target not in self._index:
                raise ValueError(f"transition {source!r} -> {target!r} references an unknown state")
            if source == target:
                continue
            if rate < 0:
                raise ValueError(f"negative rate for transition {source!r} -> {target!r}")
            if rate == 0:
                continue
            self._rates[(source, target)] = self._rates.get((source, target), 0.0) + float(rate)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def states(self) -> List[State]:
        """The ordered state list."""
        return list(self._states)

    @property
    def num_states(self) -> int:
        return len(self._states)

    def index_of(self, state: State) -> int:
        """Index of ``state`` in the state ordering."""
        return self._index[state]

    def rate(self, source: State, target: State) -> float:
        """Transition rate from ``source`` to ``target`` (0 if absent)."""
        return self._rates.get((source, target), 0.0)

    def transitions_from(self, source: State) -> List[Tuple[State, float]]:
        """All outgoing transitions of ``source`` as ``(target, rate)`` pairs."""
        return [(target, rate) for (src, target), rate in self._rates.items() if src == source]

    def exit_rate(self, source: State) -> float:
        """Total outgoing rate of ``source``."""
        return sum(rate for (src, _), rate in self._rates.items() if src == source)

    # ------------------------------------------------------------------ #
    # Matrix forms and analysis
    # ------------------------------------------------------------------ #
    def generator_matrix(self) -> np.ndarray:
        """Dense generator matrix ``Q`` with rows summing to zero."""
        n = self.num_states
        Q = np.zeros((n, n))
        for (source, target), rate in self._rates.items():
            Q[self._index[source], self._index[target]] += rate
        np.fill_diagonal(Q, Q.diagonal() - Q.sum(axis=1))
        return Q

    def stationary_distribution(self) -> Dict[State, float]:
        """Stationary distribution as a state-keyed dict (requires irreducibility)."""
        pi = stationary_from_generator(self.generator_matrix())
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def expected_reward(self, reward: Callable[[State], float]) -> float:
        """Stationary expectation of a per-state reward function."""
        distribution = self.stationary_distribution()
        return float(sum(probability * reward(state) for state, probability in distribution.items()))

    def uniformize(self, uniformization_rate: float | None = None) -> DiscreteTimeMarkovChain:
        """Return the uniformized DTMC ``P = I + Q / Lambda``.

        ``Lambda`` defaults to a value slightly above the largest exit rate,
        guaranteeing non-negative self-loop probabilities.
        """
        Q = self.generator_matrix()
        max_exit = float(np.max(-np.diag(Q))) if self.num_states else 0.0
        if uniformization_rate is None:
            uniformization_rate = max_exit * 1.0000001 if max_exit > 0 else 1.0
        if uniformization_rate < max_exit:
            raise ValueError("uniformization rate must be at least the largest exit rate")
        P = np.eye(self.num_states) + Q / uniformization_rate
        return DiscreteTimeMarkovChain(self._states, P)

    def is_conservative(self, tolerance: float = 1e-9) -> bool:
        """True if every row of the generator sums to (numerically) zero."""
        Q = self.generator_matrix()
        return bool(np.allclose(Q.sum(axis=1), 0.0, atol=tolerance))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_transition_function(
        cls,
        initial_states: Iterable[State],
        transition_function: Callable[[State], Iterable[Tuple[State, float]]],
        max_states: int = 1_000_000,
    ) -> "ContinuousTimeMarkovChain":
        """Build a CTMC by exploring the reachable state space.

        ``transition_function(state)`` returns the outgoing ``(target, rate)``
        pairs of ``state``.  Exploration is breadth-first from
        ``initial_states`` and stops with an error if ``max_states`` is
        exceeded (a guard against accidentally unbounded state spaces).
        """
        frontier = list(initial_states)
        seen = set(frontier)
        rates: Dict[Tuple[State, State], float] = {}
        ordered: List[State] = list(frontier)
        while frontier:
            state = frontier.pop()
            for target, rate in transition_function(state):
                if rate <= 0:
                    continue
                rates[(state, target)] = rates.get((state, target), 0.0) + float(rate)
                if target not in seen:
                    if len(seen) >= max_states:
                        raise RuntimeError(f"state-space exploration exceeded {max_states} states")
                    seen.add(target)
                    ordered.append(target)
                    frontier.append(target)
        return cls(ordered, rates)
