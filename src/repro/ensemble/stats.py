"""Replication statistics: means, variances and Student-t confidence intervals.

Every quantity an ensemble run reports is a *replication mean*: ``K``
independent simulations produce ``K`` estimates of (say) the mean sojourn
time, and the across-replication sample mean/variance yield a Student-t
confidence interval for the true finite-``N`` expectation.  This is the
standard independent-replications method for steady-state simulation output
analysis; it is what lets a finite-``N`` point estimate be compared
meaningfully against a mean-field limit curve (inside vs outside the
interval) instead of eyeballing two bare numbers.

Everything here is dependency-light — ``math`` only, no scipy.  The Student-t
quantile is computed by bisecting the exact CDF, itself evaluated through the
regularized incomplete beta function (Lentz's continued fraction, the
classical ``betacf`` scheme), accurate to ~1e-10 across all practical
``(confidence, df)`` pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.utils.validation import ValidationError, check_integer, check_positive

__all__ = [
    "ReplicationStatistics",
    "student_t_cdf",
    "student_t_quantile",
    "summarize",
    "t_half_width",
]


def _betacf(a: float, b: float, x: float, max_iterations: int = 200, epsilon: float = 3e-14) -> float:
    """Continued fraction for the incomplete beta function (Lentz's method)."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            return h
    return h


def _regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the regularized incomplete beta function."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(log_front)
    # Use the continued fraction directly where it converges fast, else the
    # symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom.

    Parameters
    ----------
    t : float
        Evaluation point.
    df : float
        Degrees of freedom, > 0.

    Returns
    -------
    float
        ``P(T <= t)`` for ``T ~ t(df)``.
    """
    check_positive("df", df)
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * _regularized_incomplete_beta(0.5 * df, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def student_t_quantile(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value ``t*`` for a confidence interval.

    Parameters
    ----------
    confidence : float
        Two-sided confidence level in (0, 1), e.g. ``0.95``.
    df : int
        Degrees of freedom (number of replications minus one), >= 1.

    Returns
    -------
    float
        ``t*`` such that ``P(|T| <= t*) = confidence`` for ``T ~ t(df)``;
        the CI half-width is ``t* * s / sqrt(K)``.
    """
    if not (0.0 < confidence < 1.0):
        raise ValidationError(f"confidence must be in (0, 1), got {confidence!r}")
    df = check_integer("df", df, minimum=1)
    target = 0.5 + 0.5 * confidence  # upper-tail probability of +t*
    low, high = 0.0, 2.0
    while student_t_cdf(high, df) < target:
        high *= 2.0
        if high > 1e9:  # pragma: no cover - unreachable for valid inputs
            break
    for _ in range(200):
        mid = 0.5 * (low + high)
        if student_t_cdf(mid, df) < target:
            low = mid
        else:
            high = mid
        if high - low < 1e-12 * max(1.0, high):
            break
    return 0.5 * (low + high)


def t_half_width(count: int, variance: float, confidence: float) -> float:
    """Student-t CI half-width from streaming moments, no sample list needed.

    This is the moments-form of :attr:`ReplicationStatistics.half_width`:
    both evaluate ``t* * sqrt(s^2) / sqrt(K)`` in the same operation order,
    so a streaming accumulator (:mod:`repro.campaigns.accumulators`) and the
    batch path report identical intervals for identical moments.

    Parameters
    ----------
    count : int
        Number of replications ``K``.
    variance : float
        Unbiased sample variance (ddof=1) of the replication values.
    confidence : float
        Two-sided confidence level in (0, 1).

    Returns
    -------
    float
        The half-width; ``nan`` while ``count < 2`` (no variance estimate).
    """
    if count < 2 or variance != variance:
        return float("nan")
    standard_error = math.sqrt(variance) / math.sqrt(count)
    return student_t_quantile(confidence, count - 1) * standard_error


@dataclass(frozen=True)
class ReplicationStatistics:
    """Across-replication summary of one scalar metric.

    Attributes
    ----------
    samples : tuple of float
        One value per independent replication (e.g. each replication's
        time-average sojourn time, in units of ``1/mu``).
    confidence : float
        Two-sided confidence level of :attr:`half_width` (default 0.95).
    """

    samples: Tuple[float, ...]
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValidationError("ReplicationStatistics needs at least one sample")
        if not (0.0 < self.confidence < 1.0):
            raise ValidationError(f"confidence must be in (0, 1), got {self.confidence!r}")

    @classmethod
    def from_samples(cls, samples: Sequence[float], confidence: float = 0.95) -> "ReplicationStatistics":
        """Build from any sequence of replication values."""
        return cls(samples=tuple(float(x) for x in samples), confidence=confidence)

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Sample mean of the replication values."""
        return sum(self.samples) / len(self.samples)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (ddof=1); ``nan`` for a single sample."""
        if len(self.samples) < 2:
            return float("nan")
        mean = self.mean
        return sum((x - mean) ** 2 for x in self.samples) / (len(self.samples) - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation; ``nan`` for a single sample."""
        variance = self.variance
        return math.sqrt(variance) if variance == variance else float("nan")

    @property
    def standard_error(self) -> float:
        """Standard error of the mean, ``s / sqrt(K)``."""
        return self.std / math.sqrt(len(self.samples))

    @property
    def half_width(self) -> float:
        """Student-t CI half-width at :attr:`confidence`; ``nan`` if K < 2."""
        return t_half_width(len(self.samples), self.variance, self.confidence)

    @property
    def relative_half_width(self) -> float:
        """Half-width over |mean| — the precision the stopping rule targets."""
        mean = self.mean
        if mean == 0.0:
            return float("inf")
        return self.half_width / abs(mean)

    def confidence_interval(self) -> Tuple[float, float]:
        """``(lower, upper)`` of the two-sided CI at :attr:`confidence`."""
        half = self.half_width
        mean = self.mean
        return (mean - half, mean + half)

    def precision_reached(self, target_relative_half_width: float) -> bool:
        """True once the relative half-width is at or below the target.

        This is the classical *relative-precision sequential stopping rule*:
        keep adding replications until ``half_width / |mean| <= target``.
        Returns ``False`` while fewer than two replications exist (no
        variance estimate yet).
        """
        check_positive("target_relative_half_width", target_relative_half_width)
        relative = self.relative_half_width
        return relative == relative and relative <= target_relative_half_width

    def __str__(self) -> str:
        if len(self.samples) < 2:
            return f"{self.mean:.6g} (1 replication, no CI)"
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%} CI, {self.n} replications)"
        )


def summarize(samples: Sequence[float], confidence: float = 0.95) -> ReplicationStatistics:
    """Shorthand for :meth:`ReplicationStatistics.from_samples`."""
    return ReplicationStatistics.from_samples(samples, confidence=confidence)
