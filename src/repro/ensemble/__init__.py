"""Parallel multi-replication experiment orchestration with CI statistics.

PR 1's occupancy engine made a *single* fleet-scale run cheap; this package
makes runs *trustworthy and parallel*.  Every experiment becomes an
*ensemble* — ``K`` independent replications fanned out over worker processes
— and every reported number carries a Student-t confidence interval, which
is what makes finite-``N`` vs mean-field comparisons meaningful (the limit
curve either sits inside the interval or it does not):

* :mod:`repro.ensemble.runner` — the ``multiprocessing`` fan-out with
  per-replication seed derivation and a relative-precision stopping rule,
* :mod:`repro.ensemble.stats` — dependency-light replication statistics
  (mean, variance, Student-t intervals via the incomplete beta function),
* :mod:`repro.ensemble.grid` — cartesian ``(N, d, rho, scenario)`` sweeps
  scheduled across one shared pool,
* :mod:`repro.ensemble.results` — an append-only JSONL store persisting
  every replication with its config, seeds and git provenance.

Determinism contract: given the same seed and replication count, results are
bitwise identical regardless of worker count, task scheduling, or whether a
pool is used at all.
"""

from repro.ensemble.grid import (
    GridConfig,
    GridPoint,
    GridResult,
    PointTask,
    point_digest,
    point_seed,
    point_tasks,
    run_grid,
    task_id_for,
)
from repro.ensemble.results import (
    ResultStore,
    git_describe,
    iter_jsonl,
    provenance,
    read_jsonl,
    repair_jsonl,
)
from repro.ensemble.runner import (
    SIMULATION_KINDS,
    EnsembleConfig,
    EnsembleResult,
    run_ensemble,
)
from repro.ensemble.stats import (
    ReplicationStatistics,
    student_t_cdf,
    student_t_quantile,
    summarize,
    t_half_width,
)

__all__ = [
    "SIMULATION_KINDS",
    "EnsembleConfig",
    "EnsembleResult",
    "run_ensemble",
    "GridConfig",
    "GridPoint",
    "GridResult",
    "PointTask",
    "point_digest",
    "point_seed",
    "point_tasks",
    "run_grid",
    "task_id_for",
    "ReplicationStatistics",
    "student_t_cdf",
    "student_t_quantile",
    "summarize",
    "t_half_width",
    "ResultStore",
    "iter_jsonl",
    "read_jsonl",
    "repair_jsonl",
    "provenance",
    "git_describe",
]
