"""Parallel multi-replication runner for every stochastic backend.

One *ensemble* is ``K`` statistically independent replications of the same
experiment spec on the same backend, fanned out over a pool of worker
processes and summarized by across-replication Student-t confidence
intervals (:mod:`repro.ensemble.stats`).  The runner is what turns a single
stochastic point estimate ("the mean delay came out as 2.31") into a
defensible one ("2.31 ± 0.04 at 95% confidence over 8 replications") — the
form in which a finite-``N`` estimate can be compared against the paper's
bounds and the mean-field limit.

Since PR 3 the configuration is an :class:`repro.api.spec.ExperimentSpec`
plus a backend name; the pre-spec ``(kind, parameters)`` dialect keeps
working through :mod:`repro.api.compat` with a ``DeprecationWarning``.

Determinism is a hard contract here, not a convenience:

* replication ``i`` always simulates with the ``i``-th child seed of the
  ensemble seed (:func:`repro.utils.seeding.spawn_seeds`), independently of
  which worker runs it, in which order tasks complete, or how many workers
  exist — ``workers=8`` and ``workers=1`` produce bitwise-identical records;
* the adaptive stopping rule extends the ensemble in fixed-size batches, so
  even precision-targeted runs are reproducible across machines with
  different core counts.

Worker processes execute a module-level function (picklable under every
``multiprocessing`` start method) and receive only plain data — the frozen
spec, the backend name and an integer seed — never live simulator objects.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.backends import get_backend, require_capable, select_backend
from repro.api.compat import LEGACY_KINDS, kind_from_spec, spec_from_kind
from repro.api.spec import ExperimentSpec, SpecError
from repro.ensemble.stats import ReplicationStatistics
from repro.utils.seeding import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import ValidationError, check_integer, check_positive

__all__ = [
    "SIMULATION_KINDS",
    "EnsembleConfig",
    "EnsembleResult",
    "run_ensemble",
    "worker_pool",
]

#: Default number of replications added per adaptive extension round.  Fixed
#: (instead of "one batch per worker") so the stopping rule's trajectory does
#: not depend on the machine's core count.
DEFAULT_BATCH_SIZE = 4

#: The legacy simulation kinds (deprecated spelling of the backends).
SIMULATION_KINDS: Tuple[str, ...] = tuple(sorted(LEGACY_KINDS))


# --------------------------------------------------------------------- #
# Worker side: one replication = (backend, spec, seed) -> metrics dict
# --------------------------------------------------------------------- #
def _execute_replication(task: Tuple[str, ExperimentSpec, int, int]) -> Dict[str, Any]:
    """Run one replication in a worker process; returns a plain record dict."""
    backend_name, spec, seed, index = task
    started = time.perf_counter()
    metrics = get_backend(backend_name).run_once(spec, seed)
    record: Dict[str, Any] = {"replication": index, "seed": seed}
    record.update(metrics)
    record["wall_seconds"] = time.perf_counter() - started
    return record


# --------------------------------------------------------------------- #
# Driver side
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class EnsembleConfig:
    """One ensemble: an experiment spec, a backend, and a replication policy.

    Parameters
    ----------
    spec : ExperimentSpec
        The experiment to replicate (the canonical configuration since
        PR 3).
    backend : str, optional
        A registered stochastic backend (``"ctmc"``, ``"cluster"``,
        ``"fleet"``); defaults to the cheapest capable one for the spec.
    kind : str, optional
        *Deprecated* — the pre-spec simulator name (``"fleet"``,
        ``"gillespie"``, ``"cluster"``, ``"scenario"``).  Converted to a
        spec internally and kept as a read-only legacy view.
    parameters : mapping, optional
        *Deprecated* — raw keyword arguments of the legacy dialect,
        *without* ``seed``.  Populated as a legacy view even for
        spec-built configs, so old call-sites keep reading it; ``kind`` is
        ``None`` (and ``parameters`` empty) when the spec is not
        legacy-expressible, e.g. with a non-default workload.
    replications : int
        Number of replications to run (the *initial* batch when
        ``target_relative_half_width`` is set).
    workers : int
        Worker processes.  ``1`` runs inline in the calling process (no
        pool); results are identical either way.
    seed : int or None
        Ensemble seed; replication ``i`` uses the ``i``-th derived child
        seed.  ``None`` gives a non-reproducible ensemble.
    confidence : float
        Two-sided confidence level of the reported intervals.
    target_relative_half_width : float or None
        If set, keep adding ``batch_size``-replication rounds until the CI
        half-width of ``mean_delay`` falls below this fraction of the mean
        (or ``max_replications`` is reached) — runs then terminate at a
        target *precision* instead of a fixed replication count.
    max_replications : int
        Hard cap for the adaptive mode.
    batch_size : int
        Replications added per adaptive round; fixed by default so the
        stopping trajectory is machine-independent.
    """

    kind: Optional[str] = None
    parameters: Mapping[str, Any] = field(default_factory=dict)
    replications: int = 8
    workers: int = 1
    seed: Optional[int] = 12345
    confidence: float = 0.95
    target_relative_half_width: Optional[float] = None
    max_replications: int = 64
    batch_size: int = DEFAULT_BATCH_SIZE
    spec: Optional[ExperimentSpec] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.spec is None:
            if self.kind is None:
                raise SpecError(
                    "EnsembleConfig needs spec=ExperimentSpec(...) "
                    "(or the deprecated kind=/parameters= pair)"
                )
            warnings.warn(
                "EnsembleConfig(kind=..., parameters=...) is deprecated; "
                "pass spec=ExperimentSpec(...) (and optionally backend=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            spec, backend = spec_from_kind(
                self.kind, self.parameters, seed=self.seed if self.seed is not None else 12345
            )
            object.__setattr__(self, "spec", spec)
            object.__setattr__(self, "backend", backend)
        else:
            if self.kind is not None:
                raise SpecError("pass either spec= or the deprecated kind=, not both")
            if self.backend is None:
                object.__setattr__(
                    self, "backend", select_backend(self.spec, replicable_only=True).name
                )
            else:
                require_capable(self.backend, self.spec)
            # Keep the legacy view readable for pre-spec call-sites.
            kind, parameters = kind_from_spec(self.spec, self.backend)
            object.__setattr__(self, "kind", kind)
            object.__setattr__(self, "parameters", parameters)
        if get_backend(self.backend).capabilities.deterministic:
            raise SpecError(
                f"backend {self.backend!r} is deterministic — replicating it is "
                "meaningless; call repro.run(spec, backend=...) directly"
            )
        check_integer("replications", self.replications, minimum=1)
        check_integer("workers", self.workers, minimum=1)
        check_integer("batch_size", self.batch_size, minimum=1)
        if not (0.0 < self.confidence < 1.0):
            raise ValidationError(f"confidence must be in (0, 1), got {self.confidence!r}")
        if self.target_relative_half_width is not None:
            check_positive("target_relative_half_width", self.target_relative_half_width)
            # The cap only matters in adaptive mode; a plain fixed-count run
            # may ask for any number of replications.
            check_integer("max_replications", self.max_replications, minimum=self.replications)
        else:
            check_integer("max_replications", self.max_replications, minimum=1)


@dataclass(frozen=True)
class EnsembleResult:
    """All replication records of one ensemble, plus CI summaries.

    Attributes
    ----------
    config : EnsembleConfig
        The configuration that produced the records.
    records : tuple of dict
        One plain record per replication, ordered by replication index.
        Each carries the replication index, its derived seed, every scalar
        metric the simulator reports (delays in units of ``1/mu``) and the
        per-replication wall-clock time in seconds.
    wall_seconds : float
        Wall-clock time of the whole ensemble (including pool start-up).
    """

    config: EnsembleConfig
    records: Tuple[Dict[str, Any], ...]
    wall_seconds: float = float("nan")

    @property
    def replications(self) -> int:
        """Number of replications actually executed."""
        return len(self.records)

    #: Record keys derived from wall-clock time rather than the simulation;
    #: everything else is a deterministic function of the configuration.
    TIMING_KEYS = ("wall_seconds", "events_per_second")

    #: Non-numeric provenance keys a backend may attach to its records
    #: (e.g. the fleet backend's resolved event kernel).  They ride along in
    #: the records and JSONL stores but are not averaged like metrics.
    TEXT_KEYS = ("kernel",)

    def metric_names(self) -> List[str]:
        """The scalar metrics shared by every record."""
        reserved = {"replication", "seed", *self.TEXT_KEYS}
        return [key for key in self.records[0] if key not in reserved]

    def simulation_records(self) -> List[Dict[str, Any]]:
        """Records with wall-clock keys stripped — the bitwise-reproducible
        part, which the determinism regression tests compare across runs,
        processes and worker counts."""
        return [
            {key: value for key, value in record.items() if key not in self.TIMING_KEYS}
            for record in self.records
        ]

    def samples(self, metric: str = "mean_delay") -> List[float]:
        """Per-replication values of one metric, in replication order."""
        if metric not in self.records[0]:
            raise ValidationError(
                f"unknown metric {metric!r}; available: {', '.join(self.metric_names())}"
            )
        return [float(record[metric]) for record in self.records]

    def statistics(self, metric: str = "mean_delay") -> ReplicationStatistics:
        """Across-replication statistics of one metric."""
        return ReplicationStatistics.from_samples(
            self.samples(metric), confidence=self.config.confidence
        )

    @property
    def delay(self) -> ReplicationStatistics:
        """Statistics of the headline metric, the mean sojourn time."""
        return self.statistics("mean_delay")

    def as_table(self) -> str:
        """Render metric summaries (mean, CI, extremes) as a text table."""
        headers = ["metric", "mean", f"±{self.config.confidence:.0%} CI", "std", "min", "max"]
        rows = []
        for metric in self.metric_names():
            if metric in self.TIMING_KEYS:
                continue  # wall-clock noise, not a simulation output
            statistics = self.statistics(metric)
            rows.append(
                [
                    metric,
                    statistics.mean,
                    statistics.half_width,
                    statistics.std,
                    min(statistics.samples),
                    max(statistics.samples),
                ]
            )
        config = self.config
        title = (
            f"ensemble: {config.backend} ({config.spec.describe()}) x "
            f"{self.replications} replications (seed {config.seed})"
        )
        return format_table(headers, rows, title=title)


@contextlib.contextmanager
def worker_pool(workers: int):
    """Yield one shared ``multiprocessing.Pool`` (or ``None`` for one worker).

    Sweeps that call :func:`run_ensemble` once per grid point should open
    the pool here and pass it down, so pool start-up/tear-down is paid once
    per sweep instead of once per point.
    """
    check_integer("workers", workers, minimum=1)
    if workers == 1:
        yield None
        return
    pool = multiprocessing.Pool(processes=workers)
    try:
        yield pool
    finally:
        pool.close()
        pool.join()


def _run_batch(
    config: EnsembleConfig, start: int, count: int, pool
) -> List[Dict[str, Any]]:
    """Execute replications ``start .. start + count - 1`` (ordered)."""
    seeds = spawn_seeds(config.seed, count, start=start)
    tasks = [
        (config.backend, config.spec, seed, start + offset)
        for offset, seed in enumerate(seeds)
    ]
    if pool is None:
        return [_execute_replication(task) for task in tasks]
    return list(pool.map(_execute_replication, tasks))


def run_ensemble(
    kind: Optional[str] = None,
    parameters: Optional[Mapping[str, Any]] = None,
    replications: int = 8,
    workers: int = 1,
    seed: Optional[int] = 12345,
    confidence: float = 0.95,
    target_relative_half_width: Optional[float] = None,
    max_replications: int = 64,
    batch_size: int = DEFAULT_BATCH_SIZE,
    config: Optional[EnsembleConfig] = None,
    pool=None,
    spec: Optional[ExperimentSpec] = None,
    backend: Optional[str] = None,
) -> EnsembleResult:
    """Run ``K`` independent replications of one experiment, in parallel.

    Parameters
    ----------
    spec : ExperimentSpec, optional
        The experiment to replicate — the canonical input.
    backend : str, optional
        Stochastic backend name; auto-selected from the spec if omitted.
    kind, parameters :
        *Deprecated* legacy dialect (``"fleet"`` / ``"gillespie"`` /
        ``"cluster"`` / ``"scenario"`` plus a raw keyword dict); converted
        to a spec internally with a ``DeprecationWarning``.
    replications, workers, seed, confidence, target_relative_half_width, \
max_replications, batch_size :
        See :class:`EnsembleConfig`.  Ignored when ``config`` is given.
    config : EnsembleConfig, optional
        A pre-built configuration (used by the grid engine so one pool can
        be shared across many ensembles).
    pool : multiprocessing.Pool, optional
        An externally managed worker pool to schedule on.  The caller keeps
        ownership (it is not closed here); ``workers`` is then only
        recorded, not acted on.  This lets a sweep over many ensembles —
        the figure harnesses, the scale study — pay pool start-up once
        instead of once per point.

    Returns
    -------
    EnsembleResult
        Ordered replication records plus CI statistics per metric.

    Notes
    -----
    The result is a deterministic function of ``(spec, backend,
    replications, seed, confidence, target_relative_half_width, batch_size)``
    alone — the worker count only changes wall-clock time.

    Examples
    --------
    >>> from repro.api import ExperimentSpec
    >>> result = run_ensemble(
    ...     spec=ExperimentSpec.create(
    ...         num_servers=200, utilization=0.8, num_events=20_000),
    ...     replications=4,
    ...     seed=7,
    ... )
    >>> result.replications
    4
    """
    if config is None:
        if spec is not None and kind is not None:
            raise SpecError("pass either spec= or the deprecated kind=, not both")
        config = EnsembleConfig(
            kind=kind,
            parameters=dict(parameters or {}),
            spec=spec,
            backend=backend,
            replications=replications,
            workers=workers,
            seed=seed,
            confidence=confidence,
            target_relative_half_width=target_relative_half_width,
            max_replications=max_replications,
            batch_size=batch_size,
        )
    started = time.perf_counter()
    owned_pool = None
    try:
        if pool is None and config.workers > 1:
            pool = owned_pool = multiprocessing.Pool(processes=config.workers)
        records = _run_batch(config, 0, config.replications, pool)
        if config.target_relative_half_width is not None:
            while len(records) < config.max_replications:
                statistics = ReplicationStatistics.from_samples(
                    [record["mean_delay"] for record in records],
                    confidence=config.confidence,
                )
                if statistics.precision_reached(config.target_relative_half_width):
                    break
                count = min(config.batch_size, config.max_replications - len(records))
                records.extend(_run_batch(config, len(records), count, pool))
    finally:
        if owned_pool is not None:
            owned_pool.close()
            owned_pool.join()
    return EnsembleResult(
        config=config,
        records=tuple(records),
        wall_seconds=time.perf_counter() - started,
    )
