"""Sweep-grid engine: a cartesian product of ensembles over one worker pool.

A single ensemble parallelizes the replications of *one* configuration; a
sweep wants ``(N, d, utilization, scenario) x replications`` all at once.
Scheduling the flattened task list over one shared pool keeps every worker
busy across point boundaries — with per-point pools, each point would end
with a straggler barrier and the pool start-up cost would be paid once per
point instead of once per sweep.

Seeds are derived from a two-level tree: each grid point's seed is a stable
digest of the grid seed and the point's *labels* (its ``N``, ``d``, load or
scenario — not its position in the product), and replication ``i`` of that
point gets the ``i``-th child of the point seed.  Content addressing means a
single point of a sweep can be reproduced in isolation by an
:func:`repro.ensemble.runner.run_ensemble` call with the point's seed, and
extending any swept axis later never perturbs the points that already
existed — previously published numbers stay bitwise valid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.spec import ExperimentSpec, HorizonSpec, ScenarioSpec, SpecError, SystemSpec, WorkloadSpec
from repro.ensemble.runner import (
    EnsembleConfig,
    EnsembleResult,
    _execute_replication,
    worker_pool,
)
from repro.utils.seeding import spawn_seeds
from repro.utils.tables import format_table
from repro.utils.validation import ValidationError, check_integer

__all__ = [
    "GridConfig",
    "GridPoint",
    "GridResult",
    "PointTask",
    "point_digest",
    "point_seed",
    "point_tasks",
    "run_grid",
    "task_id_for",
]


@dataclass(frozen=True)
class GridConfig:
    """Cartesian sweep grid, each point replicated into an ensemble.

    Parameters
    ----------
    server_counts, choices, utilizations : sequence
        The swept axes: pool sizes ``N``, poll counts ``d`` and per-server
        loads ``rho = lambda / mu`` (dimensionless).  Combinations with
        ``d > N`` are skipped, mirroring :class:`SweepConfig`.
    scenarios : sequence of str, optional
        When given, each grid point plays these registered scenarios through
        the occupancy engine (``utilizations`` is then ignored — scenarios
        carry their own loads); when empty, points are stationary fleet
        simulations at the swept utilizations.
    policy : str
        Dispatching policy for every point (``"sqd"``, ``"jsq"``, ``"random"``).
    num_events : int
        Events per stationary replication (ignored for scenarios).
    replications : int
        Replications per grid point.
    workers : int
        Worker processes shared by the whole grid.
    seed : int or None
        Grid seed; see the module docstring for the derivation tree.
    confidence : float
        Confidence level of the per-point intervals.
    bounds : bool
        Annotate each (stationary, SQ(d)) grid point with the paper's QBD
        lower/upper delay bracket.  Solves route through the process-wide
        :func:`repro.core.solver_cache.solver_cache`, so the sweep performs
        exactly one QBD solve per distinct ``(system, policy)``
        configuration — repeated points, replications and re-runs are free.
        Points whose bracket is intractable (block size ``C(N+T-1, T)``
        beyond the backend limit) or whose policy has no bounds are
        annotated with ``None``.
    threshold : int
        Imbalance threshold ``T`` of the bound models when ``bounds`` is on.
    kernel : str
        Event kernel for the fleet points (``"auto"``, ``"python"``,
        ``"uniformized"``); recorded in every replication record.
    workloads : sequence, optional
        Workload axis: :class:`~repro.api.spec.WorkloadSpec` instances (or
        their ``to_dict`` mappings).  When given, every ``(N, d, rho)``
        point is crossed with every workload; points whose workload is the
        paper's default Poisson + exponential run on the fleet engine,
        everything else (fitted ``mmpp2``/renewal shapes, ``trace``
        replays) routes to the cluster DES — which is how a sweep compares
        a fitted trace model against the Poisson baseline at every scale.
        Incompatible with ``scenarios``.
    num_jobs : int or None
        Job horizon per replication for the cluster-backed workload points
        (``None`` = the cluster backend's default).
    """

    server_counts: Sequence[int] = (100, 1000)
    choices: Sequence[int] = (2,)
    utilizations: Sequence[float] = (0.9,)
    scenarios: Sequence[str] = ()
    policy: str = "sqd"
    num_events: int = 200_000
    replications: int = 4
    workers: int = 1
    seed: Optional[int] = 12345
    confidence: float = 0.95
    bounds: bool = False
    threshold: int = 3
    kernel: str = "auto"
    workloads: Sequence[Any] = ()
    num_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        check_integer("num_events", self.num_events, minimum=1)
        check_integer("replications", self.replications, minimum=1)
        check_integer("workers", self.workers, minimum=1)
        check_integer("threshold", self.threshold, minimum=1)
        if not (0.0 < self.confidence < 1.0):
            raise ValidationError(f"confidence must be in (0, 1), got {self.confidence!r}")
        for n in self.server_counts:
            check_integer("N", n, minimum=1)
        for d in self.choices:
            check_integer("d", d, minimum=1)
        # Fail fast on an unknown or incapable kernel: a mid-sweep SpecError
        # would discard every grid point already simulated.
        from repro.kernels import available_kernels, kernel_why_unsupported

        if self.kernel != "auto" and self.kernel not in available_kernels():
            raise SpecError(
                f"unknown kernel {self.kernel!r} "
                f"(available: {', '.join(['auto'] + available_kernels())})"
            )
        for d in self.choices:
            reason = kernel_why_unsupported(self.kernel, self.policy, d, False)
            if reason is not None:
                raise SpecError(
                    f"kernel {self.kernel!r} cannot run policy {self.policy!r} "
                    f"with d={d}: {reason}"
                )
        if self.workloads:
            if self.scenarios:
                raise SpecError(
                    "GridConfig cannot sweep workloads and scenarios together "
                    "(scenarios run on the fleet engine, which is Poisson-only)"
                )
            normalized = tuple(
                workload if isinstance(workload, WorkloadSpec) else WorkloadSpec.from_dict(workload)
                for workload in self.workloads
            )
            object.__setattr__(self, "workloads", normalized)
        if self.num_jobs is not None:
            check_integer("num_jobs", self.num_jobs, minimum=1)

    @staticmethod
    def workload_label(workload: WorkloadSpec) -> str:
        """Stable short label for a workload axis value.

        The arrival name, suffixed with a digest of the full workload dict
        when any shape parameter is set — labels feed the content-addressed
        per-point seeds, so two different fitted shapes must never collide.
        """
        if workload.is_default and not workload.arrival.params and not workload.service.params:
            return "poisson"
        payload = json.dumps(workload.to_dict(), sort_keys=True).encode()
        return f"{workload.arrival.name}#{hashlib.sha256(payload).hexdigest()[:8]}"

    def points(self) -> List[Dict[str, Any]]:
        """Expand the grid into per-point experiment specs.

        Every point is ``{"spec": ExperimentSpec, "backend": str,
        "labels": {...}}``.  Stationary and scenario points run on the
        occupancy fleet backend; non-default workload points (the
        ``workloads`` axis) run on the cluster DES.
        """
        expanded: List[Dict[str, Any]] = []
        options = {} if self.kernel == "auto" else {"kernel": self.kernel}
        if self.scenarios:
            axes = itertools.product(self.server_counts, self.choices, self.scenarios)
            for n, d, scenario in axes:
                if d > n:
                    continue
                expanded.append(
                    {
                        "spec": ExperimentSpec(
                            system=SystemSpec(num_servers=n, d=d),
                            policy=self.policy,
                            scenario=ScenarioSpec(scenario),
                            options=options,
                        ),
                        "backend": "fleet",
                        "labels": {"N": n, "d": d, "scenario": scenario},
                    }
                )
            return expanded
        if self.workloads:
            axes = itertools.product(
                self.server_counts, self.choices, self.utilizations, self.workloads
            )
            for n, d, utilization, workload in axes:
                if d > n:
                    continue
                on_fleet = workload.is_default
                expanded.append(
                    {
                        "spec": ExperimentSpec(
                            system=SystemSpec(num_servers=n, d=d, utilization=utilization),
                            workload=workload,
                            policy=self.policy,
                            horizon=HorizonSpec(
                                num_events=self.num_events if on_fleet else None,
                                num_jobs=None if on_fleet else self.num_jobs,
                            ),
                            options=options if on_fleet else {},
                        ),
                        "backend": "fleet" if on_fleet else "cluster",
                        "labels": {
                            "N": n,
                            "d": d,
                            "utilization": utilization,
                            "workload": self.workload_label(workload),
                        },
                    }
                )
            return expanded
        axes = itertools.product(self.server_counts, self.choices, self.utilizations)
        for n, d, utilization in axes:
            if d > n:
                continue
            expanded.append(
                {
                    "spec": ExperimentSpec.create(
                        num_servers=n,
                        d=d,
                        utilization=utilization,
                        num_events=self.num_events,
                        policy=self.policy,
                        **options,
                    ),
                    "backend": "fleet",
                    "labels": {"N": n, "d": d, "utilization": utilization},
                }
            )
        return expanded


@dataclass(frozen=True)
class GridPoint:
    """One grid point's labels plus its replicated ensemble.

    ``bounds`` carries the QBD delay bracket ``{"lower_bound": ...,
    "upper_bound": ...}`` when the grid was run with ``bounds=True`` and
    the point's bracket is tractable; ``None`` otherwise.
    """

    labels: Mapping[str, Any]
    ensemble: EnsembleResult
    bounds: Optional[Mapping[str, Any]] = None

    def summary_row(self) -> Dict[str, Any]:
        """Flat record: labels, delay mean/CI, replication count, bounds."""
        statistics = self.ensemble.delay
        row: Dict[str, Any] = dict(self.labels)
        row["mean_delay"] = statistics.mean
        row["delay_half_width"] = statistics.half_width
        row["confidence"] = statistics.confidence
        row["replications"] = statistics.n
        if self.bounds is not None:
            row.update(self.bounds)
        return row


@dataclass(frozen=True)
class GridResult:
    """All grid points of one sweep, in grid (row-major) order."""

    config: GridConfig
    points: Tuple[GridPoint, ...]
    wall_seconds: float = float("nan")

    @property
    def total_replications(self) -> int:
        return sum(point.ensemble.replications for point in self.points)

    def records(self) -> List[Dict[str, Any]]:
        """One flat summary record per grid point (for CSV/JSONL export)."""
        return [point.summary_row() for point in self.points]

    def as_table(self) -> str:
        records = self.records()
        if not records:
            return "(empty grid)"
        headers = list(records[0].keys())
        # Bound columns may exist only for the tractable points; keep the
        # header union in first-seen order and dash out the gaps.
        for record in records[1:]:
            headers.extend(key for key in record if key not in headers)
        rows = [[record.get(h, "-") for h in headers] for record in records]
        title = (
            f"ensemble grid: {len(self.points)} points x "
            f"{self.config.replications} replications ({self.config.policy})"
        )
        return format_table(headers, rows, title=title)


def point_digest(labels: Mapping[str, Any]) -> str:
    """Content address of one grid point: a digest of its *labels*.

    The digest identifies a point by what it **is** (its ``N``, ``d``, load,
    workload, scenario), never by its position in the cartesian product —
    extending a swept axis later leaves every existing point's identity, and
    therefore its seeds and its stored records, untouched.
    """
    payload = json.dumps(dict(labels), sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def point_seed(grid_seed: Optional[int], labels: Mapping[str, Any]) -> Optional[int]:
    """Stable per-point seed: a digest of the grid seed and the point labels.

    Content addressing (instead of the point's position in the cartesian
    product) is what keeps existing points bitwise stable when a swept axis
    gains new values.  ``grid_seed=None`` stays non-reproducible.
    """
    if grid_seed is None:
        return None
    digest = hashlib.sha256(json.dumps(dict(labels), sort_keys=True).encode()).digest()
    entropy = (int(grid_seed), int.from_bytes(digest[:8], "big"))
    return int(np.random.SeedSequence(entropy).generate_state(1, np.uint64)[0])


# Backwards-compatible alias (pre-campaign callers imported the private name).
_point_seed = point_seed


@dataclass(frozen=True)
class PointTask:
    """One ``(grid point, replication)`` work unit — the campaign task atom.

    ``task_id`` is ``"<point digest>:<replication index>"``: fully content-
    addressed, so a durable work queue only ever needs to journal the id —
    the spec, seed and labels are regenerated deterministically from the
    grid configuration by :func:`point_tasks` on every (re)start.
    """

    task_id: str
    digest: str
    backend: str
    spec: ExperimentSpec
    seed: Optional[int]
    replication: int
    labels: Mapping[str, Any]

    def runner_task(self) -> Tuple[str, ExperimentSpec, Optional[int], int]:
        """The tuple shape :func:`~repro.ensemble.runner._execute_replication` takes."""
        return (self.backend, self.spec, self.seed, self.replication)


def task_id_for(digest: str, replication: int) -> str:
    """Canonical task id of replication ``replication`` of point ``digest``."""
    return f"{digest}:{replication}"


def point_tasks(
    config: GridConfig,
    point: Mapping[str, Any],
    count: Optional[int] = None,
    start: int = 0,
) -> List[PointTask]:
    """Expand one grid point into content-addressed replication tasks.

    Parameters
    ----------
    config : GridConfig
        The grid the point belongs to (supplies the grid seed).
    point : mapping
        One entry of :meth:`GridConfig.points` (``spec``/``backend``/``labels``).
    count : int, optional
        Number of replication tasks (default: ``config.replications``).
    start : int, optional
        First replication index — task ``start + i`` always receives the
        ``start + i``-th child seed of the point seed, so a campaign that
        adaptively extends a point later (or resumes after a crash) hands
        out exactly the seeds an uninterrupted run would have.
    """
    labels = dict(point["labels"])
    digest = point_digest(labels)
    seed = point_seed(config.seed, labels)
    if count is None:
        count = config.replications
    return [
        PointTask(
            task_id=task_id_for(digest, start + offset),
            digest=digest,
            backend=point["backend"],
            spec=point["spec"],
            seed=child,
            replication=start + offset,
            labels=labels,
        )
        for offset, child in enumerate(spawn_seeds(seed, count, start=start))
    ]


def _point_bounds(config: GridConfig, labels: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """QBD bracket for one stationary grid point, or ``None`` if intractable.

    Solves go through the spec-keyed solver cache, so a sweep touching the
    same ``(system, policy)`` at several points (or run twice) solves each
    distinct configuration exactly once.
    """
    import math as _math

    from repro.api.engines import MAX_QBD_BLOCK

    if config.policy != "sqd" or "utilization" not in labels:
        return None
    if labels.get("workload", "poisson") != "poisson":
        # The QBD bracket is a Poisson + exponential result; annotating a
        # fitted/bursty workload with it would silently compare apples to
        # oranges (the Poisson bracket stays available as an explicit
        # baseline point on the workload axis).
        return None
    n, d = int(labels["N"]), int(labels["d"])
    block = _math.comb(n + config.threshold - 1, config.threshold)
    if block > MAX_QBD_BLOCK:
        return None
    from repro.core.analysis import analyze_sqd

    analysis = analyze_sqd(
        num_servers=n,
        d=d,
        utilization=float(labels["utilization"]),
        threshold=config.threshold,
    )
    return {"lower_bound": analysis.lower_delay, "upper_bound": analysis.upper_delay}


def run_grid(config: GridConfig) -> GridResult:
    """Schedule the whole sweep grid across one shared worker pool.

    Returns
    -------
    GridResult
        Per-point ensembles in grid order.  As with single ensembles, the
        result is bitwise independent of ``workers``.
    """
    started = time.perf_counter()
    points = config.points()
    point_seeds = [point_seed(config.seed, point["labels"]) for point in points]
    tasks = []
    for point in points:
        # The same task factory the campaign scheduler shards over a durable
        # queue (repro.campaigns); here the flat list feeds one in-memory pool.
        tasks.extend(task.runner_task() for task in point_tasks(config, point))

    with worker_pool(config.workers) as pool:
        if pool is not None:
            records = list(pool.map(_execute_replication, tasks))
        else:
            records = [_execute_replication(task) for task in tasks]

    grid_points: List[GridPoint] = []
    for point_index, point in enumerate(points):
        chunk = records[
            point_index * config.replications : (point_index + 1) * config.replications
        ]
        seed = point_seeds[point_index]
        spec = point["spec"] if seed is None else point["spec"].with_seed(seed)
        ensemble_config = EnsembleConfig(
            spec=spec,
            backend=point["backend"],
            replications=config.replications,
            workers=config.workers,
            seed=seed,
            confidence=config.confidence,
        )
        grid_points.append(
            GridPoint(
                labels=dict(point["labels"]),
                ensemble=EnsembleResult(config=ensemble_config, records=tuple(chunk)),
                bounds=_point_bounds(config, point["labels"]) if config.bounds else None,
            )
        )
    return GridResult(
        config=config,
        points=tuple(grid_points),
        wall_seconds=time.perf_counter() - started,
    )
