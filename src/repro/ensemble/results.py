"""JSONL persistence for ensemble runs: every replication, with provenance.

Figures should be re-plottable without re-simulating.  To that end each
replication is appended to a JSON-Lines file as a self-contained record: the
full simulator configuration, the ensemble seed *and* the replication's own
derived seed, every scalar metric, and provenance (package version, git
describe of the working tree, timestamp, python version).  JSONL — one JSON
object per line — makes the store append-only (two processes can interleave
whole lines), diff-friendly, and streamable: a million-record store never
needs to be parsed whole.

No third-party dependency: :mod:`json` for the records, :mod:`subprocess`
for ``git describe`` (silently degraded to ``None`` outside a git checkout).

Appends are hardened the same way the campaign journal is: each batch is
wrapped in seeded-backoff retries (:mod:`repro.utils.retry`) so a transient
I/O error never loses a replication, and every line passes the
``"records.append"`` fault-injection hook (:mod:`repro.faults`), a no-op
unless a chaos plan is armed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.ensemble.runner import EnsembleResult
from repro.faults import maybe_fire
from repro.utils.retry import RetryPolicy, retry_call

__all__ = [
    "ResultStore",
    "git_describe",
    "iter_jsonl",
    "provenance",
    "read_jsonl",
    "repair_jsonl",
]


def git_describe(path: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the tree containing ``path``.

    Returns ``None`` when git is unavailable or the path is not inside a
    repository — provenance is best-effort, never a hard dependency.
    """
    directory = Path(path).resolve() if path is not None else Path(__file__).resolve()
    if directory.is_file():
        directory = directory.parent
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=directory,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def provenance() -> Dict[str, Any]:
    """Re-run metadata attached to every stored record."""
    from repro import __version__

    return {
        "package_version": __version__,
        "git": git_describe(),
        "python": sys.version.split()[0],
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def iter_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Stream the records of a JSONL file one at a time (constant memory).

    Blank lines are skipped.  A *trailing* record that does not parse —
    the torn half-line a process killed mid-append leaves behind — is
    skipped with a :class:`RuntimeWarning` instead of raising, so resuming
    an interrupted run never chokes on its own interruption artifact.  An
    unparsable record *followed by further data* is real corruption (whole-
    line appends can only tear the tail) and still raises ``ValueError``.
    """
    source = Path(path)
    pending_error: Optional[str] = None
    with source.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if pending_error is not None:
                raise ValueError(f"corrupt JSONL record mid-file: {pending_error}")
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as error:
                pending_error = f"{source}:{number}: {error}"
                continue
            yield record
    if pending_error is not None:
        warnings.warn(
            f"skipping truncated trailing record ({pending_error}) — "
            "likely a crash mid-append; the record will be regenerated on resume",
            RuntimeWarning,
            stacklevel=2,
        )


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every record of a JSONL file (see :func:`iter_jsonl`)."""
    return list(iter_jsonl(path))


def repair_jsonl(path: Union[str, Path]) -> int:
    """Truncate a torn trailing record before re-opening a store for append.

    Readers merely *skip* a torn tail (:func:`iter_jsonl`); a writer about
    to append must physically remove it, otherwise the next appended line
    would glue onto the fragment and turn a recoverable tear into mid-file
    corruption.  Returns the number of bytes truncated (0 when clean);
    raises ``ValueError`` on corruption that is not a trailing tear.
    """
    source = Path(path)
    if not source.exists():
        return 0
    torn_offset: Optional[int] = None
    offset = 0
    with source.open("rb") as handle:
        for raw in handle:
            stripped = raw.strip()
            if stripped:
                if torn_offset is not None:
                    raise ValueError(
                        f"{source}: corrupt JSONL record mid-file at byte {torn_offset}"
                    )
                try:
                    json.loads(stripped.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    torn_offset = offset
            offset += len(raw)
    if torn_offset is None:
        return 0
    size = source.stat().st_size
    with source.open("rb+") as handle:
        handle.truncate(torn_offset)
        handle.flush()
        os.fsync(handle.fileno())
    return size - torn_offset


@dataclass
class ResultStore:
    """Append-only JSONL store for replication records.

    Parameters
    ----------
    path : str or Path
        Store location; the parent directory is created on first append.

    Examples
    --------
    >>> store = ResultStore("/tmp/doctest-ensemble.jsonl")  # doctest: +SKIP
    >>> store.append_ensemble(result)                       # doctest: +SKIP
    >>> len(store.load())                                   # doctest: +SKIP
    8
    """

    path: Path

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record as a single JSON line (flushed immediately)."""
        self.extend([record])

    def extend(self, records) -> None:
        """Append many records in one open/flush/close cycle.

        Each record is still written as one whole line, preserving the
        interleaving-safety of line-wise appends.  Every line is retried
        under seeded backoff on transient ``OSError`` — whole-line appends
        are idempotent at worst (a duplicated line, which readers
        de-duplicate), so re-invoking the write is always safe.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                line = (
                    json.dumps(record, sort_keys=True, default=_json_default) + "\n"
                )
                key = f"{record.get('point', '')}:{record.get('replication', '')}"

                def append(line=line, key=key) -> None:
                    maybe_fire("records.append", key=key, handle=handle, line=line)
                    handle.write(line)
                    handle.flush()

                retry_call(append, policy=RetryPolicy(), describe="record append")

    def append_ensemble(
        self, result: EnsembleResult, labels: Optional[Dict[str, Any]] = None
    ) -> int:
        """Persist every replication of an ensemble; returns the line count.

        Each line carries the replication record itself plus the ensemble
        configuration (the experiment spec and backend, the legacy
        kind/parameters view for pre-spec readers, ensemble seed,
        confidence) and shared provenance, so any single line is enough to
        reproduce its replication exactly.
        """
        config = result.config
        shared = {
            "spec": config.spec.to_dict(),
            "backend": config.backend,
            "ensemble_seed": config.seed,
            "confidence": config.confidence,
            "provenance": provenance(),
        }
        if config.kind is not None:
            # The pre-spec view, only when it reproduces the experiment
            # faithfully (non-default workloads have no legacy spelling).
            shared["kind"] = config.kind
            shared["parameters"] = dict(config.parameters)
        if labels:
            shared["labels"] = dict(labels)
        lines = []
        for record in result.records:
            line = dict(shared)
            line.update(record)
            lines.append(line)
        self.extend(lines)
        return len(result.records)

    def load(self) -> List[Dict[str, Any]]:
        """All records currently in the store (empty list if absent)."""
        if not self.path.exists():
            return []
        return read_jsonl(self.path)

    def stream(self) -> Iterator[Dict[str, Any]]:
        """Yield records one at a time without materializing the store.

        This is the constant-memory path campaign finalization folds
        through — a million-record store is never parsed whole.
        """
        if not self.path.exists():
            return
        yield from iter_jsonl(self.path)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self.stream()

    def __len__(self) -> int:
        return len(self.load())


def _json_default(value):
    """Serialize numpy scalars and other floats-in-disguise."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)
