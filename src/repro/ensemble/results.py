"""JSONL persistence for ensemble runs: every replication, with provenance.

Figures should be re-plottable without re-simulating.  To that end each
replication is appended to a JSON-Lines file as a self-contained record: the
full simulator configuration, the ensemble seed *and* the replication's own
derived seed, every scalar metric, and provenance (package version, git
describe of the working tree, timestamp, python version).  JSONL — one JSON
object per line — makes the store append-only (two processes can interleave
whole lines), diff-friendly, and streamable: a million-record store never
needs to be parsed whole.

No third-party dependency: :mod:`json` for the records, :mod:`subprocess`
for ``git describe`` (silently degraded to ``None`` outside a git checkout).
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.ensemble.runner import EnsembleResult

__all__ = ["ResultStore", "git_describe", "provenance", "read_jsonl"]


def git_describe(path: Optional[Union[str, Path]] = None) -> Optional[str]:
    """``git describe --always --dirty`` of the tree containing ``path``.

    Returns ``None`` when git is unavailable or the path is not inside a
    repository — provenance is best-effort, never a hard dependency.
    """
    directory = Path(path).resolve() if path is not None else Path(__file__).resolve()
    if directory.is_file():
        directory = directory.parent
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=directory,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def provenance() -> Dict[str, Any]:
    """Re-run metadata attached to every stored record."""
    from repro import __version__

    return {
        "package_version": __version__,
        "git": git_describe(),
        "python": sys.version.split()[0],
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every record of a JSONL file (blank lines are skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


@dataclass
class ResultStore:
    """Append-only JSONL store for replication records.

    Parameters
    ----------
    path : str or Path
        Store location; the parent directory is created on first append.

    Examples
    --------
    >>> store = ResultStore("/tmp/doctest-ensemble.jsonl")  # doctest: +SKIP
    >>> store.append_ensemble(result)                       # doctest: +SKIP
    >>> len(store.load())                                   # doctest: +SKIP
    8
    """

    path: Path

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record as a single JSON line (flushed immediately)."""
        self.extend([record])

    def extend(self, records) -> None:
        """Append many records in one open/flush/close cycle.

        Each record is still written as one whole line, preserving the
        interleaving-safety of line-wise appends.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True, default=_json_default))
                handle.write("\n")
            handle.flush()

    def append_ensemble(
        self, result: EnsembleResult, labels: Optional[Dict[str, Any]] = None
    ) -> int:
        """Persist every replication of an ensemble; returns the line count.

        Each line carries the replication record itself plus the ensemble
        configuration (the experiment spec and backend, the legacy
        kind/parameters view for pre-spec readers, ensemble seed,
        confidence) and shared provenance, so any single line is enough to
        reproduce its replication exactly.
        """
        config = result.config
        shared = {
            "spec": config.spec.to_dict(),
            "backend": config.backend,
            "ensemble_seed": config.seed,
            "confidence": config.confidence,
            "provenance": provenance(),
        }
        if config.kind is not None:
            # The pre-spec view, only when it reproduces the experiment
            # faithfully (non-default workloads have no legacy spelling).
            shared["kind"] = config.kind
            shared["parameters"] = dict(config.parameters)
        if labels:
            shared["labels"] = dict(labels)
        lines = []
        for record in result.records:
            line = dict(shared)
            line.update(record)
            lines.append(line)
        self.extend(lines)
        return len(result.records)

    def load(self) -> List[Dict[str, Any]]:
        """All records currently in the store (empty list if absent)."""
        if not self.path.exists():
            return []
        return read_jsonl(self.path)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.load())

    def __len__(self) -> int:
        return len(self.load())


def _json_default(value):
    """Serialize numpy scalars and other floats-in-disguise."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)
